package storage

import (
	"errors"
	"testing"

	"perm/internal/value"
)

func ints(vs ...int64) value.Row {
	r := make(value.Row, len(vs))
	for i, v := range vs {
		r[i] = value.NewInt(v)
	}
	return r
}

func TestTxnVersionVisibility(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	tab.Insert(ints(1))
	before := s.PinSnapshot()
	defer s.UnpinSnapshot(before)

	x := s.Begin()
	if _, err := x.Insert(tab, []value.Row{ints(2)}); err != nil {
		t.Fatal(err)
	}
	// The transaction sees its own insert; the pre-txn snapshot, a fresh
	// snapshot, and a concurrent transaction all do not.
	if got := x.TableRows(tab); len(got) != 2 {
		t.Fatalf("txn sees %d rows, want 2", len(got))
	}
	if got := tab.SnapshotAt(before); len(got) != 1 {
		t.Fatalf("pre-txn snapshot sees %d rows, want 1", len(got))
	}
	if got := tab.Snapshot(); len(got) != 1 {
		t.Fatalf("committed view sees %d rows before commit, want 1", len(got))
	}
	y := s.Begin()
	if got := y.TableRows(tab); len(got) != 1 {
		t.Fatalf("concurrent txn sees %d rows, want 1", len(got))
	}
	y.Rollback()

	if err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	if !x.Done() {
		t.Fatal("committed txn not done")
	}
	// Commit publishes atomically at a new LSN: the old pin still reads the
	// old world, a new read sees the new one.
	if got := tab.SnapshotAt(before); len(got) != 1 {
		t.Fatalf("pinned snapshot changed after commit: %d rows", len(got))
	}
	if got := tab.Snapshot(); len(got) != 2 {
		t.Fatalf("committed view sees %d rows, want 2", len(got))
	}
}

func TestTxnFirstCommitterWins(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	tab.Insert(ints(1))
	tab.Insert(ints(2))

	pred1 := func(r value.Row) (bool, error) { return r[0].I == 1, nil }
	bump := func(r value.Row) (value.Row, error) { return ints(r[0].I + 10), nil }

	x, y := s.Begin(), s.Begin()
	if n, err := x.Update(tab, pred1, bump); err != nil || n != 1 {
		t.Fatalf("x.Update: %d, %v", n, err)
	}
	if n, err := y.Update(tab, pred1, bump); err != nil || n != 1 {
		t.Fatalf("y.Update: %d, %v", n, err)
	}
	if err := x.Commit(); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	if err := y.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second committer: %v, want ErrWriteConflict", err)
	}
	if !y.Done() {
		t.Fatal("conflicted txn must be finished")
	}
	// Exactly one increment landed; the loser left nothing behind.
	rows := tab.Snapshot()
	if len(rows) != 2 || rows[0][0].I != 11 || rows[1][0].I != 2 {
		t.Fatalf("rows = %v, want [11 2]", rows)
	}

	// Delete vs update on the same slot conflicts in either order.
	x, y = s.Begin(), s.Begin()
	pred2 := func(r value.Row) (bool, error) { return r[0].I == 2, nil }
	if _, err := x.Delete(tab, pred2); err != nil {
		t.Fatal(err)
	}
	if _, err := y.Update(tab, pred2, bump); err != nil {
		t.Fatal(err)
	}
	if err := y.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := x.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("delete after committed update: %v, want ErrWriteConflict", err)
	}

	// Disjoint write sets commit cleanly; a read-only txn always commits.
	x, y = s.Begin(), s.Begin()
	if _, err := x.Update(tab, pred1, bump); err != nil {
		t.Fatal(err)
	}
	_ = y.TableRows(tab)
	if err := y.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
	if err := x.Commit(); err != nil {
		t.Fatalf("disjoint commit: %v", err)
	}

	if got := s.MVCCStatus().WriteConflicts; got != 2 {
		t.Fatalf("WriteConflicts = %d, want 2", got)
	}
	if s.PinnedSnapshots() != 0 {
		t.Fatalf("pins = %d, want 0", s.PinnedSnapshots())
	}
}

func TestTxnRollbackLeavesNoTrace(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	tab.Insert(ints(1))
	slots0, versions0 := tab.VersionCount()

	x := s.Begin()
	x.Insert(tab, []value.Row{ints(2)})
	x.Delete(tab, nil)
	x.Rollback()
	if !x.Done() {
		t.Fatal("rolled-back txn not done")
	}
	if got := tab.Snapshot(); len(got) != 1 || got[0][0].I != 1 {
		t.Fatalf("rows after rollback = %v", got)
	}
	// Buffered writes never touched the heap: no versions to vacuum.
	if slots, versions := tab.VersionCount(); slots != slots0 || versions != versions0 {
		t.Fatalf("version counts changed across rollback: %d/%d -> %d/%d",
			slots0, versions0, slots, versions)
	}
	if s.PinnedSnapshots() != 0 {
		t.Fatalf("pins = %d, want 0", s.PinnedSnapshots())
	}
}

// TestTxnVacuumHorizon pins that an open transaction's snapshot holds the
// vacuum horizon: versions it can still see are not reclaimed until it ends.
func TestTxnVacuumHorizon(t *testing.T) {
	s := NewStore()
	tab := intTable(t, s, "t", "a")
	tab.Insert(ints(1))

	x := s.Begin()
	bump := func(r value.Row) (value.Row, error) { return ints(r[0].I + 1), nil }
	for i := 0; i < 5; i++ {
		if _, err := tab.Update(nil, bump); err != nil {
			t.Fatal(err)
		}
	}
	if removed := s.Vacuum(); removed != 0 {
		t.Fatalf("vacuum reclaimed %d versions under an open txn, want 0", removed)
	}
	if got := x.TableRows(tab); len(got) != 1 || got[0][0].I != 1 {
		t.Fatalf("txn snapshot after vacuum attempt = %v, want original 1", got)
	}
	x.Rollback()
	if removed := s.Vacuum(); removed != 5 {
		t.Fatalf("vacuum after txn end removed %d, want 5", removed)
	}
	if slots, versions := tab.VersionCount(); slots != 1 || versions != 1 {
		t.Fatalf("slots/versions = %d/%d, want 1/1", slots, versions)
	}
}
