package storage

import (
	"encoding/gob"
	"fmt"
	"io"

	"perm/internal/catalog"
	"perm/internal/value"
)

// Snapshot persistence: the whole database (schema, rows, views, statistics)
// serializes to a single gob stream. This keeps eagerly materialized
// provenance tables available across process restarts — the "store
// provenance for later investigation" part of the paper's story.
//
// Save is an online, consistent backup. It runs in two phases:
//
//  1. collect — under the store lock (shared, so queries keep running) and
//     the apply gate (so no mutation's apply can interleave), it captures
//     the visible rows of every table plus the catalog state. Tables whose
//     materialization cache is warm contribute a slice header; only
//     recently written tables pay a version walk. This is the only moment
//     writers wait.
//  2. encode — the gob stream is written outside all locks. The captured
//     slices stay valid because materialized views and their rows are
//     immutable (mutations create new versions, they never touch old ones);
//     the encoder only reads.
//
// The result is a point-in-time image across all tables at the captured
// LSN: each apply holds the gate for its whole critical section — a
// transaction commit for all its tables at once — so no statement's (or
// transaction's) write is ever half-visible. Concurrent readers are never
// blocked at all.

// snapshotDTO is the on-disk representation.
type snapshotDTO struct {
	// Version guards the format for forward changes.
	Version int
	Tables  []tableDTO
	Views   []viewDTO
	// LSN is the change-log position the snapshot was taken at (version ≥ 2;
	// gob decodes it as 0 from older streams). A store restored from this
	// snapshot continues the same LSN space: its next local mutation — or
	// the next record a replication follower applies — is LSN+1.
	LSN uint64
	// Origin is the history identifier the LSN belongs to (version ≥ 2); a
	// restored store adopts it, so replication followers can tell a genuine
	// resume from a coincidence of LSN numbers across unrelated histories.
	Origin uint64
}

type tableDTO struct {
	Name     string
	Columns  []catalog.Column
	Rows     []value.Row
	RowCount int
	Distinct map[string]float64
}

type viewDTO struct {
	Name    string
	Text    string
	Columns []catalog.Column
}

const snapshotVersion = 2

// Save writes the full store to w as a consistent point-in-time snapshot
// without blocking concurrent readers (and blocking writers only for the
// header-collection instant).
func (s *Store) Save(w io.Writer) error {
	_, err := s.SaveLSN(w)
	return err
}

// SaveLSN is Save returning the change-log position the snapshot captures:
// a replica restored from this stream is exactly the primary as of that LSN
// and subscribes to the change feed from there. The LSN also travels inside
// the stream itself (Restore repositions the log from it).
func (s *Store) SaveLSN(w io.Writer) (uint64, error) {
	dto, err := s.collect()
	if err != nil {
		return 0, err
	}
	return dto.LSN, gob.NewEncoder(w).Encode(dto)
}

// collect captures the snapshot DTO under the store lock and the write gate.
func (s *Store) collect() (*snapshotDTO, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.gate.Lock()
	defer s.gate.Unlock()
	// Mutations append their change record inside the same critical sections
	// the two locks above exclude (gate for DML, mu for DDL), so this LSN and
	// the row slices collected below describe the same instant.
	dto := snapshotDTO{Version: snapshotVersion, LSN: s.log.LastLSN(), Origin: s.Origin()}
	for _, name := range s.catalog.TableNames() {
		t := s.tables[keyOf(name)]
		if t == nil {
			return nil, fmt.Errorf("storage: table %q in catalog but not in store", name)
		}
		rows := t.Snapshot()
		st := s.catalog.TableStats(name)
		dto.Tables = append(dto.Tables, tableDTO{
			Name:    t.Def().Name,
			Columns: t.Def().Columns,
			Rows:    rows,
			// RowCount derives from the captured rows, not the catalog: DML
			// refreshes catalog stats after releasing the gate, so the two can
			// briefly disagree. DistinctFrac stays advisory (as after any DML).
			RowCount: len(rows),
			Distinct: st.DistinctFrac,
		})
	}
	for _, name := range s.catalog.ViewNames() {
		v := s.catalog.View(name)
		dto.Views = append(dto.Views, viewDTO{Name: v.Name, Text: v.Text, Columns: v.Columns})
	}
	return &dto, nil
}

// Restore loads a snapshot written by Save into an EMPTY store. It fails if
// any relation already exists. Restoring is a bulk load, not a sequence of
// logical changes: nothing is appended to the change log; instead the log is
// positioned at the snapshot's LSN, so the restored store continues the
// saved store's LSN space (a follower restored from this snapshot resumes
// the primary's feed right after it).
func (s *Store) Restore(r io.Reader) error {
	var dto snapshotDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("storage: corrupt snapshot: %v", err)
	}
	if dto.Version < 1 || dto.Version > snapshotVersion {
		return fmt.Errorf("storage: unsupported snapshot version %d (want 1..%d)", dto.Version, snapshotVersion)
	}
	for _, t := range dto.Tables {
		tab, err := s.loadTable(&catalog.TableDef{Name: t.Name, Columns: t.Columns})
		if err != nil {
			return err
		}
		if err := tab.load(t.Rows); err != nil {
			return err
		}
		s.catalog.SetRowCount(t.Name, t.RowCount)
		for col, frac := range t.Distinct {
			s.catalog.SetDistinctFrac(t.Name, col, frac)
		}
	}
	for _, v := range dto.Views {
		if err := s.catalog.CreateView(&catalog.ViewDef{Name: v.Name, Text: v.Text, Columns: v.Columns}); err != nil {
			return err
		}
	}
	s.log.Reset(dto.LSN)
	s.visible.Store(dto.LSN)
	if dto.Origin != 0 {
		s.origin.Store(dto.Origin)
	}
	return nil
}

// loadTable registers and attaches a table without logging a change record.
func (s *Store) loadTable(def *catalog.TableDef) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.catalog.CreateTable(def); err != nil {
		return nil, err
	}
	return s.attach(def), nil
}

// load type-checks and installs rows without logging a change record. The
// versions are stamped created=0 — a bulk-loaded row predates every
// pinnable snapshot, exactly as the snapshot's LSN says it does.
func (t *Table) load(rows []value.Row) error {
	checked := make([]value.Row, len(rows))
	for i, r := range rows {
		c, err := t.checkRow(r)
		if err != nil {
			return fmt.Errorf("row %d: %v", i+1, err)
		}
		checked[i] = c
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	t.apply(nil, func([]lsnRange) {
		for _, r := range checked {
			t.slots = append(t.slots, &rowVersion{row: r})
		}
	})
	return nil
}
