package storage

import (
	"encoding/gob"
	"fmt"
	"io"

	"perm/internal/catalog"
	"perm/internal/value"
)

// Snapshot persistence: the whole database (schema, rows, views, statistics)
// serializes to a single gob stream. This keeps eagerly materialized
// provenance tables available across process restarts — the "store
// provenance for later investigation" part of the paper's story.
//
// Save reads table rows through Table.Snapshot, which shares the live row
// slice instead of copying it (see the aliasing contract on Snapshot); the
// encoder only reads, so serialization is allocation-free on the storage
// side even for large provenance tables.

// snapshotDTO is the on-disk representation.
type snapshotDTO struct {
	// Version guards the format for forward changes.
	Version int
	Tables  []tableDTO
	Views   []viewDTO
}

type tableDTO struct {
	Name     string
	Columns  []catalog.Column
	Rows     []value.Row
	RowCount int
	Distinct map[string]float64
}

type viewDTO struct {
	Name    string
	Text    string
	Columns []catalog.Column
}

const snapshotVersion = 1

// Save writes the full store to w.
func (s *Store) Save(w io.Writer) error {
	dto := snapshotDTO{Version: snapshotVersion}
	for _, name := range s.catalog.TableNames() {
		t := s.Table(name)
		if t == nil {
			return fmt.Errorf("storage: table %q in catalog but not in store", name)
		}
		st := s.catalog.TableStats(name)
		dto.Tables = append(dto.Tables, tableDTO{
			Name:     t.Def().Name,
			Columns:  t.Def().Columns,
			Rows:     t.Snapshot(),
			RowCount: st.RowCount,
			Distinct: st.DistinctFrac,
		})
	}
	for _, name := range s.catalog.ViewNames() {
		v := s.catalog.View(name)
		dto.Views = append(dto.Views, viewDTO{Name: v.Name, Text: v.Text, Columns: v.Columns})
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// Restore loads a snapshot written by Save into an EMPTY store. It fails if
// any relation already exists.
func (s *Store) Restore(r io.Reader) error {
	var dto snapshotDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("storage: corrupt snapshot: %v", err)
	}
	if dto.Version != snapshotVersion {
		return fmt.Errorf("storage: unsupported snapshot version %d (want %d)", dto.Version, snapshotVersion)
	}
	for _, t := range dto.Tables {
		tab, err := s.CreateTable(&catalog.TableDef{Name: t.Name, Columns: t.Columns})
		if err != nil {
			return err
		}
		if _, err := tab.InsertBatch(t.Rows); err != nil {
			return err
		}
		s.catalog.SetRowCount(t.Name, t.RowCount)
		for col, frac := range t.Distinct {
			s.catalog.SetDistinctFrac(t.Name, col, frac)
		}
	}
	for _, v := range dto.Views {
		if err := s.catalog.CreateView(&catalog.ViewDef{Name: v.Name, Text: v.Text, Columns: v.Columns}); err != nil {
			return err
		}
	}
	return nil
}
