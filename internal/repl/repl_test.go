package repl

import (
	"reflect"
	"sync"
	"testing"

	"perm/internal/catalog"
	"perm/internal/value"
	"perm/internal/wire"
)

func TestLogAppendSince(t *testing.T) {
	l := NewChangeLog()
	if got := l.LastLSN(); got != 0 {
		t.Fatalf("empty log LastLSN = %d", got)
	}
	for i := 0; i < 5; i++ {
		lsn := l.Append(Record{Kind: KindInsert, Table: "t"})
		if lsn != uint64(i+1) {
			t.Fatalf("append %d assigned LSN %d", i, lsn)
		}
	}
	recs, ok := l.Since(0, 0)
	if !ok || len(recs) != 5 || recs[0].LSN != 1 || recs[4].LSN != 5 {
		t.Fatalf("Since(0) = %d records, ok=%v", len(recs), ok)
	}
	recs, ok = l.Since(3, 0)
	if !ok || len(recs) != 2 || recs[0].LSN != 4 {
		t.Fatalf("Since(3) = %+v, ok=%v", recs, ok)
	}
	recs, ok = l.Since(5, 0)
	if !ok || len(recs) != 0 {
		t.Fatalf("Since(5) = %d records, ok=%v", len(recs), ok)
	}
	if recs, ok = l.Since(2, 2); !ok || len(recs) != 2 || recs[1].LSN != 4 {
		t.Fatalf("Since(2, max 2) = %+v", recs)
	}
}

func TestLogTrim(t *testing.T) {
	l := NewChangeLog()
	l.SetRetention(3)
	for i := 0; i < 10; i++ {
		l.Append(Record{Kind: KindInsert, Table: "t"})
	}
	if got := l.LastLSN(); got != 10 {
		t.Fatalf("LastLSN = %d", got)
	}
	if got := l.OldestLSN(); got != 8 {
		t.Fatalf("OldestLSN = %d", got)
	}
	if _, ok := l.Since(5, 0); ok {
		t.Fatal("Since(5) should report a trimmed position")
	}
	// The boundary: after == OldestLSN-1 is exactly the oldest retained tail.
	recs, ok := l.Since(7, 0)
	if !ok || len(recs) != 3 || recs[0].LSN != 8 {
		t.Fatalf("Since(7) = %+v, ok=%v", recs, ok)
	}
}

func TestLogAppendAt(t *testing.T) {
	l := NewChangeLog()
	if err := l.AppendAt(Record{LSN: 1, Kind: KindInsert}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendAt(Record{LSN: 3, Kind: KindInsert}); err == nil {
		t.Fatal("gap accepted")
	}
	if err := l.AppendAt(Record{LSN: 1, Kind: KindInsert}); err == nil {
		t.Fatal("replay accepted")
	}
	if err := l.AppendAt(Record{LSN: 2, Kind: KindInsert}); err != nil {
		t.Fatal(err)
	}
	if l.LastLSN() != 2 {
		t.Fatalf("LastLSN = %d", l.LastLSN())
	}
}

func TestLogReset(t *testing.T) {
	l := NewChangeLog()
	l.Append(Record{Kind: KindInsert})
	l.Reset(41)
	if l.LastLSN() != 41 {
		t.Fatalf("LastLSN after Reset = %d", l.LastLSN())
	}
	if _, ok := l.Since(40, 0); ok {
		t.Fatal("history before the reset position should be unavailable")
	}
	if lsn := l.Append(Record{Kind: KindInsert}); lsn != 42 {
		t.Fatalf("first LSN after Reset(41) = %d", lsn)
	}
}

func TestLogWaitCh(t *testing.T) {
	l := NewChangeLog()
	ch := l.WaitCh()
	select {
	case <-ch:
		t.Fatal("channel closed before any append")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	l.Append(Record{Kind: KindInsert})
	<-done
}

// TestLogConcurrentAppend exercises the append/Since/WaitCh paths under the
// race detector.
func TestLogConcurrentAppend(t *testing.T) {
	l := NewChangeLog()
	l.SetRetention(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Append(Record{Kind: KindInsert, Table: "t"})
			}
		}()
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		var pos uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			ch := l.WaitCh()
			recs, ok := l.Since(pos, 16)
			if !ok {
				pos = l.LastLSN()
				continue
			}
			if len(recs) == 0 {
				select {
				case <-ch:
				case <-stop:
					return
				}
				continue
			}
			for i := 1; i < len(recs); i++ {
				if recs[i].LSN != recs[i-1].LSN+1 {
					t.Errorf("non-contiguous tail: %d then %d", recs[i-1].LSN, recs[i].LSN)
					return
				}
			}
			pos = recs[len(recs)-1].LSN
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := l.LastLSN(); got != 800 {
		t.Fatalf("LastLSN = %d, want 800", got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rows := []value.Row{
		{value.NewInt(1), value.NewString("it's ? here"), value.Null},
		{value.NewInt(2), value.NewString(""), value.NewFloat(2.5)},
	}
	olds := []value.Row{
		{value.NewInt(1), value.NewString("old"), value.NewBool(true)},
		{value.NewInt(2), value.NewString("older"), value.NewBool(false)},
	}
	recs := []Record{
		{LSN: 1, Kind: KindCreateTable, Table: "t", Columns: []catalog.Column{
			{Name: "id", Type: value.KindInt, NotNull: true},
			{Name: "txt", Type: value.KindString},
		}},
		{LSN: 2, Kind: KindInsert, Table: "t", Rows: rows},
		{LSN: 3, Kind: KindUpdate, Table: "t", Rows: rows, OldRows: olds},
		{LSN: 4, Kind: KindDelete, Table: "t", Rows: rows[:1]},
		{LSN: 5, Kind: KindCreateView, Table: "v", ViewText: "SELECT id FROM t", Columns: []catalog.Column{
			{Name: "id", Type: value.KindInt},
		}},
		{LSN: 6, Kind: KindDropView, Table: "v"},
		{LSN: 7, Kind: KindAnalyze, Table: ""},
		{LSN: 8, Kind: KindDropTable, Table: "t"},
	}
	payload := AppendBatch(nil, recs)
	got, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", recs, got)
	}
}

func TestDecodeBatchCorrupt(t *testing.T) {
	payload := AppendBatch(nil, []Record{{LSN: 1, Kind: KindInsert, Table: "t",
		Rows: []value.Row{{value.NewInt(7)}}}})
	for cut := 1; cut < len(payload); cut++ {
		if _, err := DecodeBatch(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(payload))
		}
	}
	// A single record decodes through ReadRecord too.
	r := wire.NewReader(payload[1:]) // skip the batch count
	rec, err := ReadRecord(r)
	if err != nil || rec.LSN != 1 || rec.Kind != KindInsert {
		t.Fatalf("ReadRecord = %+v, %v", rec, err)
	}
}

// TestLogRetentionBytes: the byte budget trims wide-row records even when
// the record-count bound is far away, and never drops the newest record.
func TestLogRetentionBytes(t *testing.T) {
	l := NewChangeLog()
	l.SetRetention(0) // count bound off; bytes only
	l.SetRetentionBytes(64 << 10)
	wide := value.Row{value.NewString(string(make([]byte, 8<<10)))}
	for i := 0; i < 100; i++ {
		l.Append(Record{Kind: KindInsert, Table: "t", Rows: []value.Row{wide}})
	}
	recs, ok := l.Since(l.OldestLSN()-1, 0)
	if !ok {
		t.Fatal("retained tail unreadable")
	}
	// ~8KiB per record against a 64KiB budget: only a handful retained.
	if len(recs) == 0 || len(recs) > 10 {
		t.Fatalf("byte budget retained %d records", len(recs))
	}
	if recs[len(recs)-1].LSN != l.LastLSN() {
		t.Fatal("newest record was trimmed")
	}
	// One record larger than the whole budget still goes through.
	huge := value.Row{value.NewString(string(make([]byte, 128<<10)))}
	lsn := l.Append(Record{Kind: KindInsert, Table: "t", Rows: []value.Row{huge}})
	if recs, ok := l.Since(lsn-1, 0); !ok || len(recs) != 1 {
		t.Fatalf("oversized record not retained: %d, ok=%v", len(recs), ok)
	}
}

// TestLogRetentionBothBounds: when the count bound already trims, the byte
// budget must not double-count the dropped prefix and over-trim.
func TestLogRetentionBothBounds(t *testing.T) {
	l := NewChangeLog()
	row := value.Row{value.NewString(string(make([]byte, 1024)))}
	cost := recordCost(Record{Kind: KindInsert, Table: "t", Rows: []value.Row{row}})
	l.SetRetention(5)
	l.SetRetentionBytes(5*cost + cost/2) // five records fit comfortably
	for i := 0; i < 50; i++ {
		l.Append(Record{Kind: KindInsert, Table: "t", Rows: []value.Row{row}})
	}
	if got := l.LastLSN() - l.OldestLSN() + 1; got != 5 {
		t.Fatalf("retained %d records, want exactly 5 (count bound; byte budget not exceeded)", got)
	}
}

func TestRecordHash(t *testing.T) {
	a := Record{LSN: 7, Kind: KindInsert, Table: "t", Rows: []value.Row{{value.NewInt(1)}}}
	b := a
	b.Rows = []value.Row{{value.NewInt(2)}}
	if RecordHash(a) != RecordHash(a) {
		t.Fatal("hash not deterministic")
	}
	if RecordHash(a) == RecordHash(b) {
		t.Fatal("different records collide")
	}
}
