package repl

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"perm/internal/catalog"
	"perm/internal/value"
	"perm/internal/wire"
)

// FuzzWALRecord feeds arbitrary bytes through the record decoder — the
// exact payload bytes a WAL segment frame or a replication change frame
// carries. The decoder's contract on untrusted input: never panic, never
// allocate past the input's size class, fail only with ErrCorrupt, and
// round-trip every accepted record (re-encode, re-decode, identical —
// non-canonical varints may differ in bytes, never in meaning).
func FuzzWALRecord(f *testing.F) {
	// Seeds are real segment payloads: AppendRecord's encoding is, byte for
	// byte, what internal/wal frames on disk and the follower receives in
	// MsgChanges.
	row := value.Row{value.NewInt(42), value.NewString("x"), value.Null, value.NewFloat(2.5), value.NewBool(true)}
	seeds := []Record{
		{LSN: 1, Kind: KindCreateTable, Table: "kv", Columns: []catalog.Column{
			{Name: "k", Type: value.KindInt, NotNull: true},
			{Name: "v", Type: value.KindString},
		}},
		{LSN: 2, Kind: KindInsert, Table: "kv", Rows: []value.Row{row, row}},
		{LSN: 3, Kind: KindUpdate, Table: "kv", Rows: []value.Row{row}, OldRows: []value.Row{row}},
		{LSN: 4, Kind: KindDelete, Table: "kv", Rows: []value.Row{row}},
		{LSN: 5, Kind: KindCreateView, Table: "vv", ViewText: "SELECT k FROM kv", Columns: []catalog.Column{{Name: "k", Type: value.KindInt}}},
		{LSN: 6, Kind: KindDropView, Table: "vv"},
		{LSN: 7, Kind: KindDropTable, Table: "kv"},
		{LSN: 8, Kind: KindAnalyze},
	}
	for _, rec := range seeds {
		f.Add(AppendRecord(nil, rec))
	}
	f.Add(AppendBatch(nil, seeds))
	// Corruption seeds: truncated tails, hostile counts, garbage.
	enc := AppendRecord(nil, seeds[1])
	f.Add(enc[:len(enc)/2])
	f.Add([]byte{0x01, 0xFF})                               // unknown kind
	f.Add([]byte{0x01, 0x01, 0x00, 0xFF, 0xFF, 0xFF, 0x0F}) // huge row count
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ReadRecord(wire.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error not wrapping ErrCorrupt: %v", err)
			}
		} else {
			re := AppendRecord(nil, rec)
			rec2, err2 := ReadRecord(wire.NewReader(re))
			if err2 != nil {
				t.Fatalf("re-decode of re-encoded record failed: %v", err2)
			}
			if !reflect.DeepEqual(rec, rec2) {
				t.Fatalf("round-trip mismatch:\n  first  %+v\n  second %+v", rec, rec2)
			}
			re2 := AppendRecord(nil, rec2)
			if !bytes.Equal(re, re2) {
				t.Fatalf("re-encoding unstable")
			}
		}
		// The batch decoder shares the record decoder; it must hold the same
		// contract on the same bytes.
		if recs, berr := DecodeBatch(data); berr != nil {
			if !errors.Is(berr, ErrCorrupt) {
				t.Fatalf("batch decode error not wrapping ErrCorrupt: %v", berr)
			}
		} else {
			for _, r := range recs {
				enc := AppendRecord(nil, r)
				if _, err := ReadRecord(wire.NewReader(enc)); err != nil {
					t.Fatalf("batch record does not re-decode: %v", err)
				}
			}
		}
	})
}
