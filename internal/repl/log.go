package repl

import (
	"fmt"
	"sync"

	"perm/internal/value"
)

// DefaultRetention is the number of records a ChangeLog keeps by default.
// A follower that falls further behind than the retained tail cannot resume
// incrementally and must re-bootstrap from a snapshot.
const DefaultRetention = 100_000

// DefaultRetentionBytes bounds the approximate memory the retained tail may
// pin (64 MiB). Record counts alone don't bound memory — delete/update
// records alias full row images, so a handful of full-table mutations on a
// wide table could otherwise pin multiples of the live heap.
const DefaultRetentionBytes = 64 << 20

// ChangeLog is an in-memory, bounded log of committed changes. It is safe
// for concurrent use: the storage engine appends from mutation critical
// sections while subscription streams read tails and wait for growth.
//
// The log is a sliding window: records past the retention limit are trimmed
// from the front, and Since reports when a requested position has been
// trimmed away so the caller can fall back to a full snapshot.
type ChangeLog struct {
	mu sync.Mutex
	// recs holds the retained tail; recs[i].LSN == base+1+i.
	recs []Record
	// costs[i] is the approximate retained size of recs[i] (see recordCost);
	// totalCost is their sum.
	costs     []int
	totalCost int
	// base is the LSN of the last record trimmed away (0 when nothing ever
	// was), i.e. the log currently describes (base, base+len(recs)].
	base        uint64
	retain      int
	retainBytes int
	// trimmed counts records dropped since the last reallocation; slicing
	// from the front pins the backing array (and every row it references),
	// so the tail is copied out once trimming has advanced far enough.
	trimmed int
	// notify is closed and replaced on every append: a snapshot of this
	// channel is a one-shot "the log has grown" signal for subscribers.
	notify chan struct{}
	// hook, when set, observes every accepted record under l.mu, in strict
	// LSN order, inside the same critical section that published it — the
	// write-ahead log journals from here, so a point-in-time snapshot, the
	// in-memory log and the on-disk log can never disagree on ordering.
	hook func(Record)
}

// NewChangeLog returns an empty log with the default retention bounds.
func NewChangeLog() *ChangeLog {
	return &ChangeLog{
		retain:      DefaultRetention,
		retainBytes: DefaultRetentionBytes,
		notify:      make(chan struct{}),
	}
}

// SetRetention bounds the number of retained records; n <= 0 keeps every
// record (tests, short-lived tools). Lowering it takes effect on the next
// append.
func (l *ChangeLog) SetRetention(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retain = n
}

// SetRetentionBytes bounds the approximate memory of the retained tail;
// n <= 0 removes the byte bound. The newest record is always kept, so one
// oversized mutation streams through rather than wedging the log.
func (l *ChangeLog) SetRetentionBytes(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retainBytes = n
}

// Retention reports the record-count and byte bounds, so a freshly
// bootstrapped store can inherit the configuration of the one it replaces.
func (l *ChangeLog) Retention() (records, bytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.retain, l.retainBytes
}

// recordCost approximates the bytes rec pins while retained: slice and
// value headers plus string payloads. Row values are shared with the heap
// (inserts) or were just detached from it (deletes/updates), so this is an
// upper bound on what retention alone keeps alive.
func recordCost(rec Record) int {
	c := 96 + len(rec.Table) + len(rec.ViewText) + 32*len(rec.Columns)
	for _, rows := range [2][]value.Row{rec.Rows, rec.OldRows} {
		for _, row := range rows {
			c += 24 * (len(row) + 1)
			for _, v := range row {
				c += len(v.S)
			}
		}
	}
	return c
}

// Append assigns the next LSN to rec, appends it, and returns the LSN.
func (l *ChangeLog) Append(rec Record) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.LSN = l.base + uint64(len(l.recs)) + 1
	l.push(rec)
	return rec.LSN
}

// AppendAt appends a record that already carries its LSN (a replica replaying
// the primary's feed). The LSN must be exactly the next position; anything
// else means the caller lost continuity and must resynchronize.
func (l *ChangeLog) AppendAt(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := l.base + uint64(len(l.recs)) + 1
	if rec.LSN != next {
		return fmt.Errorf("repl: append at LSN %d, log expects %d", rec.LSN, next)
	}
	l.push(rec)
	return nil
}

// SetAppendHook installs (or, with nil, removes) the per-append observer.
// The hook runs under the log's mutex on every accepted record — it must
// not call back into the log, and it must not block on anything slower
// than a buffered file write (fsync waiting belongs to the caller's
// post-critical-section durability wait, not here).
func (l *ChangeLog) SetAppendHook(fn func(Record)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.hook = fn
}

// push appends under l.mu, trims past the retention bounds, and wakes
// subscribers.
func (l *ChangeLog) push(rec Record) {
	if l.hook != nil {
		l.hook(rec)
	}
	l.recs = append(l.recs, rec)
	l.costs = append(l.costs, recordCost(rec))
	l.totalCost += l.costs[len(l.costs)-1]
	drop := 0
	if l.retain > 0 && len(l.recs) > l.retain {
		drop = len(l.recs) - l.retain
	}
	if l.retainBytes > 0 {
		// Drop oldest records until under the byte budget, but never the
		// newest one. Start from the cost of what the count bound already
		// kept — the prefix it drops must not count against the budget too.
		cost := l.totalCost
		for _, c := range l.costs[:drop] {
			cost -= c
		}
		for drop < len(l.recs)-1 && cost > l.retainBytes {
			cost -= l.costs[drop]
			drop++
		}
	}
	if drop > 0 {
		for _, c := range l.costs[:drop] {
			l.totalCost -= c
		}
		l.base += uint64(drop)
		l.recs = l.recs[drop:]
		l.costs = l.costs[drop:]
		l.trimmed += drop
		// Reallocate once the dropped prefix rivals the retained tail, so
		// trimming actually releases the old records' memory (amortized O(1)
		// per append).
		if l.trimmed >= len(l.recs)+1 {
			l.recs = append(make([]Record, 0, len(l.recs)), l.recs...)
			l.costs = append(make([]int, 0, len(l.costs)), l.costs...)
			l.trimmed = 0
		}
	}
	close(l.notify)
	l.notify = make(chan struct{})
}

// LastLSN returns the LSN of the newest record (the log's position). It is
// also the node's replication position: on a replica the log replays the
// primary's records at their original LSNs, so LastLSN is "applied LSN".
func (l *ChangeLog) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + uint64(len(l.recs))
}

// OldestLSN returns the LSN of the oldest retained record, or 0 when the
// retained tail is empty.
func (l *ChangeLog) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.recs) == 0 {
		return 0
	}
	return l.base + 1
}

// Since returns up to max records with LSN > after (all of them when max <=
// 0). ok is false when records after `after` have already been trimmed —
// the caller cannot catch up incrementally and must take a snapshot.
func (l *ChangeLog) Since(after uint64, max int) (recs []Record, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < l.base {
		return nil, false
	}
	// The subtraction stays in uint64: a position far past the tail (or an
	// attacker-controlled huge LSN) must compare, not overflow an int.
	if after-l.base >= uint64(len(l.recs)) {
		return nil, true
	}
	idx := int(after - l.base)
	tail := l.recs[idx:]
	if max > 0 && len(tail) > max {
		tail = tail[:max]
	}
	// Copy the headers so trimming can never race a consumer iterating the
	// returned slice; the records themselves are immutable.
	recs = make([]Record, len(tail))
	copy(recs, tail)
	return recs, true
}

// WaitCh returns a channel closed by the next append. The standard pattern
// for tailing without missed wakeups is: take the channel, call Since, and
// only if Since returned nothing wait on the channel.
func (l *ChangeLog) WaitCh() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notify
}

// Reset empties the log and positions it at lsn: the next assigned LSN is
// lsn+1, and no history before lsn is available. Restoring a snapshot taken
// at LSN lsn uses this so the restored node continues the primary's LSN
// space.
func (l *ChangeLog) Reset(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.base = lsn
	l.recs = nil
	l.costs = nil
	l.totalCost = 0
	l.trimmed = 0
	close(l.notify)
	l.notify = make(chan struct{})
}
