// Package repl implements logical replication for Perm: a monotonic change
// log of committed mutations (row images for DML, definitions for DDL) that a
// primary appends to and followers replay. Provenance queries are rewritten
// read queries — SQL-PLE never mutates data — so replicas built from this
// feed answer SELECT PROVENANCE byte-identically to the primary once caught
// up, which is what makes read scale-out the natural scaling axis for the
// workload.
//
// The package deliberately knows nothing about storage or the network: the
// storage engine appends Records inside its own write-gate critical sections
// (see internal/storage), and internal/server streams encoded records over
// the wire protocol. Both directions share the binary codec defined here.
//
// # LSNs
//
// Every record carries a log sequence number. LSNs are assigned densely and
// monotonically (1, 2, 3, …) on the primary; a replica replays records at
// their primary LSNs, so the LSN space is global across a replication tree
// and "applied LSN" is directly comparable between any two nodes. LSN 0 is
// never assigned — it is the position of an empty database and the sentinel
// for "assign the next LSN" in Record.LSN.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"perm/internal/catalog"
	"perm/internal/value"
	"perm/internal/wire"
)

// ErrCorrupt is wrapped by every decode error in this package: a record or
// batch that cannot be decoded from untrusted bytes (a replication peer, a
// WAL segment off disk). The decoder's contract is to return this — never
// to panic and never to over-allocate — whatever the input; the WAL's
// recovery turns it into a truncation point, the follower into a resync.
var ErrCorrupt = errors.New("repl: corrupt record")

// Kind enumerates the logical change types.
type Kind uint8

const (
	// KindInsert appends Rows to Table.
	KindInsert Kind = iota + 1
	// KindDelete removes the row images in Rows from Table (multiset match
	// in table order).
	KindDelete
	// KindUpdate replaces the row images in OldRows with the parallel images
	// in Rows (multiset match in table order).
	KindUpdate
	// KindCreateTable creates Table with Columns.
	KindCreateTable
	// KindDropTable drops Table.
	KindDropTable
	// KindCreateView creates view Table defined by ViewText with Columns.
	KindCreateView
	// KindDropView drops view Table.
	KindDropView
	// KindAnalyze refreshes statistics for Table (all tables when empty).
	KindAnalyze
)

func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "INSERT"
	case KindDelete:
		return "DELETE"
	case KindUpdate:
		return "UPDATE"
	case KindCreateTable:
		return "CREATE TABLE"
	case KindDropTable:
		return "DROP TABLE"
	case KindCreateView:
		return "CREATE VIEW"
	case KindDropView:
		return "DROP VIEW"
	case KindAnalyze:
		return "ANALYZE"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Record is one committed logical change. Only the fields relevant to Kind
// are populated (see the Kind constants). Rows alias the storage engine's
// immutable row values; a Record, once appended, must be treated as
// read-only by every consumer.
type Record struct {
	// LSN is the record's position in the change log. Zero means "not yet
	// assigned": the log assigns the next LSN on append. A replica replaying
	// a primary's feed appends at the primary's LSN instead.
	LSN  uint64
	Kind Kind
	// Table is the target relation (table or view name; the ANALYZE target,
	// empty for ANALYZE of all tables).
	Table string
	// Rows holds inserted rows (KindInsert), removed row images (KindDelete)
	// or new row images (KindUpdate, parallel to OldRows).
	Rows []value.Row
	// OldRows holds the pre-update row images (KindUpdate only).
	OldRows []value.Row
	// Columns is the relation schema (KindCreateTable, KindCreateView).
	Columns []catalog.Column
	// ViewText is the defining SQL of a view (KindCreateView).
	ViewText string
}

// --- binary codec ---------------------------------------------------------------
//
// Records travel inside wire change-batch frames and reuse the wire payload
// primitives (varints, length-prefixed strings, kind-tagged values), so the
// value encoding has exactly one definition in the codebase.

// AppendRecord appends the binary encoding of r to dst.
func AppendRecord(dst []byte, r Record) []byte {
	dst = binary.AppendUvarint(dst, r.LSN)
	dst = append(dst, byte(r.Kind))
	dst = wire.AppendString(dst, r.Table)
	dst = appendRowSet(dst, r.Rows)
	dst = appendRowSet(dst, r.OldRows)
	dst = binary.AppendUvarint(dst, uint64(len(r.Columns)))
	for _, c := range r.Columns {
		dst = wire.AppendString(dst, c.Name)
		dst = append(dst, byte(c.Type))
		dst = wire.AppendBool(dst, c.NotNull)
	}
	dst = wire.AppendString(dst, r.ViewText)
	return dst
}

func appendRowSet(dst []byte, rows []value.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, row := range rows {
		dst = wire.AppendRow(dst, row)
	}
	return dst
}

// ReadRecord decodes one record from r. Every failure wraps ErrCorrupt.
func ReadRecord(r *wire.Reader) (Record, error) {
	var rec Record
	rec.LSN = r.Uvarint()
	rec.Kind = Kind(r.Byte())
	if err := r.Err(); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if rec.Kind < KindInsert || rec.Kind > KindAnalyze {
		return Record{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, uint8(rec.Kind))
	}
	rec.Table = r.String()
	rec.Rows = readRowSet(r)
	rec.OldRows = readRowSet(r)
	ncols := r.Uvarint()
	// Each column costs at least 3 payload bytes; reject impossible counts
	// before allocating.
	if err := r.Err(); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if ncols > uint64(r.Remaining())/3 {
		return Record{}, fmt.Errorf("%w: impossible column count %d", ErrCorrupt, ncols)
	}
	if ncols > 0 {
		rec.Columns = make([]catalog.Column, ncols)
		for i := range rec.Columns {
			rec.Columns[i].Name = r.String()
			rec.Columns[i].Type = value.Kind(r.Byte())
			rec.Columns[i].NotNull = r.Bool()
		}
	}
	rec.ViewText = r.String()
	if err := r.Err(); err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return rec, nil
}

func readRowSet(r *wire.Reader) []value.Row {
	n := r.Uvarint()
	if r.Err() != nil || n == 0 {
		return nil
	}
	// A row costs at least one payload byte (its arity varint). An
	// impossible count must fail the whole payload — silently returning nil
	// would let the decoder continue misaligned and produce a structurally
	// valid but wrong record.
	if n > uint64(r.Remaining()) {
		r.Fail("row set count")
		return nil
	}
	rows := make([]value.Row, 0, n)
	for i := uint64(0); i < n; i++ {
		rows = append(rows, r.Row())
	}
	return rows
}

// RecordHash fingerprints a record's full encoding (FNV-64a). A resuming
// follower sends the hash of the last record it applied; the primary
// compares it against its own record at that LSN, which catches a
// same-origin timeline fork — a primary restarted from an older snapshot
// that re-used LSNs for different changes — that origin and LSN checks
// alone cannot see. The check protects replicas that have applied at least
// one streamed record since their last bootstrap or snapshot-file restart;
// a replica whose local log tail is empty (fresh bootstrap, -open restart)
// sends no hash and resumes on the LSN/origin checks alone.
func RecordHash(rec Record) uint64 {
	h := fnv.New64a()
	h.Write(AppendRecord(nil, rec))
	return h.Sum64()
}

// AppendBatch appends a change-batch payload: a record count followed by the
// records. This is the payload of a wire.MsgChanges frame.
func AppendBatch(dst []byte, recs []Record) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	for _, r := range recs {
		dst = AppendRecord(dst, r)
	}
	return dst
}

// DecodeBatch parses a change-batch payload. Every failure wraps
// ErrCorrupt.
func DecodeBatch(payload []byte) ([]Record, error) {
	r := wire.NewReader(payload)
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// Each record costs several payload bytes; this bound only guards the
	// allocation below against corrupt counts.
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: impossible record count %d", ErrCorrupt, n)
	}
	recs := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		rec, err := ReadRecord(r)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
