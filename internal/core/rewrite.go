// Package core implements the paper's primary contribution: the Perm
// provenance rewriter. It transforms a relational algebra query q into a
// provenance query q+ whose result is the original result of q augmented
// with the contributing base-relation tuples as appended provenance
// attributes (named prov_<schema>_<relation>_<attribute>).
//
// The rewrite rules follow the Perm ICDE '09 PI-CS semantics (SQL-PLE
// contribution INFLUENCE) and a static approximation of C-CS (COPY), plus
// the EDBT '09 treatment of nested subqueries via de-correlation into
// lateral joins. Rules are compositional and never inspect how their input's
// provenance attributes were produced, which is what enables external
// provenance and incremental (BASERELATION) computation.
//
// Central invariant: for every operator T, the rewritten T+ preserves the
// positions of all original output columns and only appends provenance
// columns. Every rule relies on this to reuse the original, already-resolved
// expressions unchanged.
package core

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/sql"
)

// Semantics selects the contribution semantics of a rewrite.
type Semantics int

// Contribution semantics supported by the rewriter.
const (
	// InfluenceSemantics is PI-CS (Why-provenance flavored): all tuples that
	// influenced the existence of an output tuple.
	InfluenceSemantics Semantics = iota
	// CopySemantics is C-CS partial (Where-provenance flavored): an
	// attribute's provenance survives when its value is copied to the output
	// on at least one derivation path (e.g. one union branch); everything
	// else is NULL-masked. Contribution rows equal influence semantics.
	CopySemantics
	// CopyCompleteSemantics is C-CS complete: the attribute must be copied
	// on every derivation path (all union branches) to survive masking.
	CopyCompleteSemantics
)

func (s Semantics) String() string {
	switch s {
	case CopySemantics:
		return "COPY PARTIAL"
	case CopyCompleteSemantics:
		return "COPY COMPLETE"
	}
	return "INFLUENCE"
}

// AggStrategy selects the aggregation rewrite rule.
type AggStrategy int

// Aggregation strategies.
const (
	// AggJoinGroup joins the original aggregate back to the rewritten input
	// on the group-by keys (null-safe). Default.
	AggJoinGroup AggStrategy = iota
	// AggCrossFilter crosses the original aggregate with the rewritten input
	// and filters on the group keys afterwards; cheaper only for tiny inputs
	// (no hash build), the cost-based chooser's baseline alternative.
	AggCrossFilter
)

// SetStrategy selects the set-operation rewrite rule.
type SetStrategy int

// Set-operation strategies.
const (
	// SetPad rewrites both branches and pads the missing provenance columns
	// of the other branch with NULLs (the representation of Figure 2).
	// Default.
	SetPad SetStrategy = iota
	// SetJoin computes the original set operation and joins it back to the
	// padded union of the rewritten branches on tuple equality.
	SetJoin
)

// DistinctStrategy selects the duplicate-elimination rewrite rule.
type DistinctStrategy int

// Distinct strategies.
const (
	// DistinctPass uses δ(T)+ = T+ (each duplicate is its own witness).
	// Default.
	DistinctPass DistinctStrategy = iota
	// DistinctJoin joins δ(T) back to T+ on tuple equality.
	DistinctJoin
)

// StrategyMode selects how per-operator strategies are chosen.
type StrategyMode int

// Strategy selection modes.
const (
	// ModeHeuristic always applies the default strategy of each operator.
	ModeHeuristic StrategyMode = iota
	// ModeCost compares estimated costs via the Estimator and picks the
	// cheaper strategy.
	ModeCost
)

// Options configures a rewrite.
type Options struct {
	Semantics Semantics
	Mode      StrategyMode
	// Per-operator strategy overrides: when the *Forced flag is set the
	// corresponding strategy is applied unconditionally (the Perm browser's
	// "activate or deactivate rewrite strategies" toggle).
	Agg            AggStrategy
	AggForced      bool
	Set            SetStrategy
	SetForced      bool
	Distinct       DistinctStrategy
	DistinctForced bool
	// SchemaName is the schema part of generated provenance attribute names
	// (prov_<schema>_<rel>_<attr>); the paper's system uses "public".
	SchemaName string
	// Estimator returns the estimated output cardinality of a subtree; used
	// by ModeCost. When nil, ModeCost falls back to the heuristics.
	Estimator func(algebra.Op) float64
}

// DefaultOptions returns the paper defaults: influence semantics, heuristic
// strategy choice, PostgreSQL's "public" schema name.
func DefaultOptions() Options {
	return Options{SchemaName: "public"}
}

// Rewriter performs provenance rewrites. Create one per statement: it keeps
// per-query state (relation instance counters for unique provenance names).
type Rewriter struct {
	opts      Options
	instances map[string]int
	// created tracks which provenance column names were created by this
	// rewrite (as opposed to external/pre-existing provenance), for COPY
	// masking.
	created map[string]bool
	// Decisions records the strategy decisions taken, for EXPLAIN and the
	// Perm-browser display.
	Decisions []string
}

// NewRewriter returns a rewriter with the options.
func NewRewriter(opts Options) *Rewriter {
	if opts.SchemaName == "" {
		opts.SchemaName = "public"
	}
	return &Rewriter{
		opts:      opts,
		instances: make(map[string]int),
		created:   make(map[string]bool),
	}
}

// result is the outcome of rewriting one subtree.
type result struct {
	op   algebra.Op
	prov []int // provenance column indices in op.Schema()
	// copies[i] lists the provenance column indices whose base values are
	// copied verbatim into column i (C-CS tracking).
	copies [][]int
}

// Rewrite transforms q into q+ under the configured semantics. The returned
// tree's schema is q's schema followed by the provenance attributes.
func (r *Rewriter) Rewrite(q algebra.Op) (algebra.Op, error) {
	res, err := r.rewrite(q)
	if err != nil {
		return nil, err
	}
	if r.opts.Semantics == CopySemantics || r.opts.Semantics == CopyCompleteSemantics {
		return r.applyCopyMask(res), nil
	}
	return res.op, nil
}

// applyCopyMask NULLs out created provenance columns that are never copied
// into any data column of the final result (static C-CS).
func (r *Rewriter) applyCopyMask(res result) algebra.Op {
	sch := res.op.Schema()
	kept := make(map[int]bool)
	for i, c := range sch {
		if c.IsProv {
			continue
		}
		for _, p := range res.copies[i] {
			kept[p] = true
		}
	}
	exprs := algebra.IdentityExprs(sch)
	masked := false
	for _, p := range res.prov {
		if kept[p] || !r.created[sch[p].Name] {
			continue
		}
		exprs[p] = &algebra.Cast{E: algebra.NewNull(), To: sch[p].Type}
		masked = true
	}
	if !masked {
		return res.op
	}
	proj := algebra.NewProject(res.op, exprs, sch.Names())
	copy(proj.Sch, sch)
	r.note("COPY mask: nulled non-copied provenance attributes")
	return proj
}

func (r *Rewriter) note(format string, args ...interface{}) {
	r.Decisions = append(r.Decisions, fmt.Sprintf(format, args...))
}

// instanceName allocates a unique provenance relation-instance name.
func (r *Rewriter) instanceName(rel string) string {
	n := r.instances[rel]
	r.instances[rel] = n + 1
	if n == 0 {
		return rel
	}
	return fmt.Sprintf("%s_%d", rel, n)
}

// ProvAttrName builds the paper's provenance attribute naming scheme.
func ProvAttrName(schema, rel, attr string) string {
	return fmt.Sprintf("prov_%s_%s_%s", schema, rel, attr)
}

// emptyCopies allocates the no-copies tracking for a schema width.
func emptyCopies(n int) [][]int { return make([][]int, n) }

// rewrite dispatches on the operator kind.
func (r *Rewriter) rewrite(op algebra.Op) (result, error) {
	// Rule 0 — subtrees marked ProvDone already carry their provenance
	// (external provenance via PROVENANCE (attrs), or an inner SELECT
	// PROVENANCE that was already rewritten): pass through untouched — the
	// rules are unaware of how the provenance of their input was produced.
	if pd, ok := op.(*algebra.ProvDone); ok {
		prov := pd.Schema().ProvIdx()
		copies := emptyCopies(len(pd.Schema()))
		for _, p := range prov {
			copies[p] = []int{p}
		}
		return result{op: pd.Input, prov: prov, copies: copies}, nil
	}
	switch o := op.(type) {
	case *algebra.Scan:
		return r.rewriteBase(o, o.Table, o.Sch)
	case *algebra.BaseRel:
		return r.rewriteBase(o.Input, o.RelName, o.Input.Schema())
	case *algebra.Values:
		return result{op: o, copies: emptyCopies(len(o.Sch))}, nil
	case *algebra.Project:
		return r.rewriteProject(o)
	case *algebra.Select:
		return r.rewriteSelect(o)
	case *algebra.Join:
		return r.rewriteJoin(o)
	case *algebra.Agg:
		return r.rewriteAgg(o)
	case *algebra.Distinct:
		return r.rewriteDistinct(o)
	case *algebra.SetOp:
		return r.rewriteSetOp(o)
	case *algebra.Sort:
		in, err := r.rewrite(o.Input)
		if err != nil {
			return result{}, err
		}
		return result{op: &algebra.Sort{Input: in.op, Keys: o.Keys}, prov: in.prov, copies: in.copies}, nil
	case *algebra.Limit:
		return r.rewriteLimit(o)
	}
	return result{}, fmt.Errorf("provenance rewrite: unsupported operator %T", op)
}

// rewriteBase implements the base-relation rule: duplicate every output
// attribute as a provenance attribute named prov_<schema>_<rel>_<attr>.
// It serves Scan (actual base relations) and BaseRel (SQL-PLE BASERELATION
// subtrees treated like base relations).
func (r *Rewriter) rewriteBase(input algebra.Op, rel string, sch algebra.Schema) (result, error) {
	inst := r.instanceName(rel)
	n := len(sch)
	exprs := make([]algebra.Expr, 0, 2*n)
	names := make([]string, 0, 2*n)
	exprs = append(exprs, algebra.IdentityExprs(sch)...)
	names = append(names, sch.Names()...)
	for i, c := range sch {
		exprs = append(exprs, &algebra.ColIdx{Idx: i, Typ: c.Type, Name: c.Name})
		names = append(names, ProvAttrName(r.opts.SchemaName, inst, c.Name))
	}
	proj := algebra.NewProject(input, exprs, names)
	copy(proj.Sch[:n], sch)
	prov := make([]int, n)
	copies := emptyCopies(2 * n)
	for i := 0; i < n; i++ {
		p := n + i
		prov[i] = p
		proj.Sch[p].IsProv = true
		proj.Sch[p].ProvRel = inst
		proj.Sch[p].ProvAttr = sch[i].Name
		r.created[proj.Sch[p].Name] = true
		copies[i] = []int{p}
		copies[p] = []int{p}
	}
	return result{op: proj, prov: prov, copies: copies}, nil
}

// rewriteProject implements (Π_A(T))+ = Π_{A,P(T+)}(T+).
func (r *Rewriter) rewriteProject(p *algebra.Project) (result, error) {
	for _, e := range p.Exprs {
		if algebra.HasSubplan(e) {
			return result{}, fmt.Errorf("provenance rewrite: subqueries in the select list are not supported; move the subquery into the FROM clause")
		}
	}
	in, err := r.rewrite(p.Input)
	if err != nil {
		return result{}, err
	}
	nOut := len(p.Exprs)
	exprs := make([]algebra.Expr, 0, nOut+len(in.prov))
	names := make([]string, 0, nOut+len(in.prov))
	exprs = append(exprs, p.Exprs...)
	names = append(names, p.Sch.Names()...)
	inSch := in.op.Schema()
	// old prov index -> new position
	newPos := make(map[int]int, len(in.prov))
	for _, pi := range in.prov {
		newPos[pi] = len(exprs)
		exprs = append(exprs, &algebra.ColIdx{Idx: pi, Typ: inSch[pi].Type, Name: inSch[pi].Name})
		names = append(names, inSch[pi].Name)
	}
	proj := algebra.NewProject(in.op, exprs, names)
	copy(proj.Sch[:nOut], p.Sch)
	prov := make([]int, 0, len(in.prov))
	copies := emptyCopies(len(exprs))
	for _, pi := range in.prov {
		np := newPos[pi]
		proj.Sch[np] = inSch[pi]
		prov = append(prov, np)
		copies[np] = translate(in.copies[pi], newPos)
	}
	for j, e := range p.Exprs {
		if ci, ok := e.(*algebra.ColIdx); ok {
			copies[j] = translate(in.copies[ci.Idx], newPos)
		}
	}
	return result{op: proj, prov: prov, copies: copies}, nil
}

// translate maps old provenance indices through newPos, dropping unmapped.
func translate(old []int, newPos map[int]int) []int {
	var out []int
	for _, p := range old {
		if np, ok := newPos[p]; ok {
			out = append(out, np)
		}
	}
	return out
}

// identityPos builds the identity translation for n columns.
func identityPos(n int) map[int]int {
	m := make(map[int]int, n)
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return m
}

// rewriteSelect implements (σ_c(T))+ = σ_c(T+), plus the EDBT '09 nested-
// subquery rules: positive EXISTS/IN/scalar comparisons are de-correlated
// into (lateral) joins with the rewritten subquery so that contributing
// subquery tuples appear in the provenance; negated forms keep the runtime
// subplan and contribute no subquery provenance (PI-CS's left-only semantics
// for negation, as with set difference).
func (r *Rewriter) rewriteSelect(s *algebra.Select) (result, error) {
	in, err := r.rewrite(s.Input)
	if err != nil {
		return result{}, err
	}
	cur := in
	var residual []algebra.Expr
	for _, conj := range algebra.SplitAnd(s.Cond) {
		if !algebra.HasSubplan(conj) {
			residual = append(residual, conj)
			continue
		}
		next, handled, err := r.decorrelateConjunct(cur, conj)
		if err != nil {
			return result{}, err
		}
		if handled {
			cur = next
			continue
		}
		residual = append(residual, conj)
	}
	if cond := algebra.AndAll(residual); cond != nil {
		cur = result{op: &algebra.Select{Input: cur.op, Cond: cond}, prov: cur.prov, copies: cur.copies}
	}
	return cur, nil
}

// decorrelateConjunct turns one subplan-bearing conjunct into a join against
// the rewritten subquery. Returns handled=false when the conjunct shape is
// not rewritable into a join (it then stays a runtime filter).
func (r *Rewriter) decorrelateConjunct(cur result, conj algebra.Expr) (result, bool, error) {
	switch x := conj.(type) {
	case *algebra.Subplan:
		switch x.Mode {
		case algebra.ExistsSubplan:
			if x.Neg {
				// NOT EXISTS: runtime filter, no subquery provenance.
				r.note("NOT EXISTS kept as filter (no subquery provenance, PI-CS negation)")
				return cur, false, nil
			}
			r.note("EXISTS de-correlated into %sjoin", lateralWord(x.Correlated))
			next, err := r.joinSubquery(cur, x.Plan, x.Correlated, nil, nil)
			return next, err == nil, err
		case algebra.InSubplan:
			if x.Neg {
				r.note("NOT IN kept as filter (no subquery provenance, PI-CS negation)")
				return cur, false, nil
			}
			r.note("IN de-correlated into %sjoin", lateralWord(x.Correlated))
			next, err := r.joinSubquery(cur, x.Plan, x.Correlated, x.Needle, eqOp())
			return next, err == nil, err
		case algebra.AnySubplan:
			// needle op ANY (sub) joins on the comparison: one witness row
			// per matching subquery tuple — the quantifier's positive form.
			r.note("%s ANY de-correlated into %sjoin", x.CmpOp, lateralWord(x.Correlated))
			op := x.CmpOp
			next, err := r.joinSubquery(cur, x.Plan, x.Correlated, x.Needle, &op)
			return next, err == nil, err
		case algebra.AllSubplan:
			// ALL is a universal quantifier (negation-shaped): kept as a
			// runtime filter, contributing no subquery provenance, like
			// NOT IN and set difference under PI-CS.
			r.note("%s ALL kept as filter (no subquery provenance, PI-CS negation)", x.CmpOp)
			return cur, false, nil
		default:
			return cur, false, nil
		}
	case *algebra.Bin:
		// Comparison against a scalar subquery: lhs op (SELECT ...).
		if sp, ok := x.R.(*algebra.Subplan); ok && sp.Mode == algebra.ScalarSubplan && !algebra.HasSubplan(x.L) {
			r.note("scalar subquery comparison de-correlated into %sjoin", lateralWord(sp.Correlated))
			next, err := r.joinSubquery(cur, sp.Plan, sp.Correlated, x.L, &x.Op)
			return next, err == nil, err
		}
		if sp, ok := x.L.(*algebra.Subplan); ok && sp.Mode == algebra.ScalarSubplan && !algebra.HasSubplan(x.R) {
			flipped := flipComparison(x.Op)
			if flipped == nil {
				return cur, false, nil
			}
			r.note("scalar subquery comparison de-correlated into %sjoin", lateralWord(sp.Correlated))
			next, err := r.joinSubquery(cur, sp.Plan, sp.Correlated, x.R, flipped)
			return next, err == nil, err
		}
	}
	return cur, false, nil
}

func lateralWord(correlated bool) string {
	if correlated {
		return "lateral "
	}
	return ""
}

func eqOp() *sql.BinOp {
	op := sql.OpEq
	return &op
}

// flipComparison mirrors a comparison operator (a op b == b op' a).
func flipComparison(op sql.BinOp) *sql.BinOp {
	var out sql.BinOp
	switch op {
	case sql.OpEq:
		out = sql.OpEq
	case sql.OpNeq:
		out = sql.OpNeq
	case sql.OpLt:
		out = sql.OpGt
	case sql.OpLte:
		out = sql.OpGte
	case sql.OpGt:
		out = sql.OpLt
	case sql.OpGte:
		out = sql.OpLte
	default:
		return nil
	}
	return &out
}

// joinSubquery joins cur with the rewritten subquery plan. When needle/op are
// given, the join condition compares the needle (over cur's columns) with the
// subquery's single data column; otherwise the join is cross/lateral (pure
// EXISTS). The subquery's data columns are projected away afterwards, keeping
// only its provenance columns, so cur's original columns stay a prefix.
func (r *Rewriter) joinSubquery(cur result, plan algebra.Op, correlated bool, needle algebra.Expr, cmp *sql.BinOp) (result, error) {
	sub, err := r.rewrite(plan)
	if err != nil {
		return result{}, err
	}
	nCur := len(cur.op.Schema())
	subSch := sub.op.Schema()
	var cond algebra.Expr
	if needle != nil {
		data := subSch.DataIdx()
		if len(data) != 1 {
			return result{}, fmt.Errorf("provenance rewrite: subquery comparison needs exactly one output column, got %d", len(data))
		}
		di := data[0]
		cond = &algebra.Bin{
			Op: *cmp,
			L:  needle, // references cur columns — prefix-preserved
			R:  &algebra.ColIdx{Idx: nCur + di, Typ: subSch[di].Type, Name: subSch[di].Name},
		}
	}
	join := algebra.NewJoin(algebra.JoinInner, cur.op, sub.op, cond)
	join.Lateral = correlated

	// Keep cur's columns and only the subquery's provenance columns.
	exprs := algebra.IdentityExprs(cur.op.Schema())
	names := append([]string{}, cur.op.Schema().Names()...)
	newPos := identityPos(nCur)
	joinSch := join.Sch
	for _, p := range sub.prov {
		jp := nCur + p
		newPos[jp] = len(exprs)
		exprs = append(exprs, &algebra.ColIdx{Idx: jp, Typ: joinSch[jp].Type, Name: joinSch[jp].Name})
		names = append(names, joinSch[jp].Name)
	}
	proj := algebra.NewProject(join, exprs, names)
	copy(proj.Sch[:nCur], cur.op.Schema())
	prov := append([]int{}, cur.prov...)
	copies := emptyCopies(len(exprs))
	copy(copies, cur.copies)
	for _, p := range sub.prov {
		np := newPos[nCur+p]
		proj.Sch[np] = subSch[p]
		prov = append(prov, np)
		copies[np] = []int{np}
	}
	return result{op: proj, prov: prov, copies: copies}, nil
}

// rewriteJoin implements (T1 ⋈_c T2)+ = Π_reorder(T1+ ⋈_c' T2+): both inputs
// are rewritten, the condition's right-side indices shift past T1's new
// provenance columns, and a projection restores the original-columns-first
// layout.
func (r *Rewriter) rewriteJoin(j *algebra.Join) (result, error) {
	if j.Cond != nil && algebra.HasSubplan(j.Cond) {
		return result{}, fmt.Errorf("provenance rewrite: subqueries in JOIN conditions are not supported")
	}
	left, err := r.rewrite(j.Left)
	if err != nil {
		return result{}, err
	}
	right, err := r.rewrite(j.Right)
	if err != nil {
		return result{}, err
	}
	nL := len(j.Left.Schema())
	nR := len(j.Right.Schema())
	nLplus := len(left.op.Schema())
	var cond algebra.Expr
	if j.Cond != nil {
		cond = algebra.MapCols(j.Cond, func(c *algebra.ColIdx) algebra.Expr {
			if c.Idx >= nL {
				return &algebra.ColIdx{Idx: c.Idx - nL + nLplus, Typ: c.Typ, Name: c.Name}
			}
			return c
		})
	}
	join := algebra.NewJoin(j.Kind, left.op, right.op, cond)
	join.Lateral = j.Lateral

	// Reorder to [T1 data, T2 data, P1, P2].
	joinSch := join.Sch
	exprs := make([]algebra.Expr, 0, len(joinSch))
	names := make([]string, 0, len(joinSch))
	newPos := make(map[int]int)
	take := func(idx int) {
		newPos[idx] = len(exprs)
		exprs = append(exprs, &algebra.ColIdx{Idx: idx, Typ: joinSch[idx].Type, Name: joinSch[idx].Name})
		names = append(names, joinSch[idx].Name)
	}
	for i := 0; i < nL; i++ {
		take(i)
	}
	for i := 0; i < nR; i++ {
		take(nLplus + i)
	}
	for _, p := range left.prov {
		take(p)
	}
	for _, p := range right.prov {
		take(nLplus + p)
	}
	proj := algebra.NewProject(join, exprs, names)
	for old, np := range newPos {
		proj.Sch[np] = joinSch[old]
	}
	prov := make([]int, 0, len(left.prov)+len(right.prov))
	copies := emptyCopies(len(exprs))
	for i := 0; i < nL; i++ {
		copies[newPos[i]] = translate(left.copies[i], newPos)
	}
	for i := 0; i < nR; i++ {
		shifted := shiftList(right.copies[i], nLplus)
		copies[newPos[nLplus+i]] = translate(shifted, newPos)
	}
	for _, p := range left.prov {
		np := newPos[p]
		prov = append(prov, np)
		copies[np] = []int{np}
	}
	for _, p := range right.prov {
		np := newPos[nLplus+p]
		prov = append(prov, np)
		copies[np] = []int{np}
	}
	return result{op: proj, prov: prov, copies: copies}, nil
}

func shiftList(xs []int, delta int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x + delta
	}
	return out
}
