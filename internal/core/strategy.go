package core

import (
	"fmt"

	"perm/internal/algebra"
	"perm/internal/sql"
	"perm/internal/value"
)

// This file holds the rewrite rules with multiple strategies — aggregation,
// duplicate elimination, set operations, and LIMIT — together with the
// heuristic / cost-based strategy chooser the paper describes in §2.2 ("we
// provide a heuristic and a cost-based solution for choosing the best
// rewrite strategy").

// estimate returns the estimated cardinality of op, or def when no estimator
// is configured.
func (r *Rewriter) estimate(op algebra.Op, def float64) float64 {
	if r.opts.Estimator == nil {
		return def
	}
	return r.opts.Estimator(op)
}

// chooseAgg picks the aggregation strategy.
func (r *Rewriter) chooseAgg(a *algebra.Agg) AggStrategy {
	if r.opts.AggForced {
		return r.opts.Agg
	}
	switch r.opts.Mode {
	case ModeCost:
		if r.opts.Estimator != nil {
			// Join-back costs ~ build(input) + probe(groups); cross-filter
			// costs groups × input. Cross wins only when their product is
			// smaller than the hash overhead — i.e. for tiny inputs.
			in := r.estimate(a.Input, 1000)
			groups := r.estimate(a, 10)
			if groups*in < 64 {
				r.note("cost-based: AggCrossFilter (|groups|×|input| = %.0f)", groups*in)
				return AggCrossFilter
			}
			r.note("cost-based: AggJoinGroup (|groups|×|input| = %.0f)", groups*in)
			return AggJoinGroup
		}
		return AggJoinGroup
	default:
		return AggJoinGroup
	}
}

// chooseSet picks the set-operation strategy.
func (r *Rewriter) chooseSet(s *algebra.SetOp) SetStrategy {
	if r.opts.SetForced {
		return r.opts.Set
	}
	switch r.opts.Mode {
	case ModeCost:
		if r.opts.Estimator != nil {
			// Padding reads each branch once. Join-back additionally
			// computes the original set operation and a join; it only wins
			// when the set operation shrinks the result a lot and provenance
			// consumers filter on it — heuristically when the distinct
			// result is much smaller than the union of branches.
			union := r.estimate(s.Left, 1000) + r.estimate(s.Right, 1000)
			distinct := r.estimate(s, union)
			if distinct < union/8 {
				r.note("cost-based: SetJoin (|setop| %.0f ≪ |branches| %.0f)", distinct, union)
				return SetJoin
			}
			r.note("cost-based: SetPad (|setop| %.0f vs |branches| %.0f)", distinct, union)
			return SetPad
		}
		return SetPad
	default:
		return SetPad
	}
}

// chooseDistinct picks the duplicate-elimination strategy.
func (r *Rewriter) chooseDistinct(d *algebra.Distinct) DistinctStrategy {
	if r.opts.DistinctForced {
		return r.opts.Distinct
	}
	return DistinctPass
}

// --- aggregation -----------------------------------------------------------------

// rewriteAgg implements (α_{G,agg}(T))+ = Π_{A,P(T+)}(α_{G,agg}(T) ⟕_{G ≐ G'} T+):
// the original aggregation result is joined back to the rewritten input on
// the group-by expressions with null-safe equality (≐, IS NOT DISTINCT
// FROM). A left join keeps the scalar-aggregation row (no GROUP BY, empty
// input) with NULL provenance.
func (r *Rewriter) rewriteAgg(a *algebra.Agg) (result, error) {
	for _, g := range a.GroupBy {
		if algebra.HasSubplan(g) {
			return result{}, fmt.Errorf("provenance rewrite: subqueries in GROUP BY are not supported")
		}
	}
	for _, ae := range a.Aggs {
		if ae.Arg != nil && algebra.HasSubplan(ae.Arg) {
			return result{}, fmt.Errorf("provenance rewrite: subqueries in aggregate arguments are not supported")
		}
	}
	in, err := r.rewrite(a.Input)
	if err != nil {
		return result{}, err
	}
	strategy := r.chooseAgg(a)
	nAgg := len(a.Sch)

	// Null-safe equality between the aggregate's group columns and the group
	// expressions recomputed over the rewritten input (whose original columns
	// are a position-preserving prefix).
	var conds []algebra.Expr
	for i, g := range a.GroupBy {
		shifted := algebra.ShiftCols(g, nAgg)
		conds = append(conds, &algebra.Bin{
			Op: sql.OpNotDistinct,
			L:  &algebra.ColIdx{Idx: i, Typ: a.Sch[i].Type, Name: a.Sch[i].Name},
			R:  shifted,
		})
	}
	var join *algebra.Join
	switch strategy {
	case AggCrossFilter:
		join = algebra.NewJoin(algebra.JoinLeft, a, in.op, nil)
		if cond := algebra.AndAll(conds); cond != nil {
			// Cross then filter: the filter sits above the join.
			filtered := &algebra.Select{Input: join, Cond: cond}
			return r.aggProject(a, in, filtered, nAgg)
		}
	default:
		join = algebra.NewJoin(algebra.JoinLeft, a, in.op, algebra.AndAll(conds))
	}
	return r.aggProject(a, in, join, nAgg)
}

// aggProject projects the joined aggregation down to [agg outputs, P(T+)].
func (r *Rewriter) aggProject(a *algebra.Agg, in result, joined algebra.Op, nAgg int) (result, error) {
	joinSch := joined.Schema()
	exprs := make([]algebra.Expr, 0, nAgg+len(in.prov))
	names := make([]string, 0, nAgg+len(in.prov))
	for i := 0; i < nAgg; i++ {
		exprs = append(exprs, &algebra.ColIdx{Idx: i, Typ: joinSch[i].Type, Name: joinSch[i].Name})
		names = append(names, a.Sch[i].Name)
	}
	newPos := make(map[int]int)
	for _, p := range in.prov {
		jp := nAgg + p
		newPos[jp] = len(exprs)
		exprs = append(exprs, &algebra.ColIdx{Idx: jp, Typ: joinSch[jp].Type, Name: joinSch[jp].Name})
		names = append(names, joinSch[jp].Name)
	}
	proj := algebra.NewProject(joined, exprs, names)
	copy(proj.Sch[:nAgg], a.Sch)
	prov := make([]int, 0, len(in.prov))
	copies := emptyCopies(len(exprs))
	inSch := in.op.Schema()
	for _, p := range in.prov {
		np := newPos[nAgg+p]
		proj.Sch[np] = inSch[p]
		prov = append(prov, np)
		copies[np] = []int{np}
	}
	// C-CS: group columns that are plain column references copy their base
	// attribute; aggregate results copy nothing.
	for i, g := range a.GroupBy {
		if ci, ok := g.(*algebra.ColIdx); ok {
			shifted := shiftList(in.copies[ci.Idx], nAgg)
			copies[i] = translate(shifted, newPos)
		}
	}
	return result{op: proj, prov: prov, copies: copies}, nil
}

// --- distinct --------------------------------------------------------------------

// rewriteDistinct implements (δ(T))+ = T+ (DistinctPass): every duplicate of
// an output tuple is a witness, so the un-deduplicated rewritten input is
// exactly the provenance representation. DistinctJoin instead joins δ(T)
// back to T+ on tuple equality — same result, different cost profile.
func (r *Rewriter) rewriteDistinct(d *algebra.Distinct) (result, error) {
	in, err := r.rewrite(d.Input)
	if err != nil {
		return result{}, err
	}
	if r.chooseDistinct(d) == DistinctPass {
		return in, nil
	}
	r.note("DistinctJoin strategy: joining δ(T) back to T+")
	return r.joinBackOnTuple(d, d.Input.Schema(), in)
}

// joinBackOnTuple joins an original operator to a rewritten input on
// null-safe equality over all original data columns, projecting to
// [original columns, P(T+)]. Shared by DistinctJoin, SetJoin and Limit.
func (r *Rewriter) joinBackOnTuple(orig algebra.Op, origSch algebra.Schema, in result) (result, error) {
	nOrig := len(origSch)
	inSch := in.op.Schema()
	var conds []algebra.Expr
	for i := 0; i < nOrig; i++ {
		conds = append(conds, &algebra.Bin{
			Op: sql.OpNotDistinct,
			L:  &algebra.ColIdx{Idx: i, Typ: origSch[i].Type, Name: origSch[i].Name},
			R:  &algebra.ColIdx{Idx: nOrig + i, Typ: inSch[i].Type, Name: inSch[i].Name},
		})
	}
	join := algebra.NewJoin(algebra.JoinInner, orig, in.op, algebra.AndAll(conds))
	joinSch := join.Sch
	exprs := make([]algebra.Expr, 0, nOrig+len(in.prov))
	names := make([]string, 0, nOrig+len(in.prov))
	for i := 0; i < nOrig; i++ {
		exprs = append(exprs, &algebra.ColIdx{Idx: i, Typ: joinSch[i].Type, Name: joinSch[i].Name})
		names = append(names, origSch[i].Name)
	}
	newPos := make(map[int]int)
	for _, p := range in.prov {
		jp := nOrig + p
		newPos[jp] = len(exprs)
		exprs = append(exprs, &algebra.ColIdx{Idx: jp, Typ: joinSch[jp].Type, Name: joinSch[jp].Name})
		names = append(names, joinSch[jp].Name)
	}
	proj := algebra.NewProject(join, exprs, names)
	copy(proj.Sch[:nOrig], origSch)
	prov := make([]int, 0, len(in.prov))
	copies := emptyCopies(len(exprs))
	for i := 0; i < nOrig; i++ {
		shifted := shiftList(in.copies[i], nOrig)
		copies[i] = translate(shifted, newPos)
	}
	for _, p := range in.prov {
		np := newPos[nOrig+p]
		proj.Sch[np] = inSch[p]
		prov = append(prov, np)
		copies[np] = []int{np}
	}
	return result{op: proj, prov: prov, copies: copies}, nil
}

// --- set operations -----------------------------------------------------------------

// rewriteSetOp handles union, intersection and difference.
//
// Union (SetPad): (T1 ∪ T2)+ = pad(T1+) ∪All pad(T2+) — each branch is
// rewritten and NULL-padded with the other branch's provenance columns, the
// representation of Figure 2. Duplicate elimination of a distinct union
// disappears by the δ(T)+ = T+ rule: every branch row is a witness.
//
// Union (SetJoin): (T1 ∪ T2) ⋈≐ (pad(T1+) ∪All pad(T2+)) on tuple equality.
//
// Intersection: (T1 ∩ T2)+ joins the original intersection back to both
// rewritten branches on tuple equality — witnesses from both sides.
//
// Difference: PI-CS left-only semantics — (T1 − T2)+ joins the original
// difference back to T1+ only; T2's provenance columns are appended as
// NULLs to keep the full provenance schema.
func (r *Rewriter) rewriteSetOp(s *algebra.SetOp) (result, error) {
	switch s.Kind {
	case algebra.UnionAll, algebra.UnionDistinct:
		return r.rewriteUnion(s)
	case algebra.IntersectAll, algebra.IntersectDistinct:
		return r.rewriteIntersect(s)
	case algebra.ExceptAll, algebra.ExceptDistinct:
		return r.rewriteExcept(s)
	}
	return result{}, fmt.Errorf("provenance rewrite: unknown set operation %v", s.Kind)
}

// padBranch projects a rewritten branch to [data cols, own prov, NULLs for
// other prov] or [data cols, NULLs, own prov] depending on side.
func padBranch(branch result, dataSch algebra.Schema, ownFirst bool, otherProvSch []algebra.Column) (*algebra.Project, []int, [][]int) {
	brSch := branch.op.Schema()
	nData := len(dataSch)
	exprs := make([]algebra.Expr, 0, nData+len(branch.prov)+len(otherProvSch))
	names := make([]string, 0, cap(exprs))
	for i := 0; i < nData; i++ {
		exprs = append(exprs, &algebra.ColIdx{Idx: i, Typ: brSch[i].Type, Name: brSch[i].Name})
		names = append(names, dataSch[i].Name)
	}
	newPos := make(map[int]int)
	appendOwn := func() {
		for _, p := range branch.prov {
			newPos[p] = len(exprs)
			exprs = append(exprs, &algebra.ColIdx{Idx: p, Typ: brSch[p].Type, Name: brSch[p].Name})
			names = append(names, brSch[p].Name)
		}
	}
	var nullStart int
	appendNulls := func() {
		nullStart = len(exprs)
		for _, c := range otherProvSch {
			exprs = append(exprs, &algebra.Cast{E: algebra.NewNull(), To: c.Type})
			names = append(names, c.Name)
		}
	}
	if ownFirst {
		appendOwn()
		appendNulls()
	} else {
		appendNulls()
		appendOwn()
	}
	proj := algebra.NewProject(branch.op, exprs, names)
	copy(proj.Sch[:nData], dataSch)
	prov := make([]int, 0, len(branch.prov)+len(otherProvSch))
	copies := emptyCopies(len(exprs))
	for i := 0; i < nData; i++ {
		copies[i] = translate(branch.copies[i], newPos)
	}
	for _, p := range branch.prov {
		np := newPos[p]
		proj.Sch[np] = brSch[p]
		copies[np] = []int{np}
	}
	for j, c := range otherProvSch {
		proj.Sch[nullStart+j] = c
	}
	// Provenance indices in output order (own/other interleaved by position).
	for i := nData; i < len(exprs); i++ {
		prov = append(prov, i)
	}
	return proj, prov, copies
}

func (r *Rewriter) rewriteUnion(s *algebra.SetOp) (result, error) {
	left, err := r.rewrite(s.Left)
	if err != nil {
		return result{}, err
	}
	right, err := r.rewrite(s.Right)
	if err != nil {
		return result{}, err
	}
	dataSch := s.Sch
	lSch, rSch := left.op.Schema(), right.op.Schema()
	lProvSch := make([]algebra.Column, len(left.prov))
	for i, p := range left.prov {
		lProvSch[i] = lSch[p]
	}
	rProvSch := make([]algebra.Column, len(right.prov))
	for i, p := range right.prov {
		rProvSch[i] = rSch[p]
	}
	lPad, _, lCopies := padBranch(left, dataSch, true, rProvSch)
	rPad, prov, rCopies := padBranch(right, dataSch, false, lProvSch)
	union := algebra.NewSetOp(algebra.UnionAll, lPad, rPad)
	// Union schema follows the left branch, whose prov metadata is complete.
	union.Sch = lPad.Sch.Clone()
	copies := emptyCopies(len(union.Sch))
	for i := range copies {
		if r.opts.Semantics == CopyCompleteSemantics {
			// COPY COMPLETE: an attribute counts as copied only when both
			// branches copy it. A branch's own provenance columns are
			// NULL-padded on the other side, so they can never be complete
			// copies into a data column — only attributes whose copy chains
			// exist in both branches survive.
			copies[i] = intersectInts(lCopies[i], rCopies[i])
		} else {
			copies[i] = unionInts(lCopies[i], rCopies[i])
		}
	}
	res := result{op: union, prov: prov, copies: copies}

	if s.Kind == algebra.UnionDistinct && r.chooseSet(s) == SetJoin {
		r.note("SetJoin strategy: joining the original UNION back to the padded branches")
		return r.joinBackOnTuple(s, s.Sch, res)
	}
	return res, nil
}

func intersectInts(a, b []int) []int {
	inB := make(map[int]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []int
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	return out
}

func unionInts(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, x := range append(append([]int{}, a...), b...) {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func (r *Rewriter) rewriteIntersect(s *algebra.SetOp) (result, error) {
	left, err := r.rewrite(s.Left)
	if err != nil {
		return result{}, err
	}
	right, err := r.rewrite(s.Right)
	if err != nil {
		return result{}, err
	}
	// (T1 ∩ T2) joined to T1+ on tuple equality, then to T2+ on tuple
	// equality; keep [data, P1, P2].
	step1, err := r.joinBackOnTuple(s, s.Sch, left)
	if err != nil {
		return result{}, err
	}
	return r.joinBackKeep(step1, right)
}

// joinBackKeep joins cur (data+prov so far) to another rewritten branch on
// the data columns, appending that branch's provenance columns.
func (r *Rewriter) joinBackKeep(cur result, branch result) (result, error) {
	curSch := cur.op.Schema()
	brSch := branch.op.Schema()
	nCur := len(curSch)
	data := curSch.DataIdx()
	var conds []algebra.Expr
	for _, i := range data {
		conds = append(conds, &algebra.Bin{
			Op: sql.OpNotDistinct,
			L:  &algebra.ColIdx{Idx: i, Typ: curSch[i].Type, Name: curSch[i].Name},
			R:  &algebra.ColIdx{Idx: nCur + i, Typ: brSch[i].Type, Name: brSch[i].Name},
		})
	}
	join := algebra.NewJoin(algebra.JoinInner, cur.op, branch.op, algebra.AndAll(conds))
	joinSch := join.Sch
	exprs := algebra.IdentityExprs(curSch)
	names := append([]string{}, curSch.Names()...)
	newPos := identityPos(nCur)
	for _, p := range branch.prov {
		jp := nCur + p
		newPos[jp] = len(exprs)
		exprs = append(exprs, &algebra.ColIdx{Idx: jp, Typ: joinSch[jp].Type, Name: joinSch[jp].Name})
		names = append(names, joinSch[jp].Name)
	}
	proj := algebra.NewProject(join, exprs, names)
	copy(proj.Sch[:nCur], curSch)
	prov := append([]int{}, cur.prov...)
	copies := emptyCopies(len(exprs))
	copy(copies, cur.copies)
	for _, p := range branch.prov {
		np := newPos[nCur+p]
		proj.Sch[np] = brSch[p]
		prov = append(prov, np)
		copies[np] = []int{np}
	}
	return result{op: proj, prov: prov, copies: copies}, nil
}

func (r *Rewriter) rewriteExcept(s *algebra.SetOp) (result, error) {
	left, err := r.rewrite(s.Left)
	if err != nil {
		return result{}, err
	}
	// Rewrite the right branch only to learn its provenance schema (the
	// attributes of every accessed relation appear in the result schema,
	// NULL-filled under PI-CS's left-only difference semantics).
	right, err := r.rewrite(s.Right)
	if err != nil {
		return result{}, err
	}
	step1, err := r.joinBackOnTuple(s, s.Sch, left)
	if err != nil {
		return result{}, err
	}
	// Append NULL columns for the right branch's provenance attributes.
	curSch := step1.op.Schema()
	rSch := right.op.Schema()
	exprs := algebra.IdentityExprs(curSch)
	names := append([]string{}, curSch.Names()...)
	start := len(exprs)
	for _, p := range right.prov {
		exprs = append(exprs, &algebra.Cast{E: algebra.NewNull(), To: rSch[p].Type})
		names = append(names, rSch[p].Name)
	}
	proj := algebra.NewProject(step1.op, exprs, names)
	copy(proj.Sch[:len(curSch)], curSch)
	prov := append([]int{}, step1.prov...)
	copies := emptyCopies(len(exprs))
	copy(copies, step1.copies)
	for i, p := range right.prov {
		np := start + i
		proj.Sch[np] = rSch[p]
		prov = append(prov, np)
	}
	r.note("EXCEPT: right branch contributes no provenance (PI-CS left-only difference)")
	return result{op: proj, prov: prov, copies: copies}, nil
}

// --- limit -----------------------------------------------------------------------

// rewriteLimit joins the limited original result back to the rewritten input
// on tuple equality. The paper does not define provenance through LIMIT; this
// join-back returns, for each emitted tuple, every input tuple with equal
// values — a documented over-approximation in the presence of duplicates.
func (r *Rewriter) rewriteLimit(l *algebra.Limit) (result, error) {
	in, err := r.rewrite(l.Input)
	if err != nil {
		return result{}, err
	}
	r.note("LIMIT: join-back on tuple equality (over-approximates under duplicates)")
	return r.joinBackOnTuple(l, l.Input.Schema(), in)
}

// typedNull builds a NULL constant of the kind (helper kept for tests).
func typedNull(k value.Kind) algebra.Expr {
	return &algebra.Cast{E: algebra.NewNull(), To: k}
}
