package core

import (
	"sort"
	"strings"
	"testing"

	"perm/internal/algebra"
	"perm/internal/analyzer"
	"perm/internal/catalog"
	"perm/internal/executor"
	"perm/internal/sql"
	"perm/internal/storage"
	"perm/internal/value"
)

// testEnv builds a store with the paper's forum tables plus duplicate-heavy
// table d for distinct/set tests.
func testEnv(t *testing.T) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	mk := func(name string, cols []catalog.Column, rows []value.Row) {
		tab, err := s.CreateTable(&catalog.TableDef{Name: name, Columns: cols})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tab.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
	}
	i, str := value.NewInt, value.NewString
	mk("messages", []catalog.Column{
		{Name: "mid", Type: value.KindInt}, {Name: "text", Type: value.KindString}, {Name: "uid", Type: value.KindInt},
	}, []value.Row{
		{i(1), str("lorem"), i(3)}, {i(4), str("hi"), i(2)},
	})
	mk("imports", []catalog.Column{
		{Name: "mid", Type: value.KindInt}, {Name: "text", Type: value.KindString}, {Name: "origin", Type: value.KindString},
	}, []value.Row{
		{i(2), str("hello"), str("superForum")}, {i(3), str("dont"), str("HiBoard")},
	})
	mk("approved", []catalog.Column{
		{Name: "uid", Type: value.KindInt}, {Name: "mid", Type: value.KindInt},
	}, []value.Row{
		{i(2), i(2)}, {i(1), i(4)}, {i(2), i(4)}, {i(3), i(4)},
	})
	mk("d", []catalog.Column{
		{Name: "x", Type: value.KindInt},
	}, []value.Row{
		{i(1)}, {i(1)}, {i(2)}, {value.Null}, {value.Null},
	})
	return s
}

// plan analyzes a query without provenance markers.
func plan(t *testing.T, s *storage.Store, q string) algebra.Op {
	t.Helper()
	st, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	an := analyzer.New(s.Catalog())
	an.StripProvenance = true
	op, err := an.AnalyzeSelect(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatalf("analyze(%q): %v", q, err)
	}
	return op
}

// rewriteQ rewrites the plan of q with the given options.
func rewriteQ(t *testing.T, s *storage.Store, q string, opts Options) algebra.Op {
	t.Helper()
	rw := NewRewriter(opts)
	out, err := rw.Rewrite(plan(t, s, q))
	if err != nil {
		t.Fatalf("rewrite(%q): %v", q, err)
	}
	return out
}

// sortedRows runs the plan and returns canonical string rows for multiset
// comparison.
func sortedRows(t *testing.T, s *storage.Store, op algebra.Op) []string {
	t.Helper()
	res, err := executor.Run(executor.NewContext(s), op)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.Key()
	}
	sort.Strings(out)
	return out
}

func equalStrs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPrefixInvariant verifies the rewriter's central invariant on a battery
// of query shapes: the rewritten schema preserves every original column at
// its position, and everything appended is a provenance attribute.
func TestPrefixInvariant(t *testing.T) {
	s := testEnv(t)
	queries := []string{
		`SELECT mid FROM messages`,
		`SELECT mid, text FROM messages WHERE uid > 1`,
		`SELECT m.mid, a.uid FROM messages m JOIN approved a ON m.mid = a.mid`,
		`SELECT m.text FROM messages m LEFT JOIN approved a ON m.mid = a.mid`,
		`SELECT count(*), uid FROM approved GROUP BY uid`,
		`SELECT sum(uid) FROM approved`,
		`SELECT DISTINCT x FROM d`,
		`SELECT mid, text FROM messages UNION SELECT mid, text FROM imports`,
		`SELECT mid FROM messages INTERSECT SELECT mid FROM approved`,
		`SELECT mid FROM messages EXCEPT SELECT mid FROM approved`,
		`SELECT mid FROM messages ORDER BY mid LIMIT 1`,
		`SELECT mid FROM messages WHERE mid IN (SELECT mid FROM approved)`,
		`SELECT mid FROM messages m WHERE EXISTS (SELECT 1 FROM approved a WHERE a.mid = m.mid)`,
		`SELECT mid FROM messages WHERE uid = (SELECT max(uid) FROM approved)`,
	}
	for _, q := range queries {
		orig := plan(t, s, q)
		rew := rewriteQ(t, s, q, DefaultOptions())
		oSch, rSch := orig.Schema(), rew.Schema()
		if len(rSch) < len(oSch) {
			t.Errorf("%q: rewritten schema narrower than original", q)
			continue
		}
		for i, c := range oSch {
			if rSch[i].Name != c.Name || rSch[i].Type != c.Type {
				t.Errorf("%q: column %d changed: %v -> %v", q, i, c, rSch[i])
			}
		}
		for i := len(oSch); i < len(rSch); i++ {
			if !rSch[i].IsProv {
				t.Errorf("%q: appended column %d (%s) not flagged as provenance", q, i, rSch[i].Name)
			}
			if !strings.HasPrefix(rSch[i].Name, "prov_") {
				t.Errorf("%q: provenance column name %q", q, rSch[i].Name)
			}
		}
	}
}

// TestOriginalResultPreserved: projecting the rewritten query onto the
// original columns and deduplicating witness replication must reproduce the
// original result as a set.
func TestOriginalResultPreserved(t *testing.T) {
	s := testEnv(t)
	queries := []string{
		`SELECT mid, text FROM messages WHERE uid > 1`,
		`SELECT count(*), uid FROM approved GROUP BY uid`,
		`SELECT mid, text FROM messages UNION SELECT mid, text FROM imports`,
		`SELECT DISTINCT x FROM d`,
		`SELECT mid FROM messages WHERE mid IN (SELECT mid FROM approved)`,
	}
	for _, q := range queries {
		orig := plan(t, s, q)
		rew := rewriteQ(t, s, q, DefaultOptions())
		nOrig := len(orig.Schema())
		// Project rewritten onto original columns, distinct both sides.
		stripped := algebra.NewProject(rew, algebra.IdentityExprs(rew.Schema())[:nOrig],
			orig.Schema().Names())
		a := dedup(sortedRows(t, s, &algebra.Distinct{Input: stripped}))
		b := dedup(sortedRows(t, s, &algebra.Distinct{Input: orig}))
		if !equalStrs(a, b) {
			t.Errorf("%q: original rows not preserved\nprov side: %v\norig side: %v", q, a, b)
		}
	}
}

func dedup(xs []string) []string {
	var out []string
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// TestWitnessesExistInBaseRelations: every provenance tuple embedded in a
// rewritten result must actually occur in its base relation.
func TestWitnessesExistInBaseRelations(t *testing.T) {
	s := testEnv(t)
	q := `SELECT count(*), text FROM messages m JOIN approved a ON m.mid = a.mid GROUP BY m.mid, text`
	rew := rewriteQ(t, s, q, DefaultOptions())
	res, err := executor.Run(executor.NewContext(s), rew)
	if err != nil {
		t.Fatal(err)
	}
	sch := res.Schema
	// Group provenance columns by relation instance.
	groups := map[string][]int{}
	for i, c := range sch {
		if c.IsProv {
			groups[c.ProvRel] = append(groups[c.ProvRel], i)
		}
	}
	if len(groups) != 2 {
		t.Fatalf("prov groups = %v", groups)
	}
	baseOf := map[string]string{"messages": "messages", "approved": "approved"}
	for rel, cols := range groups {
		base := baseOf[rel]
		tab := s.Table(base)
		existing := map[string]bool{}
		for _, r := range tab.Snapshot() {
			existing[r.Key()] = true
		}
		for _, row := range res.Rows {
			witness := make(value.Row, len(cols))
			allNull := true
			for j, ci := range cols {
				witness[j] = row[ci]
				if !row[ci].IsNull() {
					allNull = false
				}
			}
			if allNull {
				continue
			}
			if !existing[witness.Key()] {
				t.Errorf("witness %v not found in base relation %s", witness, base)
			}
		}
	}
}

func TestScanRuleNaming(t *testing.T) {
	s := testEnv(t)
	rew := rewriteQ(t, s, `SELECT mid FROM messages`, DefaultOptions())
	names := rew.Schema().Names()
	want := []string{"mid", "prov_public_messages_mid", "prov_public_messages_text", "prov_public_messages_uid"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("names = %v, want %v", names, want)
	}
}

func TestSelfJoinInstanceNaming(t *testing.T) {
	s := testEnv(t)
	rew := rewriteQ(t, s,
		`SELECT m1.mid FROM messages m1 JOIN messages m2 ON m1.uid = m2.uid`,
		DefaultOptions())
	names := strings.Join(rew.Schema().Names(), ",")
	if !strings.Contains(names, "prov_public_messages_mid") ||
		!strings.Contains(names, "prov_public_messages_1_mid") {
		t.Errorf("self-join provenance names must be numbered: %v", names)
	}
}

func TestCustomSchemaName(t *testing.T) {
	s := testEnv(t)
	opts := DefaultOptions()
	opts.SchemaName = "main"
	rew := rewriteQ(t, s, `SELECT mid FROM messages`, opts)
	if !strings.Contains(rew.Schema().Names()[1], "prov_main_messages") {
		t.Errorf("names = %v", rew.Schema().Names())
	}
}

// TestStrategyEquivalence: alternative rewrite strategies must produce the
// same provenance relation (as a multiset) — they only differ in cost.
func TestStrategyEquivalence(t *testing.T) {
	s := testEnv(t)
	cases := []struct {
		name string
		q    string
		a, b Options
	}{
		{
			name: "union pad vs join",
			q:    `SELECT mid, text FROM messages UNION SELECT mid, text FROM imports`,
			a:    Options{Set: SetPad, SetForced: true, SchemaName: "public"},
			b:    Options{Set: SetJoin, SetForced: true, SchemaName: "public"},
		},
		{
			name: "union all pad vs join", // join strategy only differs for distinct unions
			q:    `SELECT x FROM d UNION ALL SELECT x FROM d`,
			a:    Options{Set: SetPad, SetForced: true, SchemaName: "public"},
			b:    Options{Set: SetJoin, SetForced: true, SchemaName: "public"},
		},
		{
			name: "agg joingroup vs crossfilter",
			q:    `SELECT count(*), uid FROM approved GROUP BY uid`,
			a:    Options{Agg: AggJoinGroup, AggForced: true, SchemaName: "public"},
			b:    Options{Agg: AggCrossFilter, AggForced: true, SchemaName: "public"},
		},
		{
			name: "distinct pass vs join",
			q:    `SELECT DISTINCT x FROM d`,
			a:    Options{Distinct: DistinctPass, DistinctForced: true, SchemaName: "public"},
			b:    Options{Distinct: DistinctJoin, DistinctForced: true, SchemaName: "public"},
		},
	}
	for _, c := range cases {
		ra := sortedRows(t, s, rewriteQ(t, s, c.q, c.a))
		rb := sortedRows(t, s, rewriteQ(t, s, c.q, c.b))
		if !equalStrs(ra, rb) {
			t.Errorf("%s: strategies disagree\nA: %v\nB: %v", c.name, ra, rb)
		}
	}
}

func TestGroupByNullKeysJoinBack(t *testing.T) {
	s := testEnv(t)
	// d has NULL groups; the join-back must use null-safe equality so the
	// NULL group keeps its witnesses.
	rew := rewriteQ(t, s, `SELECT count(*), x FROM d GROUP BY x`, DefaultOptions())
	res, err := executor.Run(executor.NewContext(s), rew)
	if err != nil {
		t.Fatal(err)
	}
	// 5 input rows → 5 witness rows (2+2+1).
	if len(res.Rows) != 5 {
		t.Errorf("witness rows = %d, want 5: %v", len(res.Rows), res.Rows)
	}
	nullGroupWitnesses := 0
	for _, r := range res.Rows {
		if r[1].IsNull() {
			if r[0].I != 2 {
				t.Errorf("NULL group count = %v", r[0])
			}
			if !r[2].IsNull() {
				t.Errorf("NULL group witness = %v", r[2])
			}
			nullGroupWitnesses++
		}
	}
	if nullGroupWitnesses != 2 {
		t.Errorf("NULL group witnesses = %d, want 2", nullGroupWitnesses)
	}
}

func TestScalarAggProvenanceOverEmptyInput(t *testing.T) {
	s := testEnv(t)
	rew := rewriteQ(t, s, `SELECT count(*) FROM messages WHERE mid > 100`, DefaultOptions())
	res, err := executor.Run(executor.NewContext(s), rew)
	if err != nil {
		t.Fatal(err)
	}
	// count(*) over empty input = one row (0) with NULL provenance.
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, v := range res.Rows[0][1:] {
		if !v.IsNull() {
			t.Errorf("provenance of empty aggregate must be NULL: %v", res.Rows[0])
		}
	}
}

func TestExceptLeftOnlyProvenance(t *testing.T) {
	s := testEnv(t)
	rew := rewriteQ(t, s, `SELECT mid FROM messages EXCEPT SELECT mid FROM approved`, DefaultOptions())
	res, err := executor.Run(executor.NewContext(s), rew)
	if err != nil {
		t.Fatal(err)
	}
	sch := res.Schema
	// Schema must include both sides' provenance columns.
	var rightCols []int
	for i, c := range sch {
		if c.IsProv && c.ProvRel == "approved" {
			rightCols = append(rightCols, i)
		}
	}
	if len(rightCols) != 2 {
		t.Fatalf("right provenance columns missing: %v", sch.Names())
	}
	// messages mids: 1,4; approved mids: 2,4 → except = {1}.
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, ci := range rightCols {
		if !res.Rows[0][ci].IsNull() {
			t.Errorf("right-side provenance must be NULL under PI-CS difference")
		}
	}
}

func TestIntersectBothSidesProvenance(t *testing.T) {
	s := testEnv(t)
	rew := rewriteQ(t, s, `SELECT mid FROM messages INTERSECT SELECT mid FROM approved`, DefaultOptions())
	res, err := executor.Run(executor.NewContext(s), rew)
	if err != nil {
		t.Fatal(err)
	}
	// intersect = {4}; approved has 3 rows with mid=4 → 1 (messages) × 3 = 3 witness rows.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].I != 4 {
			t.Errorf("row = %v", r)
		}
	}
}

func TestCopySemanticsMasking(t *testing.T) {
	s := testEnv(t)
	opts := DefaultOptions()
	opts.Semantics = CopySemantics
	// q1: mid and text are copied; uid (messages) and origin (imports) are not.
	rew := rewriteQ(t, s,
		`SELECT mid, text FROM messages UNION SELECT mid, text FROM imports`, opts)
	res, err := executor.Run(executor.NewContext(s), rew)
	if err != nil {
		t.Fatal(err)
	}
	sch := res.Schema
	colIdx := func(name string) int {
		for i, c := range sch {
			if c.Name == name {
				return i
			}
		}
		t.Fatalf("column %s missing", name)
		return -1
	}
	uidCol := colIdx("prov_public_messages_uid")
	originCol := colIdx("prov_public_imports_origin")
	midCol := colIdx("prov_public_messages_mid")
	sawMid := false
	for _, r := range res.Rows {
		if !r[uidCol].IsNull() {
			t.Errorf("uid must be masked under COPY: %v", r)
		}
		if !r[originCol].IsNull() {
			t.Errorf("origin must be masked under COPY: %v", r)
		}
		if !r[midCol].IsNull() {
			sawMid = true
		}
	}
	if !sawMid {
		t.Error("copied attribute mid must survive COPY masking")
	}
}

func TestCopyAggregatesMaskAll(t *testing.T) {
	s := testEnv(t)
	opts := DefaultOptions()
	opts.Semantics = CopySemantics
	// Aggregate outputs copy nothing; group col uid is copied.
	rew := rewriteQ(t, s, `SELECT count(*), uid FROM approved GROUP BY uid`, opts)
	res, err := executor.Run(executor.NewContext(s), rew)
	if err != nil {
		t.Fatal(err)
	}
	sch := res.Schema
	for i, c := range sch {
		if !c.IsProv {
			continue
		}
		for _, r := range res.Rows {
			isUID := strings.HasSuffix(c.Name, "_uid")
			if isUID {
				continue // copied via group-by column
			}
			if !r[i].IsNull() {
				t.Errorf("non-copied provenance %s must be NULL, got %v", c.Name, r[i])
			}
		}
	}
}

func TestBaseRelRule(t *testing.T) {
	s := testEnv(t)
	orig := plan(t, s, `SELECT mid FROM messages WHERE uid > 1`)
	wrapped := &algebra.BaseRel{Input: orig, RelName: "myview"}
	rw := NewRewriter(DefaultOptions())
	out, err := rw.Rewrite(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	names := out.Schema().Names()
	if len(names) != 2 || names[1] != "prov_public_myview_mid" {
		t.Errorf("names = %v", names)
	}
}

func TestProvDoneRule(t *testing.T) {
	s := testEnv(t)
	orig := plan(t, s, `SELECT mid, uid FROM messages`)
	// Flag uid as external provenance.
	proj := algebra.NewProject(orig, algebra.IdentityExprs(orig.Schema()), orig.Schema().Names())
	copy(proj.Sch, orig.Schema())
	proj.Sch[1].IsProv = true
	proj.Sch[1].ProvRel = "ext"
	done := &algebra.ProvDone{Input: proj}
	rw := NewRewriter(DefaultOptions())
	out, err := rw.Rewrite(done)
	if err != nil {
		t.Fatal(err)
	}
	// No new columns: the given provenance is the provenance.
	if len(out.Schema()) != 2 {
		t.Errorf("schema = %v", out.Schema().Names())
	}
}

func TestUnsupportedShapes(t *testing.T) {
	s := testEnv(t)
	rw := NewRewriter(DefaultOptions())
	// Subquery in the select list.
	p := plan(t, s, `SELECT (SELECT max(mid) FROM approved) FROM messages`)
	if _, err := rw.Rewrite(p); err == nil ||
		!strings.Contains(err.Error(), "select list") {
		t.Errorf("select-list subquery: err = %v", err)
	}
}

func TestNegatedSubqueriesKeepFilter(t *testing.T) {
	s := testEnv(t)
	rew := rewriteQ(t, s,
		`SELECT mid FROM messages WHERE mid NOT IN (SELECT mid FROM approved)`,
		DefaultOptions())
	res, err := executor.Run(executor.NewContext(s), rew)
	if err != nil {
		t.Fatal(err)
	}
	// messages mids {1,4}, approved {2,4} → NOT IN leaves {1}; provenance
	// only from messages.
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, c := range res.Schema {
		if c.IsProv && c.ProvRel == "approved" {
			t.Error("NOT IN must not contribute subquery provenance")
		}
	}
}

func TestCorrelatedExistsProvenance(t *testing.T) {
	s := testEnv(t)
	rew := rewriteQ(t, s,
		`SELECT mid FROM messages m WHERE EXISTS (SELECT 1 FROM approved a WHERE a.mid = m.mid)`,
		DefaultOptions())
	res, err := executor.Run(executor.NewContext(s), rew)
	if err != nil {
		t.Fatal(err)
	}
	// mid=4 has 3 approvals → 3 witness rows.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	foundApproved := false
	for _, c := range res.Schema {
		if c.IsProv && c.ProvRel == "approved" {
			foundApproved = true
		}
	}
	if !foundApproved {
		t.Error("EXISTS subquery provenance missing")
	}
}

func TestDecisionsRecorded(t *testing.T) {
	s := testEnv(t)
	rw := NewRewriter(Options{Set: SetJoin, SetForced: true, SchemaName: "public"})
	p := plan(t, s, `SELECT mid, text FROM messages UNION SELECT mid, text FROM imports`)
	if _, err := rw.Rewrite(p); err != nil {
		t.Fatal(err)
	}
	if len(rw.Decisions) == 0 || !strings.Contains(strings.Join(rw.Decisions, ";"), "SetJoin") {
		t.Errorf("decisions = %v", rw.Decisions)
	}
}

// TestCostBasedChooser drives the cost-based strategy selection with a
// controlled estimator: tiny inputs pick the cross-filter aggregation
// rewrite, larger ones the join-back; shrinking set operations pick the
// join-back strategy.
func TestCostBasedChooser(t *testing.T) {
	s := testEnv(t)

	small := func(op algebra.Op) float64 { return 2 }
	large := func(op algebra.Op) float64 { return 10000 }

	aggQ := `SELECT count(*), uid FROM approved GROUP BY uid`
	rwSmall := NewRewriter(Options{Mode: ModeCost, Estimator: small, SchemaName: "public"})
	if _, err := rwSmall.Rewrite(plan(t, s, aggQ)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(rwSmall.Decisions, ";"), "AggCrossFilter") {
		t.Errorf("tiny estimate should pick AggCrossFilter: %v", rwSmall.Decisions)
	}
	rwLarge := NewRewriter(Options{Mode: ModeCost, Estimator: large, SchemaName: "public"})
	if _, err := rwLarge.Rewrite(plan(t, s, aggQ)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(rwLarge.Decisions, ";"), "AggJoinGroup") {
		t.Errorf("large estimate should pick AggJoinGroup: %v", rwLarge.Decisions)
	}

	// Set operation: a distinct union whose result is estimated much smaller
	// than its branches favors the join-back strategy.
	unionQ := `SELECT mid FROM messages UNION SELECT mid FROM imports`
	shrinking := func(op algebra.Op) float64 {
		if _, ok := op.(*algebra.SetOp); ok {
			return 1
		}
		return 1000
	}
	rwSet := NewRewriter(Options{Mode: ModeCost, Estimator: shrinking, SchemaName: "public"})
	if _, err := rwSet.Rewrite(plan(t, s, unionQ)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(rwSet.Decisions, ";"), "SetJoin") {
		t.Errorf("shrinking union should pick SetJoin: %v", rwSet.Decisions)
	}
}

func TestSemanticsString(t *testing.T) {
	if InfluenceSemantics.String() != "INFLUENCE" ||
		CopySemantics.String() != "COPY PARTIAL" ||
		CopyCompleteSemantics.String() != "COPY COMPLETE" {
		t.Error("Semantics.String")
	}
}

// TestCopyCompleteMasksCrossBranch: under COPY COMPLETE an attribute must be
// copied on every derivation path; a union branch copy is only partial, so
// everything is masked, while COPY (PARTIAL) keeps the branch copies.
func TestCopyCompleteMasksCrossBranch(t *testing.T) {
	s := testEnv(t)
	q := `SELECT mid FROM messages UNION SELECT mid FROM imports`

	run := func(sem Semantics) (int, int) {
		opts := DefaultOptions()
		opts.Semantics = sem
		rew := rewriteQ(t, s, q, opts)
		res, err := executor.Run(executor.NewContext(s), rew)
		if err != nil {
			t.Fatal(err)
		}
		nonNull, total := 0, 0
		for i, c := range res.Schema {
			if !c.IsProv {
				continue
			}
			for _, r := range res.Rows {
				total++
				if !r[i].IsNull() {
					nonNull++
				}
			}
		}
		return nonNull, total
	}
	partialNonNull, _ := run(CopySemantics)
	completeNonNull, _ := run(CopyCompleteSemantics)
	if partialNonNull == 0 {
		t.Error("COPY PARTIAL must keep branch copies")
	}
	if completeNonNull != 0 {
		t.Errorf("COPY COMPLETE must mask cross-branch copies, %d values survive", completeNonNull)
	}
}

func TestProvAttrName(t *testing.T) {
	if got := ProvAttrName("public", "s", "i"); got != "prov_public_s_i" {
		t.Errorf("got %q", got)
	}
}
