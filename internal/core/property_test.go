package core

import (
	"fmt"
	"math/rand"
	"testing"

	"perm/internal/algebra"
	"perm/internal/executor"
)

// This file property-tests the provenance rewriter over randomly generated
// queries: for every generated query q and strategy configuration, the
// rewritten q+ must (1) preserve q's schema as a prefix, (2) reproduce q's
// result set when projected back onto the original columns, and (3) agree
// across rewrite strategies. The generator is seeded, so failures reproduce.

// genQuery builds a random query over the testEnv schema. Depth bounds the
// shape: level 0 is a plain filtered scan, deeper levels add joins,
// aggregation, set operations and distinct.
func genQuery(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		return genLeaf(rng)
	}
	// Every shape exposes a "mid" column so shapes nest arbitrarily.
	switch rng.Intn(5) {
	case 0: // join
		l, r := genLeafRef(rng, "l"), genLeafRef(rng, "r")
		return fmt.Sprintf("SELECT l.mid AS mid, r.mid AS rm FROM (%s) AS l JOIN (%s) AS r ON l.mid = r.mid",
			l, r)
	case 1: // aggregation (identical group expression in SELECT and GROUP BY)
		m := 2 + rng.Intn(3)
		return fmt.Sprintf("SELECT count(*) AS cnt, mid %% %d AS mid FROM (%s) AS s GROUP BY mid %% %d",
			m, genQuery(rng, depth-1), m)
	case 2: // union
		all := ""
		if rng.Intn(2) == 0 {
			all = "ALL "
		}
		return fmt.Sprintf("SELECT mid FROM (%s) AS a UNION %sSELECT mid FROM (%s) AS b",
			genQuery(rng, depth-1), all, genQuery(rng, depth-1))
	case 3: // distinct
		return fmt.Sprintf("SELECT DISTINCT mid FROM (%s) AS s", genQuery(rng, depth-1))
	default: // filter over subquery
		return fmt.Sprintf("SELECT mid FROM (%s) AS s WHERE mid > %d",
			genQuery(rng, depth-1), rng.Intn(4))
	}
}

// genLeaf yields a filtered base-table select with output column "mid".
func genLeaf(rng *rand.Rand) string {
	leaves := []struct{ sel, col string }{
		{"SELECT mid FROM messages", "mid"},
		{"SELECT mid FROM imports", "mid"},
		{"SELECT mid FROM approved", "mid"},
		{"SELECT x AS mid FROM d", "x"},
	}
	l := leaves[rng.Intn(len(leaves))]
	switch rng.Intn(3) {
	case 0:
		return l.sel + fmt.Sprintf(" WHERE %s >= %d", l.col, rng.Intn(3))
	case 1:
		return l.sel + fmt.Sprintf(" WHERE %s %% %d = 0", l.col, 2+rng.Intn(2))
	default:
		return l.sel
	}
}

// genLeafRef generates a leaf guaranteed to be join-compatible.
func genLeafRef(rng *rand.Rand, _ string) string { return genLeaf(rng) }

// GroupBy generation needs identical expressions in SELECT and GROUP BY, so
// fix the modulus by regenerating deterministically.
func fixAgg(rng *rand.Rand, depth int) string {
	m := 2 + rng.Intn(3)
	return fmt.Sprintf("SELECT count(*), mid %% %d AS g FROM (%s) AS s GROUP BY mid %% %d",
		m, genLeaf(rng), m)
}

func TestPropertyRandomQueries(t *testing.T) {
	s := testEnv(t)
	rng := rand.New(rand.NewSource(20090629)) // SIGMOD '09 opening day
	strategies := []Options{
		{SchemaName: "public"},
		{SchemaName: "public", Set: SetJoin, SetForced: true,
			Agg: AggCrossFilter, AggForced: true, Distinct: DistinctJoin, DistinctForced: true},
	}
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		var q string
		if trial%7 == 0 {
			q = fixAgg(rng, 1)
		} else {
			q = genQuery(rng, 1+rng.Intn(2))
		}
		orig := plan(t, s, q)
		origRows := dedup(sortedRows(t, s, &algebra.Distinct{Input: orig}))

		var firstRows []string
		for si, opts := range strategies {
			rw := NewRewriter(opts)
			rewritten, err := rw.Rewrite(plan(t, s, q))
			if err != nil {
				t.Fatalf("trial %d strategy %d: rewrite failed for %q: %v", trial, si, q, err)
			}
			// (1) prefix invariant
			oSch, rSch := orig.Schema(), rewritten.Schema()
			for i, c := range oSch {
				if rSch[i].Name != c.Name || rSch[i].Type != c.Type {
					t.Fatalf("trial %d: prefix broken for %q at col %d", trial, q, i)
				}
			}
			for i := len(oSch); i < len(rSch); i++ {
				if !rSch[i].IsProv {
					t.Fatalf("trial %d: appended non-provenance column in %q", trial, q)
				}
			}
			// (2) original result preserved (as a set).
			stripped := algebra.NewProject(rewritten,
				algebra.IdentityExprs(rewritten.Schema())[:len(oSch)], oSch.Names())
			got := dedup(sortedRows(t, s, &algebra.Distinct{Input: stripped}))
			if !equalStrs(got, origRows) {
				t.Fatalf("trial %d strategy %d: result set changed for %q\nwant %v\ngot  %v",
					trial, si, q, origRows, got)
			}
			// (3) strategies agree on the full provenance relation.
			full := sortedRows(t, s, rewritten)
			if si == 0 {
				firstRows = full
			} else if !equalStrs(full, firstRows) {
				t.Fatalf("trial %d: strategies disagree for %q", trial, q)
			}
		}
	}
}

// TestPropertyWitnessRowsNonEmpty: under influence semantics every result
// row of a provenance query carries at least one non-NULL witness, unless
// the query has scalar-aggregation-over-empty shape. Random trials over the
// same generator.
func TestPropertyWitnessPresence(t *testing.T) {
	s := testEnv(t)
	rng := rand.New(rand.NewSource(1055)) // first page of the paper
	for trial := 0; trial < 60; trial++ {
		q := genQuery(rng, 1)
		rw := NewRewriter(DefaultOptions())
		rewritten, err := rw.Rewrite(plan(t, s, q))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := executor.Run(executor.NewContext(s), rewritten)
		if err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}
		sch := rewritten.Schema()
		prov := sch.ProvIdx()
		data := sch.DataIdx()
		if len(prov) == 0 {
			continue
		}
		for _, row := range res.Rows {
			// An all-NULL base tuple (table d contains one) is a legitimate
			// witness whose attributes are all NULL — indistinguishable from
			// absence in the relational representation. Restrict the check
			// to rows whose data columns are non-NULL, which cannot descend
			// from the all-NULL tuple through this generator's queries.
			skip := false
			for _, di := range data {
				if row[di].IsNull() {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			nonNull := false
			for _, p := range prov {
				if !row[p].IsNull() {
					nonNull = true
					break
				}
			}
			if !nonNull {
				t.Errorf("trial %d (%q): row %v has no witness", trial, q, row)
			}
		}
	}
}
