// Package workload generates the deterministic synthetic datasets the
// benchmark harness runs on: the paper's forum database (Figure 1) scaled to
// arbitrary sizes, and a small star schema for the warehouse example. All
// generators are seeded, so every run sees identical data.
package workload

import (
	"fmt"
	"math/rand"

	"perm/internal/catalog"
	"perm/internal/engine"
	"perm/internal/value"
)

// ForumConfig scales the Figure 1 forum database.
type ForumConfig struct {
	Users    int
	Messages int
	Imports  int
	// ApprovalsPerMessage is the mean number of approvals per message.
	ApprovalsPerMessage float64
	// DuplicateTextFrac is the fraction of messages sharing a text with an
	// import (creates UNION duplicates; drives the set-strategy benchmarks).
	DuplicateTextFrac float64
	Seed              int64
}

// DefaultForum returns a config with n messages and proportional sizes.
func DefaultForum(n int) ForumConfig {
	users := n / 10
	if users < 3 {
		users = 3
	}
	return ForumConfig{
		Users:               users,
		Messages:            n,
		Imports:             n / 2,
		ApprovalsPerMessage: 2,
		DuplicateTextFrac:   0.1,
		Seed:                42,
	}
}

var origins = []string{"superForum", "HiBoard", "chatterBox", "nodeTalk", "paperTrail"}

var words = []string{
	"lorem", "ipsum", "dolor", "sit", "amet", "consectetur", "adipiscing",
	"elit", "sed", "do", "eiusmod", "tempor", "incididunt", "labore",
}

func randText(rng *rand.Rand) string {
	n := 2 + rng.Intn(4)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += words[rng.Intn(len(words))]
	}
	return out
}

// LoadForum creates and fills the forum schema in db. It also creates the
// paper's view v1 and refreshes statistics.
func LoadForum(db *engine.DB, cfg ForumConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	store := db.Store()

	create := func(name string, cols ...catalog.Column) error {
		_, err := store.CreateTable(&catalog.TableDef{Name: name, Columns: cols})
		return err
	}
	if err := create("users",
		catalog.Column{Name: "uid", Type: value.KindInt},
		catalog.Column{Name: "name", Type: value.KindString}); err != nil {
		return err
	}
	if err := create("messages",
		catalog.Column{Name: "mid", Type: value.KindInt},
		catalog.Column{Name: "text", Type: value.KindString},
		catalog.Column{Name: "uid", Type: value.KindInt}); err != nil {
		return err
	}
	if err := create("imports",
		catalog.Column{Name: "mid", Type: value.KindInt},
		catalog.Column{Name: "text", Type: value.KindString},
		catalog.Column{Name: "origin", Type: value.KindString}); err != nil {
		return err
	}
	if err := create("approved",
		catalog.Column{Name: "uid", Type: value.KindInt},
		catalog.Column{Name: "mid", Type: value.KindInt}); err != nil {
		return err
	}

	users := make([]value.Row, cfg.Users)
	for i := range users {
		users[i] = value.Row{value.NewInt(int64(i + 1)), value.NewString(fmt.Sprintf("user%d", i+1))}
	}
	if _, err := store.Table("users").InsertBatch(users); err != nil {
		return err
	}

	msgs := make([]value.Row, cfg.Messages)
	texts := make([]string, cfg.Messages)
	for i := range msgs {
		texts[i] = randText(rng)
		msgs[i] = value.Row{
			value.NewInt(int64(i + 1)),
			value.NewString(texts[i]),
			value.NewInt(int64(rng.Intn(cfg.Users) + 1)),
		}
	}
	if _, err := store.Table("messages").InsertBatch(msgs); err != nil {
		return err
	}

	imps := make([]value.Row, cfg.Imports)
	for i := range imps {
		text := randText(rng)
		// A fraction of imports duplicate a message text (UNION duplicates).
		if cfg.Messages > 0 && rng.Float64() < cfg.DuplicateTextFrac {
			text = texts[rng.Intn(cfg.Messages)]
		}
		imps[i] = value.Row{
			value.NewInt(int64(cfg.Messages + i + 1)),
			value.NewString(text),
			value.NewString(origins[rng.Intn(len(origins))]),
		}
	}
	if _, err := store.Table("imports").InsertBatch(imps); err != nil {
		return err
	}

	nApprovals := int(float64(cfg.Messages+cfg.Imports) * cfg.ApprovalsPerMessage)
	apps := make([]value.Row, nApprovals)
	for i := range apps {
		apps[i] = value.Row{
			value.NewInt(int64(rng.Intn(cfg.Users) + 1)),
			value.NewInt(int64(rng.Intn(cfg.Messages+cfg.Imports) + 1)),
		}
	}
	if _, err := store.Table("approved").InsertBatch(apps); err != nil {
		return err
	}

	session := db.NewSession()
	if _, err := session.Execute(
		`CREATE VIEW v1 AS SELECT mId, text FROM messages UNION SELECT mId, text FROM imports`); err != nil {
		return err
	}
	return store.Analyze("")
}

// StarConfig scales the warehouse star schema.
type StarConfig struct {
	Customers int
	Products  int
	Sales     int
	Days      int
	Seed      int64
}

// DefaultStar returns a config with n fact rows.
func DefaultStar(n int) StarConfig {
	c := n / 20
	if c < 3 {
		c = 3
	}
	p := n / 50
	if p < 3 {
		p = 3
	}
	return StarConfig{Customers: c, Products: p, Sales: n, Days: 30, Seed: 7}
}

var regions = []string{"north", "south", "east", "west"}
var categories = []string{"widgets", "gadgets", "gizmos"}

// LoadStar creates and fills a sales star schema: customers, products and a
// sales fact table, with statistics refreshed.
func LoadStar(db *engine.DB, cfg StarConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	store := db.Store()
	create := func(name string, cols ...catalog.Column) error {
		_, err := store.CreateTable(&catalog.TableDef{Name: name, Columns: cols})
		return err
	}
	if err := create("customers",
		catalog.Column{Name: "cid", Type: value.KindInt},
		catalog.Column{Name: "cname", Type: value.KindString},
		catalog.Column{Name: "region", Type: value.KindString}); err != nil {
		return err
	}
	if err := create("products",
		catalog.Column{Name: "pid", Type: value.KindInt},
		catalog.Column{Name: "pname", Type: value.KindString},
		catalog.Column{Name: "category", Type: value.KindString}); err != nil {
		return err
	}
	if err := create("sales",
		catalog.Column{Name: "sid", Type: value.KindInt},
		catalog.Column{Name: "cid", Type: value.KindInt},
		catalog.Column{Name: "pid", Type: value.KindInt},
		catalog.Column{Name: "day", Type: value.KindInt},
		catalog.Column{Name: "amount", Type: value.KindFloat}); err != nil {
		return err
	}
	customers := make([]value.Row, cfg.Customers)
	for i := range customers {
		customers[i] = value.Row{
			value.NewInt(int64(i + 1)),
			value.NewString(fmt.Sprintf("customer%d", i+1)),
			value.NewString(regions[rng.Intn(len(regions))]),
		}
	}
	if _, err := store.Table("customers").InsertBatch(customers); err != nil {
		return err
	}
	products := make([]value.Row, cfg.Products)
	for i := range products {
		products[i] = value.Row{
			value.NewInt(int64(i + 1)),
			value.NewString(fmt.Sprintf("product%d", i+1)),
			value.NewString(categories[rng.Intn(len(categories))]),
		}
	}
	if _, err := store.Table("products").InsertBatch(products); err != nil {
		return err
	}
	sales := make([]value.Row, cfg.Sales)
	for i := range sales {
		sales[i] = value.Row{
			value.NewInt(int64(i + 1)),
			value.NewInt(int64(rng.Intn(cfg.Customers) + 1)),
			value.NewInt(int64(rng.Intn(cfg.Products) + 1)),
			value.NewInt(int64(rng.Intn(cfg.Days) + 1)),
			value.NewFloat(float64(rng.Intn(10000)) / 100),
		}
	}
	if _, err := store.Table("sales").InsertBatch(sales); err != nil {
		return err
	}
	return store.Analyze("")
}

// LoadPaperExample loads the exact Figure 1 database (4 tables, the exact
// rows of the paper, and view v1) — used by the demo tool and golden tests.
func LoadPaperExample(db *engine.DB) error {
	session := db.NewSession()
	script := `
		CREATE TABLE messages (mId int, text text, uId int);
		CREATE TABLE users (uId int, name text);
		CREATE TABLE imports (mId int, text text, origin text);
		CREATE TABLE approved (uId int, mId int);
		INSERT INTO messages VALUES (1, 'lorem ipsum ...', 3), (4, 'hi there ...', 2);
		INSERT INTO users VALUES (1, 'Bert'), (2, 'Gert'), (3, 'Gertrud');
		INSERT INTO imports VALUES (2, 'hello ...', 'superForum'), (3, 'I don''t ...', 'HiBoard');
		INSERT INTO approved VALUES (2, 2), (1, 4), (2, 4), (3, 4);
		CREATE VIEW v1 AS SELECT mId, text FROM messages UNION SELECT mId, text FROM imports;
		ANALYZE;
	`
	_, err := session.ExecuteScript(script)
	return err
}

// LoadByName dispatches a dataset by name with a scale — the single place
// front ends (permshell \load, permserver -load) resolve dataset names, so
// they cannot drift. Valid names: "example" (scale ignored), "forum",
// "star".
func LoadByName(db *engine.DB, name string, n int) error {
	switch name {
	case "example":
		return LoadPaperExample(db)
	case "forum":
		return LoadForum(db, DefaultForum(n))
	case "star":
		return LoadStar(db, DefaultStar(n))
	}
	return fmt.Errorf("unknown dataset %q (want example, forum, star)", name)
}
