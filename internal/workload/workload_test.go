package workload

import (
	"testing"

	"perm/internal/engine"
)

func TestLoadForumDeterministic(t *testing.T) {
	db1, db2 := engine.NewDB(), engine.NewDB()
	cfg := DefaultForum(200)
	if err := LoadForum(db1, cfg); err != nil {
		t.Fatal(err)
	}
	if err := LoadForum(db2, cfg); err != nil {
		t.Fatal(err)
	}
	s1, s2 := db1.NewSession(), db2.NewSession()
	for _, q := range []string{
		`SELECT count(*) FROM messages`,
		`SELECT count(*) FROM imports`,
		`SELECT sum(uid) FROM approved`,
		`SELECT count(*) FROM v1`,
	} {
		r1, err := s1.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Rows[0].Key() != r2.Rows[0].Key() {
			t.Errorf("%q not deterministic: %v vs %v", q, r1.Rows[0], r2.Rows[0])
		}
	}
}

func TestLoadForumSizes(t *testing.T) {
	db := engine.NewDB()
	cfg := DefaultForum(100)
	if err := LoadForum(db, cfg); err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog()
	if got := cat.TableStats("messages").RowCount; got != 100 {
		t.Errorf("messages = %d", got)
	}
	if got := cat.TableStats("imports").RowCount; got != 50 {
		t.Errorf("imports = %d", got)
	}
	if cat.View("v1") == nil {
		t.Error("view v1 missing")
	}
	// Provenance queries must run on the generated data.
	s := db.NewSession()
	res, err := s.Execute(`SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM imports`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 150 {
		t.Errorf("union provenance rows = %d, want 150", len(res.Rows))
	}
}

func TestDuplicateTextFraction(t *testing.T) {
	db := engine.NewDB()
	cfg := DefaultForum(500)
	cfg.DuplicateTextFrac = 0.5
	if err := LoadForum(db, cfg); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	res, err := s.Execute(`
		SELECT count(*) FROM messages m JOIN imports i ON m.text = i.text`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I == 0 {
		t.Error("duplicate fraction produced no shared texts")
	}
}

func TestLoadStar(t *testing.T) {
	db := engine.NewDB()
	if err := LoadStar(db, DefaultStar(300)); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	res, err := s.Execute(`
		SELECT count(*) FROM sales s JOIN customers c ON s.cid = c.cid
		JOIN products p ON s.pid = p.pid`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 300 {
		t.Errorf("fact join count = %v, want 300 (FK integrity)", res.Rows[0])
	}
}

func TestLoadPaperExample(t *testing.T) {
	db := engine.NewDB()
	if err := LoadPaperExample(db); err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	res, err := s.Execute(`SELECT count(*) FROM v1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 4 {
		t.Errorf("v1 count = %v, want 4", res.Rows[0])
	}
}
