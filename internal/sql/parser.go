package sql

import (
	"fmt"
	"strconv"
	"strings"

	"perm/internal/value"
)

// Parser is a recursive-descent parser over the token stream. Keywords are
// matched case-insensitively against IDENT tokens so that non-reserved words
// remain valid identifiers.
type Parser struct {
	toks []Token
	pos  int
	// params counts `?` placeholders seen so far; each one is numbered in
	// textual order, which is the order bind arguments are supplied in.
	params int
}

// reservedAlias lists keywords that terminate a FROM item and therefore can
// never be an implicit (AS-less) alias.
var reservedAlias = map[string]bool{
	"where": true, "group": true, "having": true, "order": true,
	"limit": true, "offset": true, "union": true, "intersect": true,
	"except": true, "on": true, "join": true, "inner": true, "left": true,
	"right": true, "full": true, "cross": true, "natural": true,
	"using": true, "as": true, "baserelation": true, "provenance": true,
	"and": true, "or": true, "not": true, "select": true, "from": true,
	"set": true, "when": true, "then": true, "else": true, "end": true,
	"desc": true, "asc": true, "returning": true,
}

// Parse parses a single SQL statement (optionally terminated by ';').
func Parse(input string) (Statement, error) {
	stmts, err := ParseScript(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseWithParams parses a single statement and additionally reports how many
// `?` bind placeholders it contains — the prepared-statement front door: the
// engine parses once, learns the parameter count, and analyzes later per
// bound argument types.
func ParseWithParams(input string) (Statement, int, error) {
	toks, err := Tokens(input)
	if err != nil {
		return nil, 0, err
	}
	p := &Parser{toks: toks}
	for p.peek().Type == SEMI {
		p.next()
	}
	if p.peek().Type == EOF {
		return nil, 0, fmt.Errorf("expected exactly one statement, got 0")
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, 0, err
	}
	for p.peek().Type == SEMI {
		p.next()
	}
	if p.peek().Type != EOF {
		return nil, 0, p.errf("unexpected %s after statement", p.describe())
	}
	return st, p.params, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(input string) ([]Statement, error) {
	toks, err := Tokens(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var out []Statement
	for {
		for p.peek().Type == SEMI {
			p.next()
		}
		if p.peek().Type == EOF {
			break
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		switch p.peek().Type {
		case SEMI, EOF:
		default:
			return nil, p.errf("unexpected %s after statement", p.describe())
		}
	}
	return out, nil
}

// ParseExpr parses a standalone scalar expression (used by tests and tools).
func ParseExpr(input string) (Expr, error) {
	toks, err := Tokens(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Type != EOF {
		return nil, p.errf("unexpected %s after expression", p.describe())
	}
	return e, nil
}

func (p *Parser) peek() Token  { return p.toks[p.pos] }
func (p *Parser) peek2() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *Parser) describe() string {
	t := p.peek()
	if t.Type == EOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s: %s", p.peek().Pos(), fmt.Sprintf(format, args...))
}

// isKeyword reports whether the current token is the given keyword.
func (p *Parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Type == IDENT && t.Text == kw
}

// acceptTxnNoise consumes the optional TRANSACTION/WORK noise word after
// BEGIN, COMMIT, ROLLBACK and their aliases.
func (p *Parser) acceptTxnNoise() {
	if !p.acceptKeyword("transaction") {
		p.acceptKeyword("work")
	}
}

// acceptKeyword consumes the keyword if present.
func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or fails.
func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", strings.ToUpper(kw), p.describe())
	}
	return nil
}

func (p *Parser) accept(tt TokenType) bool {
	if p.peek().Type == tt {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(tt TokenType) (Token, error) {
	if p.peek().Type == tt {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %s, found %s", tt, p.describe())
}

// parseIdent accepts an identifier (plain or quoted).
func (p *Parser) parseIdent() (string, error) {
	t := p.peek()
	if t.Type == IDENT || t.Type == QIDENT {
		p.next()
		return t.Text, nil
	}
	return "", p.errf("expected identifier, found %s", p.describe())
}

// --- Statements -------------------------------------------------------------

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Type == LPAREN {
		return p.parseSelectStmt()
	}
	if t.Type != IDENT {
		return nil, p.errf("expected statement, found %s", p.describe())
	}
	switch t.Text {
	case "select", "values":
		return p.parseSelectStmt()
	case "create":
		return p.parseCreate()
	case "drop":
		return p.parseDrop()
	case "insert":
		return p.parseInsert()
	case "delete":
		return p.parseDelete()
	case "update":
		return p.parseUpdate()
	case "explain":
		return p.parseExplain()
	case "set":
		return p.parseSet()
	case "show":
		p.next()
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &ShowStmt{Name: name}, nil
	case "begin", "start":
		p.next()
		if t.Text == "start" {
			// START only in the form START TRANSACTION.
			if err := p.expectKeyword("transaction"); err != nil {
				return nil, err
			}
		} else {
			p.acceptTxnNoise()
		}
		return &BeginStmt{}, nil
	case "commit", "end":
		p.next()
		p.acceptTxnNoise()
		return &CommitStmt{}, nil
	case "rollback", "abort":
		p.next()
		p.acceptTxnNoise()
		return &RollbackStmt{}, nil
	case "analyze", "analyse":
		p.next()
		st := &AnalyzeStmt{}
		if p.peek().Type == IDENT && !reservedAlias[p.peek().Text] || p.peek().Type == QIDENT {
			name, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			st.Table = name
		}
		return st, nil
	}
	return nil, p.errf("unsupported statement starting with %q", t.Text)
}

func (p *Parser) parseCreate() (Statement, error) {
	p.next() // create
	switch {
	case p.acceptKeyword("table"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if p.acceptKeyword("as") {
			sel, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			return &CreateTableStmt{Name: name, AsSelect: sel}, nil
		}
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		var cols []ColumnDef
		for {
			cname, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			tname, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			cd := ColumnDef{Name: cname, TypeName: tname}
			for {
				if p.acceptKeyword("not") {
					if err := p.expectKeyword("null"); err != nil {
						return nil, err
					}
					cd.NotNull = true
					continue
				}
				if p.acceptKeyword("primary") {
					if err := p.expectKeyword("key"); err != nil {
						return nil, err
					}
					cd.NotNull = true
					continue
				}
				break
			}
			cols = append(cols, cd)
			if p.accept(COMMA) {
				continue
			}
			break
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Columns: cols}, nil
	case p.acceptKeyword("view"):
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("as"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{Name: name, Select: sel, Text: FormatStatement(sel)}, nil
	}
	return nil, p.errf("expected TABLE or VIEW after CREATE, found %s", p.describe())
}

// parseTypeName parses a (possibly two-word) SQL type name with optional
// length arguments, which the engine ignores.
func (p *Parser) parseTypeName() (string, error) {
	name, err := p.parseIdent()
	if err != nil {
		return "", err
	}
	if name == "double" && p.acceptKeyword("precision") {
		name = "double precision"
	}
	if name == "character" && p.acceptKeyword("varying") {
		name = "character varying"
	}
	if p.accept(LPAREN) {
		for p.peek().Type == NUMBER || p.peek().Type == COMMA {
			p.next()
		}
		if _, err := p.expect(RPAREN); err != nil {
			return "", err
		}
	}
	return name, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.next() // drop
	st := &DropStmt{}
	switch {
	case p.acceptKeyword("table"):
	case p.acceptKeyword("view"):
		st.View = true
	default:
		return nil, p.errf("expected TABLE or VIEW after DROP, found %s", p.describe())
	}
	if p.acceptKeyword("if") {
		if err := p.expectKeyword("exists"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.next() // insert
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.peek().Type == LPAREN {
		// Could be a column list or INSERT INTO t (SELECT ...). Disambiguate
		// on the token after '('.
		if !(p.peek2().Type == IDENT && p.peek2().Text == "select") {
			p.next()
			for {
				col, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				st.Columns = append(st.Columns, col)
				if p.accept(COMMA) {
					continue
				}
				break
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
		}
	}
	if p.isKeyword("values") {
		p.next()
		for {
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.accept(COMMA) {
					continue
				}
				break
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if p.accept(COMMA) {
				continue
			}
			break
		}
		return st, nil
	}
	sel, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	st.Select = sel
	return st, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.next() // delete
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.next() // update
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(EQ); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, UpdateSet{Column: col, Expr: e})
		if p.accept(COMMA) {
			continue
		}
		break
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseExplain() (Statement, error) {
	p.next() // explain
	st := &ExplainStmt{}
	if p.acceptKeyword("analyze") || p.acceptKeyword("analyse") {
		st.Analyze = true
	}
	sel, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	st.Target = sel
	return st, nil
}

func (p *Parser) parseSet() (Statement, error) {
	p.next() // set
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(EQ); err != nil {
		if !p.acceptKeyword("to") {
			return nil, err
		}
	}
	t := p.peek()
	switch t.Type {
	case STRING, IDENT, NUMBER:
		p.next()
		return &SetStmt{Name: name, Value: t.Text}, nil
	}
	return nil, p.errf("expected value after SET %s, found %s", name, p.describe())
}

// --- SELECT -----------------------------------------------------------------

func (p *Parser) parseSelectStmt() (*SelectStmt, error) {
	body, err := p.parseQueryBody()
	if err != nil {
		return nil, err
	}
	st := &SelectStmt{Body: body}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			st.OrderBy = append(st.OrderBy, item)
			if p.accept(COMMA) {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("limit") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Limit = e
	}
	if p.acceptKeyword("offset") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Offset = e
	}
	return st, nil
}

// parseQueryBody handles UNION/EXCEPT (left-associative); INTERSECT binds
// tighter, as in standard SQL.
func (p *Parser) parseQueryBody() (QueryBody, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op SetOpType
		switch {
		case p.isKeyword("union"):
			op = Union
		case p.isKeyword("except"):
			op = Except
		default:
			return left, nil
		}
		p.next()
		all := p.acceptKeyword("all")
		if !all {
			p.acceptKeyword("distinct")
		}
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &SetOpBody{Op: op, All: all, Left: left, Right: right}
	}
}

func (p *Parser) parseQueryTerm() (QueryBody, error) {
	left, err := p.parseQueryPrimary()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("intersect") {
		p.next()
		all := p.acceptKeyword("all")
		if !all {
			p.acceptKeyword("distinct")
		}
		right, err := p.parseQueryPrimary()
		if err != nil {
			return nil, err
		}
		left = &SetOpBody{Op: Intersect, All: all, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseQueryPrimary() (QueryBody, error) {
	if p.accept(LPAREN) {
		st, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		if len(st.OrderBy) > 0 || st.Limit != nil || st.Offset != nil {
			return nil, fmt.Errorf("ORDER BY/LIMIT inside a set-operation branch is not supported")
		}
		return st.Body, nil
	}
	if p.isKeyword("values") {
		return p.parseValuesBody()
	}
	return p.parseSelectCore()
}

// parseValuesBody parses VALUES (..),(..) as a SelectCore-less body. It is
// modeled as a SelectCore with no FROM and a special VALUES item carried via
// InsertStmt normally; standalone VALUES appears rarely, so it desugars to
// UNION ALL of FROM-less selects.
func (p *Parser) parseValuesBody() (QueryBody, error) {
	p.next() // values
	var bodies []QueryBody
	for {
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		core := &SelectCore{}
		col := 1
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.Items = append(core.Items, SelectItem{Expr: e, Alias: fmt.Sprintf("column%d", col)})
			col++
			if p.accept(COMMA) {
				continue
			}
			break
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		bodies = append(bodies, core)
		if p.accept(COMMA) {
			continue
		}
		break
	}
	out := bodies[0]
	for _, b := range bodies[1:] {
		out = &SetOpBody{Op: Union, All: true, Left: out, Right: b}
	}
	return out, nil
}

func (p *Parser) parseSelectCore() (*SelectCore, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	// SQL-PLE: SELECT PROVENANCE [ON CONTRIBUTION (INFLUENCE|COPY)]
	if p.isKeyword("provenance") {
		p.next()
		core.Provenance = true
		if p.acceptKeyword("on") {
			if err := p.expectKeyword("contribution"); err != nil {
				return nil, err
			}
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			sem, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			switch sem {
			case "influence":
				core.Contribution = Influence
			case "copy":
				core.Contribution = Copy
				if p.acceptKeyword("partial") {
					core.Contribution = Copy
				} else if p.acceptKeyword("complete") {
					core.Contribution = CopyComplete
				}
			default:
				return nil, fmt.Errorf("unknown contribution semantics %q (want INFLUENCE or COPY [PARTIAL|COMPLETE])", sem)
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
		}
	}
	if p.acceptKeyword("distinct") {
		core.Distinct = true
	} else {
		p.acceptKeyword("all")
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if p.accept(COMMA) {
			continue
		}
		break
	}
	if p.acceptKeyword("from") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			core.From = append(core.From, te)
			if p.accept(COMMA) {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if p.accept(COMMA) {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.peek().Type == STAR {
		p.next()
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if (p.peek().Type == IDENT && !reservedAlias[p.peek().Text] || p.peek().Type == QIDENT) &&
		p.peek2().Type == DOT {
		save := p.pos
		tbl := p.next().Text
		p.next() // dot
		if p.peek().Type == STAR {
			p.next()
			return SelectItem{Star: true, TableStar: tbl}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("as") {
		a, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.peek(); (t.Type == IDENT && !reservedAlias[t.Text]) || t.Type == QIDENT {
		p.next()
		item.Alias = t.Text
	}
	return item, nil
}

// --- FROM items ---------------------------------------------------------------

// parseTableExpr parses one FROM-list element, including chained joins.
func (p *Parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind JoinKind
		switch {
		case p.isKeyword("join") || p.isKeyword("inner"):
			p.acceptKeyword("inner")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			kind = InnerJoin
		case p.isKeyword("left"):
			p.next()
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			kind = LeftJoin
		case p.isKeyword("right"):
			p.next()
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			kind = RightJoin
		case p.isKeyword("full"):
			p.next()
			p.acceptKeyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			kind = FullJoin
		case p.isKeyword("cross"):
			p.next()
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			kind = CrossJoin
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		je := &JoinExpr{Kind: kind, Left: left, Right: right}
		if kind != CrossJoin {
			switch {
			case p.acceptKeyword("on"):
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				je.On = cond
			case p.acceptKeyword("using"):
				if _, err := p.expect(LPAREN); err != nil {
					return nil, err
				}
				for {
					col, err := p.parseIdent()
					if err != nil {
						return nil, err
					}
					je.Using = append(je.Using, col)
					if p.accept(COMMA) {
						continue
					}
					break
				}
				if _, err := p.expect(RPAREN); err != nil {
					return nil, err
				}
			default:
				return nil, p.errf("expected ON or USING after JOIN, found %s", p.describe())
			}
		}
		left = je
	}
}

func (p *Parser) parseTablePrimary() (TableExpr, error) {
	if p.accept(LPAREN) {
		// Either a parenthesized join or a derived table.
		if p.isKeyword("select") || p.isKeyword("values") || p.peek().Type == LPAREN && p.looksLikeSubquery() {
			sel, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			ref := &SubqueryRef{Select: sel}
			if err := p.parseFromItemSuffix(&ref.Alias, &ref.Prov); err != nil {
				return nil, err
			}
			return ref, nil
		}
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return te, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	// Optional schema qualification "public.t" — the engine is single-schema,
	// so the qualifier is accepted and dropped (kept for Figure 4 fidelity).
	if p.peek().Type == DOT {
		p.next()
		n2, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		name = n2
	}
	ref := &TableRef{Name: name}
	if err := p.parseFromItemSuffix(&ref.Alias, &ref.Prov); err != nil {
		return nil, err
	}
	return ref, nil
}

// looksLikeSubquery peeks through nested parens for SELECT/VALUES.
func (p *Parser) looksLikeSubquery() bool {
	i := p.pos
	for i < len(p.toks) && p.toks[i].Type == LPAREN {
		i++
	}
	return i < len(p.toks) && p.toks[i].Type == IDENT &&
		(p.toks[i].Text == "select" || p.toks[i].Text == "values")
}

// parseFromItemSuffix parses [AS] alias and the SQL-PLE annotations
// BASERELATION and PROVENANCE (attrs), which may appear in either order
// after the alias.
func (p *Parser) parseFromItemSuffix(alias *string, prov *ProvSpec) error {
	if p.acceptKeyword("as") {
		a, err := p.parseIdent()
		if err != nil {
			return err
		}
		*alias = a
	} else if t := p.peek(); (t.Type == IDENT && !reservedAlias[t.Text]) || t.Type == QIDENT {
		p.next()
		*alias = t.Text
	}
	for {
		switch {
		case p.acceptKeyword("baserelation"):
			prov.BaseRelation = true
		case p.isKeyword("provenance"):
			p.next()
			if _, err := p.expect(LPAREN); err != nil {
				return err
			}
			prov.HasProvAttrs = true
			for {
				a, err := p.parseIdent()
				if err != nil {
					return err
				}
				prov.ProvAttrs = append(prov.ProvAttrs, a)
				if p.accept(COMMA) {
					continue
				}
				break
			}
			if _, err := p.expect(RPAREN); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// --- Expressions --------------------------------------------------------------

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().Type {
		case EQ:
			op = OpEq
		case NEQ:
			op = OpNeq
		case LT:
			op = OpLt
		case LTE:
			op = OpLte
		case GT:
			op = OpGt
		case GTE:
			op = OpGte
		default:
			// Keyword-introduced comparison forms.
			switch {
			case p.isKeyword("is"):
				p.next()
				not := p.acceptKeyword("not")
				switch {
				case p.acceptKeyword("null"):
					left = &IsNullExpr{E: left, Not: not}
					continue
				case p.acceptKeyword("distinct"):
					if err := p.expectKeyword("from"); err != nil {
						return nil, err
					}
					right, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					nd := &BinExpr{Op: OpNotDistinct, L: left, R: right}
					if not {
						left = nd
					} else {
						left = &UnaryExpr{Op: "not", E: nd}
					}
					continue
				case p.acceptKeyword("true"):
					eq := &BinExpr{Op: OpNotDistinct, L: left, R: &Literal{Val: value.NewBool(true)}}
					if not {
						left = &UnaryExpr{Op: "not", E: eq}
					} else {
						left = eq
					}
					continue
				case p.acceptKeyword("false"):
					eq := &BinExpr{Op: OpNotDistinct, L: left, R: &Literal{Val: value.NewBool(false)}}
					if not {
						left = &UnaryExpr{Op: "not", E: eq}
					} else {
						left = eq
					}
					continue
				}
				return nil, p.errf("expected NULL, DISTINCT FROM, TRUE or FALSE after IS")
			case p.isKeyword("in") || (p.isKeyword("not") && p.peek2().Text == "in"):
				not := p.acceptKeyword("not")
				p.next() // in
				return p.parseInTail(left, not)
			case p.isKeyword("between") || (p.isKeyword("not") && p.peek2().Text == "between"):
				not := p.acceptKeyword("not")
				p.next() // between
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("and"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BetweenExpr{E: left, Lo: lo, Hi: hi, Not: not}
				continue
			case p.isKeyword("like") || (p.isKeyword("not") && p.peek2().Text == "like"):
				not := p.acceptKeyword("not")
				p.next() // like
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &LikeExpr{E: left, Pattern: pat, Not: not}
				continue
			}
			return left, nil
		}
		p.next()
		// Quantified comparison: expr op ANY|SOME|ALL (subquery).
		if p.isKeyword("any") || p.isKeyword("some") || p.isKeyword("all") {
			all := p.peek().Text == "all"
			p.next()
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			sel, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			left = &QuantifiedExpr{Op: op, E: left, Subquery: sel, All: all}
			continue
		}
		// Plain comparison; a parenthesized SELECT on the right parses
		// naturally as a scalar subquery via parsePrimary.
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseInTail(left Expr, not bool) (Expr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	if p.isKeyword("select") || p.isKeyword("values") {
		sel, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return p.continueComparisonAfter(&InExpr{E: left, Subquery: sel, Not: not})
	}
	in := &InExpr{E: left, Not: not}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if p.accept(COMMA) {
			continue
		}
		break
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return p.continueComparisonAfter(in)
}

// continueComparisonAfter lets forms like "x IN (...) AND ..." continue; the
// IN result itself cannot be the left side of another comparison operator,
// so this just returns the expression.
func (p *Parser) continueComparisonAfter(e Expr) (Expr, error) { return e, nil }

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().Type {
		case PLUS:
			op = OpAdd
		case MINUS:
			op = OpSub
		case CONCAT:
			op = OpConcat
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().Type {
		case STAR:
			op = OpMul
		case SLASH:
			op = OpDiv
		case PERCENT:
			op = OpMod
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.peek().Type {
	case MINUS:
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok && (lit.Val.K == value.KindInt || lit.Val.K == value.KindFloat) {
			nv, _ := value.Neg(lit.Val)
			return &Literal{Val: nv}, nil
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	case PLUS:
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Type {
	case NUMBER:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Val: value.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Val: value.NewFloat(f)}, nil
		}
		return &Literal{Val: value.NewInt(i)}, nil
	case STRING:
		p.next()
		return &Literal{Val: value.NewString(t.Text)}, nil
	case QMARK:
		p.next()
		ph := &Placeholder{Index: p.params}
		p.params++
		return ph, nil
	case LPAREN:
		p.next()
		if p.isKeyword("select") || p.isKeyword("values") {
			sel, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Select: sel}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	case IDENT, QIDENT:
		switch t.Text {
		case "null":
			p.next()
			return &Literal{Val: value.Null}, nil
		case "true":
			p.next()
			return &Literal{Val: value.NewBool(true)}, nil
		case "false":
			p.next()
			return &Literal{Val: value.NewBool(false)}, nil
		case "case":
			return p.parseCase()
		case "cast":
			p.next()
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("as"); err != nil {
				return nil, err
			}
			tn, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return &CastExpr{E: e, TypeName: tn}, nil
		case "exists":
			p.next()
			if _, err := p.expect(LPAREN); err != nil {
				return nil, err
			}
			sel, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return &ExistsExpr{Subquery: sel}, nil
		}
		if t.Type == IDENT && reservedAlias[t.Text] {
			return nil, p.errf("unexpected keyword %q in expression", t.Text)
		}
		p.next()
		name := t.Text
		// Function call?
		if p.peek().Type == LPAREN && t.Type == IDENT {
			p.next()
			fc := &FuncCall{Name: name}
			if p.peek().Type == STAR {
				p.next()
				fc.Star = true
				if _, err := p.expect(RPAREN); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.peek().Type == RPAREN {
				p.next()
				return fc, nil
			}
			if p.acceptKeyword("distinct") {
				fc.Distinct = true
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, e)
				if p.accept(COMMA) {
					continue
				}
				break
			}
			if _, err := p.expect(RPAREN); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column?
		if p.peek().Type == DOT {
			p.next()
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			// Possibly schema.table.column; treat first part as schema and drop.
			if p.peek().Type == DOT {
				p.next()
				col2, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				return &ColRef{Table: col, Name: col2}, nil
			}
			return &ColRef{Table: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	}
	return nil, p.errf("expected expression, found %s", p.describe())
}

func (p *Parser) parseCase() (Expr, error) {
	p.next() // case
	ce := &CaseExpr{}
	if !p.isKeyword("when") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKeyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, CaseWhen{Cond: cond, Result: res})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return ce, nil
}
