package sql

import (
	"strings"
	"testing"
)

func lex(t *testing.T, input string) []Token {
	t.Helper()
	toks, err := Tokens(input)
	if err != nil {
		t.Fatalf("Tokens(%q): %v", input, err)
	}
	return toks
}

func TestLexBasicSelect(t *testing.T) {
	toks := lex(t, "SELECT a, b FROM t WHERE a >= 10;")
	types := []TokenType{IDENT, IDENT, COMMA, IDENT, IDENT, IDENT, IDENT, IDENT, GTE, NUMBER, SEMI, EOF}
	if len(toks) != len(types) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(types), toks)
	}
	for i, tt := range types {
		if toks[i].Type != tt {
			t.Errorf("token %d = %v (%q), want %v", i, toks[i].Type, toks[i].Text, tt)
		}
	}
	if toks[0].Text != "select" {
		t.Errorf("identifiers must fold to lower case, got %q", toks[0].Text)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks := lex(t, `'it''s a test'`)
	if toks[0].Type != STRING || toks[0].Text != "it's a test" {
		t.Errorf("got %v %q", toks[0].Type, toks[0].Text)
	}
}

func TestLexQuotedIdent(t *testing.T) {
	toks := lex(t, `"Mixed Case" "with""quote"`)
	if toks[0].Type != QIDENT || toks[0].Text != "Mixed Case" {
		t.Errorf("got %v %q", toks[0].Type, toks[0].Text)
	}
	if toks[1].Text != `with"quote` {
		t.Errorf("got %q", toks[1].Text)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.14":   "3.14",
		".5":     ".5",
		"1e6":    "1e6",
		"2.5e-3": "2.5e-3",
	}
	for in, want := range cases {
		toks := lex(t, in)
		if toks[0].Type != NUMBER || toks[0].Text != want {
			t.Errorf("lex(%q) = %v %q, want NUMBER %q", in, toks[0].Type, toks[0].Text, want)
		}
	}
}

func TestLexExponentNotGreedy(t *testing.T) {
	// 1e+x is NUMBER(1) IDENT(e) PLUS IDENT(x)? No: 'e' attaches to the
	// number only when followed by digits; here "1e" lexes as number 1 then
	// ident e... our lexer keeps 1 then ident "e", plus, ident x.
	toks := lex(t, "1e + x")
	if toks[0].Type != NUMBER || toks[0].Text != "1" {
		t.Fatalf("got %v %q", toks[0].Type, toks[0].Text)
	}
	if toks[1].Type != IDENT || toks[1].Text != "e" {
		t.Fatalf("got %v %q", toks[1].Type, toks[1].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(t, `SELECT -- line comment
		/* block /* nested */ comment */ 1`)
	if len(toks) != 3 { // select, 1, EOF
		t.Fatalf("comments must vanish, got %v", toks)
	}
}

func TestLexOperators(t *testing.T) {
	toks := lex(t, "= <> != < <= > >= || + - * / %")
	types := []TokenType{EQ, NEQ, NEQ, LT, LTE, GT, GTE, CONCAT, PLUS, MINUS, STAR, SLASH, PERCENT, EOF}
	for i, tt := range types {
		if toks[i].Type != tt {
			t.Errorf("token %d = %v, want %v", i, toks[i].Type, tt)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", `"unterminated`, `""`, "a ! b", "a | b", "/* unclosed"} {
		if _, err := Tokens(bad); err == nil {
			t.Errorf("Tokens(%q) should fail", bad)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lex(t, "a\n  bb")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("second token at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
	if !strings.Contains(toks[1].Pos(), "line 2") {
		t.Errorf("Pos() = %q", toks[1].Pos())
	}
}

func TestLexUnicodeIdent(t *testing.T) {
	toks := lex(t, "über_tabelle")
	if toks[0].Type != IDENT || toks[0].Text != "über_tabelle" {
		t.Errorf("got %v %q", toks[0].Type, toks[0].Text)
	}
}
