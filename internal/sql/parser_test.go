package sql

import (
	"strings"
	"testing"

	"perm/internal/value"
)

func parseSelect(t *testing.T, input string) *SelectStmt {
	t.Helper()
	st, err := Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", input, st)
	}
	return sel
}

func coreOf(t *testing.T, sel *SelectStmt) *SelectCore {
	t.Helper()
	core, ok := sel.Body.(*SelectCore)
	if !ok {
		t.Fatalf("body is %T, want *SelectCore", sel.Body)
	}
	return core
}

func TestParseSimpleSelect(t *testing.T) {
	sel := parseSelect(t, "SELECT a, b AS bee FROM t WHERE a > 1")
	core := coreOf(t, sel)
	if len(core.Items) != 2 || core.Items[1].Alias != "bee" {
		t.Errorf("items = %+v", core.Items)
	}
	if core.Where == nil {
		t.Error("missing WHERE")
	}
	ref, ok := core.From[0].(*TableRef)
	if !ok || ref.Name != "t" {
		t.Errorf("from = %+v", core.From)
	}
}

func TestParseSelectProvenance(t *testing.T) {
	sel := parseSelect(t, "SELECT PROVENANCE a FROM t")
	core := coreOf(t, sel)
	if !core.Provenance || core.Contribution != DefaultContribution {
		t.Errorf("core = %+v", core)
	}
}

func TestParseContributionSemantics(t *testing.T) {
	sel := parseSelect(t, "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text FROM v")
	core := coreOf(t, sel)
	if !core.Provenance || core.Contribution != Influence {
		t.Errorf("core = %+v", core)
	}
	sel = parseSelect(t, "SELECT PROVENANCE ON CONTRIBUTION (COPY) a FROM t")
	if coreOf(t, sel).Contribution != Copy {
		t.Error("COPY not parsed")
	}
	if _, err := Parse("SELECT PROVENANCE ON CONTRIBUTION (WHATEVER) a FROM t"); err == nil {
		t.Error("unknown semantics must fail")
	}
}

func TestParseBaseRelation(t *testing.T) {
	sel := parseSelect(t, "SELECT PROVENANCE text FROM v1 BASERELATION WHERE count > 3")
	core := coreOf(t, sel)
	ref := core.From[0].(*TableRef)
	if !ref.Prov.BaseRelation {
		t.Error("BASERELATION not parsed")
	}
}

func TestParseExternalProvenance(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t AS x PROVENANCE (p1, p2) BASERELATION")
	ref := coreOf(t, sel).From[0].(*TableRef)
	if ref.Alias != "x" || !ref.Prov.HasProvAttrs || len(ref.Prov.ProvAttrs) != 2 {
		t.Errorf("ref = %+v", ref)
	}
	if !ref.Prov.BaseRelation {
		t.Error("annotations must combine in any order")
	}
}

func TestParseJoins(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM a JOIN b ON a.x = b.x
		LEFT JOIN c USING (y) CROSS JOIN d`)
	core := coreOf(t, sel)
	j1, ok := core.From[0].(*JoinExpr)
	if !ok || j1.Kind != CrossJoin {
		t.Fatalf("outermost join = %+v", core.From[0])
	}
	j2 := j1.Left.(*JoinExpr)
	if j2.Kind != LeftJoin || len(j2.Using) != 1 {
		t.Errorf("left join = %+v", j2)
	}
	j3 := j2.Left.(*JoinExpr)
	if j3.Kind != InnerJoin || j3.On == nil {
		t.Errorf("inner join = %+v", j3)
	}
}

func TestParseJoinRequiresCondition(t *testing.T) {
	if _, err := Parse("SELECT * FROM a JOIN b"); err == nil {
		t.Error("JOIN without ON/USING must fail")
	}
}

func TestParseSetOpsPrecedence(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v")
	body, ok := sel.Body.(*SetOpBody)
	if !ok || body.Op != Union {
		t.Fatalf("top = %+v", sel.Body)
	}
	right, ok := body.Right.(*SetOpBody)
	if !ok || right.Op != Intersect {
		t.Errorf("INTERSECT must bind tighter than UNION, right = %+v", body.Right)
	}
}

func TestParseUnionAll(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t UNION ALL SELECT a FROM u EXCEPT SELECT a FROM w")
	body := sel.Body.(*SetOpBody)
	if body.Op != Except || body.All {
		t.Errorf("top = %+v", body)
	}
	left := body.Left.(*SetOpBody)
	if left.Op != Union || !left.All {
		t.Errorf("left = %+v", left)
	}
}

func TestParseOrderLimit(t *testing.T) {
	sel := parseSelect(t, "SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5")
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("limit/offset missing")
	}
}

func TestParseGroupHaving(t *testing.T) {
	sel := parseSelect(t, "SELECT count(*), x FROM t GROUP BY x HAVING count(*) > 2")
	core := coreOf(t, sel)
	if len(core.GroupBy) != 1 || core.Having == nil {
		t.Errorf("core = %+v", core)
	}
	fc := core.Items[0].Expr.(*FuncCall)
	if !fc.Star || fc.Name != "count" {
		t.Errorf("count(*) = %+v", fc)
	}
}

func TestParseDistinctAggregate(t *testing.T) {
	sel := parseSelect(t, "SELECT count(DISTINCT x) FROM t")
	fc := coreOf(t, sel).Items[0].Expr.(*FuncCall)
	if !fc.Distinct || len(fc.Args) != 1 {
		t.Errorf("fc = %+v", fc)
	}
}

func TestParseSubqueries(t *testing.T) {
	sel := parseSelect(t, `SELECT a FROM (SELECT a FROM t) AS s
		WHERE a IN (SELECT b FROM u)
		AND EXISTS (SELECT 1 FROM w WHERE w.x = s.a)
		AND a > (SELECT min(b) FROM u)`)
	core := coreOf(t, sel)
	if _, ok := core.From[0].(*SubqueryRef); !ok {
		t.Errorf("from = %T", core.From[0])
	}
	// WHERE is (IN AND EXISTS) AND compare.
	and1 := core.Where.(*BinExpr)
	if and1.Op != OpAnd {
		t.Fatalf("where = %+v", core.Where)
	}
}

func TestParseExpressionsPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add := e.(*BinExpr)
	if add.Op != OpAdd {
		t.Fatalf("top = %+v", e)
	}
	if mul := add.R.(*BinExpr); mul.Op != OpMul {
		t.Errorf("right = %+v", add.R)
	}

	e, _ = ParseExpr("NOT a = b OR c")
	or := e.(*BinExpr)
	if or.Op != OpOr {
		t.Fatalf("top = %+v", e)
	}
	if not := or.L.(*UnaryExpr); not.Op != "not" {
		t.Errorf("NOT must bind tighter than OR: %+v", or.L)
	}
}

func TestParseCase(t *testing.T) {
	e, err := ParseExpr("CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END")
	if err != nil {
		t.Fatal(err)
	}
	ce := e.(*CaseExpr)
	if len(ce.Whens) != 2 || ce.Else == nil || ce.Operand != nil {
		t.Errorf("case = %+v", ce)
	}
	e, _ = ParseExpr("CASE x WHEN 1 THEN 'one' END")
	ce = e.(*CaseExpr)
	if ce.Operand == nil || len(ce.Whens) != 1 || ce.Else != nil {
		t.Errorf("operand case = %+v", ce)
	}
}

func TestParseBetweenLikeIsNull(t *testing.T) {
	e, err := ParseExpr("a BETWEEN 1 AND 10 AND b NOT LIKE 'x%' AND c IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	// top-level AND chain of three comparisons
	and := e.(*BinExpr)
	if and.Op != OpAnd {
		t.Fatalf("top = %+v", e)
	}
	if isn := and.R.(*IsNullExpr); !isn.Not {
		t.Errorf("IS NOT NULL = %+v", and.R)
	}
}

func TestParseIsDistinctFrom(t *testing.T) {
	e, err := ParseExpr("a IS NOT DISTINCT FROM b")
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*BinExpr)
	if b.Op != OpNotDistinct {
		t.Errorf("got %+v", e)
	}
	e, _ = ParseExpr("a IS DISTINCT FROM b")
	u := e.(*UnaryExpr)
	if u.Op != "not" {
		t.Errorf("IS DISTINCT FROM must negate: %+v", e)
	}
}

func TestParseInList(t *testing.T) {
	e, err := ParseExpr("x NOT IN (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	in := e.(*InExpr)
	if !in.Not || len(in.List) != 3 {
		t.Errorf("in = %+v", in)
	}
}

func TestParseCast(t *testing.T) {
	e, err := ParseExpr("CAST(x AS integer)")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*CastExpr)
	if c.TypeName != "integer" {
		t.Errorf("cast = %+v", c)
	}
}

func TestParseLiterals(t *testing.T) {
	cases := map[string]value.Value{
		"42":    value.NewInt(42),
		"-7":    value.NewInt(-7),
		"3.25":  value.NewFloat(3.25),
		"'txt'": value.NewString("txt"),
		"TRUE":  value.NewBool(true),
		"false": value.NewBool(false),
		"NULL":  value.Null,
	}
	for in, want := range cases {
		e, err := ParseExpr(in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", in, err)
			continue
		}
		lit, ok := e.(*Literal)
		if !ok {
			t.Errorf("ParseExpr(%q) = %T", in, e)
			continue
		}
		if lit.Val.K != want.K || (!want.IsNull() && value.Distinct(lit.Val, want)) {
			t.Errorf("ParseExpr(%q) = %v, want %v", in, lit.Val, want)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE t (a int NOT NULL, b varchar(20), c double precision)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if len(ct.Columns) != 3 || !ct.Columns[0].NotNull || ct.Columns[2].TypeName != "double precision" {
		t.Errorf("create = %+v", ct)
	}
}

func TestParseCreateTableAs(t *testing.T) {
	st, err := Parse("CREATE TABLE p AS SELECT PROVENANCE a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTableStmt)
	if ct.AsSelect == nil {
		t.Error("CTAS select missing")
	}
}

func TestParseCreateView(t *testing.T) {
	st, err := Parse("CREATE VIEW v AS SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	cv := st.(*CreateViewStmt)
	if cv.Name != "v" || cv.Text == "" {
		t.Errorf("view = %+v", cv)
	}
	// The stored text must re-parse.
	if _, err := Parse(cv.Text); err != nil {
		t.Errorf("stored view text %q does not parse: %v", cv.Text, err)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	st, err = Parse("INSERT INTO t SELECT * FROM u")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*InsertStmt).Select == nil {
		t.Error("INSERT SELECT missing")
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	st, err := Parse("DELETE FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*DeleteStmt).Where == nil {
		t.Error("where missing")
	}
	st, err = Parse("UPDATE t SET a = a + 1, b = 'x' WHERE b IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*UpdateStmt)
	if len(up.Sets) != 2 || up.Where == nil {
		t.Errorf("update = %+v", up)
	}
}

func TestParseSetShowExplain(t *testing.T) {
	st, err := Parse("SET provenance_contribution = 'copy'")
	if err != nil {
		t.Fatal(err)
	}
	if s := st.(*SetStmt); s.Name != "provenance_contribution" || s.Value != "copy" {
		t.Errorf("set = %+v", s)
	}
	st, _ = Parse("SHOW optimizer")
	if st.(*ShowStmt).Name != "optimizer" {
		t.Error("show")
	}
	st, err = Parse("EXPLAIN ANALYZE SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if !st.(*ExplainStmt).Analyze {
		t.Error("explain analyze flag")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("SELECT 1; SELECT 2;; SELECT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("got %d statements", len(stmts))
	}
}

func TestParseValues(t *testing.T) {
	sel := parseSelect(t, "VALUES (1, 'a'), (2, 'b')")
	body, ok := sel.Body.(*SetOpBody)
	if !ok || body.Op != Union || !body.All {
		t.Fatalf("VALUES desugars to UNION ALL, got %+v", sel.Body)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a t ORDER",
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"INSERT INTO",
		"SELECT a FROM t GROUP",
		"SELECT CASE END",
		"FOO BAR",
		"SELECT 1 2 3",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseSchemaQualified(t *testing.T) {
	sel := parseSelect(t, "SELECT public.s.i FROM public.s")
	core := coreOf(t, sel)
	if ref := core.From[0].(*TableRef); ref.Name != "s" {
		t.Errorf("schema qualifier must drop: %+v", ref)
	}
	cr := core.Items[0].Expr.(*ColRef)
	if cr.Table != "s" || cr.Name != "i" {
		t.Errorf("colref = %+v", cr)
	}
}

// TestFormatRoundTrip checks that printing and re-parsing a statement yields
// a stable fixpoint (format(parse(format(parse(q)))) == format(parse(q))).
func TestFormatRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT a, b AS bee FROM t WHERE (a > 1) AND (b LIKE 'x%')`,
		`SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM imports`,
		`SELECT PROVENANCE ON CONTRIBUTION (COPY) a FROM t BASERELATION`,
		`SELECT count(*), x FROM t GROUP BY x HAVING count(*) > 2 ORDER BY x DESC LIMIT 3`,
		`SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y`,
		`SELECT a FROM (SELECT a FROM t) AS s PROVENANCE (a)`,
		`SELECT CASE WHEN a IS NULL THEN 0 ELSE a END FROM t`,
		`SELECT a FROM t WHERE a IN (SELECT b FROM u) AND EXISTS (SELECT 1 FROM w)`,
		`SELECT a FROM t WHERE a BETWEEN 1 AND 2 OR a IS NOT NULL`,
		`INSERT INTO t (a) VALUES (1), (2)`,
		`CREATE VIEW v AS SELECT a FROM t`,
		`UPDATE t SET a = 1 WHERE b = 'x'`,
		`DELETE FROM t WHERE a IS NULL`,
		`SELECT a FROM t INTERSECT ALL SELECT a FROM u`,
		`SELECT DISTINCT a, sum(b) FROM t GROUP BY a`,
		`SELECT CAST(a AS float) FROM t WHERE x IS NOT DISTINCT FROM y`,
	}
	for _, q := range queries {
		st1, err := Parse(q)
		if err != nil {
			t.Errorf("Parse(%q): %v", q, err)
			continue
		}
		f1 := FormatStatement(st1)
		st2, err := Parse(f1)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v\nformatted: %s", q, err, f1)
			continue
		}
		f2 := FormatStatement(st2)
		if f1 != f2 {
			t.Errorf("format not a fixpoint:\n1: %s\n2: %s", f1, f2)
		}
	}
}

func TestFormatQuotesReservedIdents(t *testing.T) {
	st, err := Parse(`SELECT "select", "Mixed" FROM "order"`)
	if err != nil {
		t.Fatal(err)
	}
	f := FormatStatement(st)
	if !strings.Contains(f, `"select"`) || !strings.Contains(f, `"Mixed"`) || !strings.Contains(f, `"order"`) {
		t.Errorf("formatted: %s", f)
	}
}
