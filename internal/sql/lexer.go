package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer turns SQL text into tokens. It handles single-quoted strings with ”
// escapes, double-quoted identifiers, line comments (--) and block comments
// (/* ... */, nested), and the SQL operator set used by the grammar.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over the input.
func NewLexer(input string) *Lexer {
	return &Lexer{src: []rune(input), line: 1, col: 1}
}

// Tokens lexes the whole input.
func Tokens(input string) ([]Token, error) {
	lx := NewLexer(input)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Type == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(n int) rune {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

func (l *Lexer) advance() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for {
		c := l.peek()
		switch {
		case l.pos >= len(l.src):
			return nil
		case unicode.IsSpace(c):
			l.advance()
		case c == '-' && l.peekAt(1) == '-':
			// Skip to end of line by position, not the 0 rune: comment text —
			// like quoted-literal text, and like block comments below — may
			// contain any rune including NUL.
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			depth := 1
			for depth > 0 {
				if l.pos >= len(l.src) {
					return fmt.Errorf("line %d col %d: unterminated block comment", startLine, startCol)
				}
				if l.peek() == '/' && l.peekAt(1) == '*' {
					l.advance()
					l.advance()
					depth++
					continue
				}
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					depth--
					continue
				}
				l.advance()
			}
		default:
			return nil
		}
	}
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || c == '$' || unicode.IsLetter(c) || unicode.IsDigit(c)
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	mk := func(tt TokenType, text string) Token {
		return Token{Type: tt, Text: text, Line: line, Col: col}
	}
	c := l.peek()
	switch {
	case l.pos >= len(l.src):
		// True end of input only: a literal NUL rune in the source is NOT
		// EOF — treating it as one would silently truncate the statement
		// (found by FuzzPlaceholders) — so it falls through to the
		// unexpected-character error below.
		return mk(EOF, ""), nil
	case isIdentStart(c):
		var b strings.Builder
		for isIdentPart(l.peek()) {
			b.WriteRune(l.advance())
		}
		return mk(IDENT, strings.ToLower(b.String())), nil
	case unicode.IsDigit(c) || (c == '.' && unicode.IsDigit(l.peekAt(1))):
		var b strings.Builder
		seenDot, seenExp := false, false
		for {
			c := l.peek()
			switch {
			case unicode.IsDigit(c):
				b.WriteRune(l.advance())
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				b.WriteRune(l.advance())
			case (c == 'e' || c == 'E') && !seenExp && unicode.IsDigit(runeOrZero(l.peekAt(1), l.peekAt(2))):
				seenExp = true
				b.WriteRune(l.advance())
				if l.peek() == '+' || l.peek() == '-' {
					b.WriteRune(l.advance())
				}
			default:
				return mk(NUMBER, b.String()), nil
			}
		}
	case c == '\'':
		l.advance()
		var b strings.Builder
		for {
			c := l.peek()
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("line %d col %d: unterminated string literal", line, col)
			}
			if c == '\'' {
				if l.peekAt(1) == '\'' { // escaped quote
					l.advance()
					l.advance()
					b.WriteRune('\'')
					continue
				}
				l.advance()
				return mk(STRING, b.String()), nil
			}
			b.WriteRune(l.advance())
		}
	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			c := l.peek()
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("line %d col %d: unterminated quoted identifier", line, col)
			}
			if c == '"' {
				if l.peekAt(1) == '"' {
					l.advance()
					l.advance()
					b.WriteRune('"')
					continue
				}
				l.advance()
				if b.Len() == 0 {
					return Token{}, fmt.Errorf("line %d col %d: empty quoted identifier", line, col)
				}
				return mk(QIDENT, b.String()), nil
			}
			b.WriteRune(l.advance())
		}
	}
	l.advance()
	switch c {
	case '(':
		return mk(LPAREN, "("), nil
	case ')':
		return mk(RPAREN, ")"), nil
	case ',':
		return mk(COMMA, ","), nil
	case ';':
		return mk(SEMI, ";"), nil
	case '*':
		return mk(STAR, "*"), nil
	case '.':
		return mk(DOT, "."), nil
	case '+':
		return mk(PLUS, "+"), nil
	case '-':
		return mk(MINUS, "-"), nil
	case '/':
		return mk(SLASH, "/"), nil
	case '%':
		return mk(PERCENT, "%"), nil
	case '=':
		return mk(EQ, "="), nil
	case '<':
		if l.peek() == '=' {
			l.advance()
			return mk(LTE, "<="), nil
		}
		if l.peek() == '>' {
			l.advance()
			return mk(NEQ, "<>"), nil
		}
		return mk(LT, "<"), nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(GTE, ">="), nil
		}
		return mk(GT, ">"), nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(NEQ, "!="), nil
		}
		return Token{}, fmt.Errorf("line %d col %d: unexpected character '!'", line, col)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return mk(CONCAT, "||"), nil
		}
		return Token{}, fmt.Errorf("line %d col %d: unexpected character '|'", line, col)
	case '?':
		return mk(QMARK, "?"), nil
	}
	return Token{}, fmt.Errorf("line %d col %d: unexpected character %q", line, col, string(c))
}

// runeOrZero helps lex exponents: returns the first rune unless it is a sign,
// in which case the second (so 1e+5 lexes as a number but 1e+x does not).
func runeOrZero(a, b rune) rune {
	if a == '+' || a == '-' {
		return b
	}
	return a
}
