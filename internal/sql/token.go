package sql

import "fmt"

// TokenType classifies lexer output.
type TokenType int

// Token types. Keywords are recognized by the parser from IDENT tokens via
// the keyword table, so that non-reserved words stay usable as identifiers.
const (
	EOF TokenType = iota
	IDENT
	QIDENT // "quoted identifier"
	NUMBER
	STRING // 'string literal'
	// punctuation and operators
	LPAREN
	RPAREN
	COMMA
	SEMI
	STAR
	DOT
	PLUS
	MINUS
	SLASH
	PERCENT
	EQ
	NEQ
	LT
	LTE
	GT
	GTE
	CONCAT // ||
	QMARK  // ? (bind-parameter placeholder)
)

func (t TokenType) String() string {
	switch t {
	case EOF:
		return "end of input"
	case IDENT:
		return "identifier"
	case QIDENT:
		return "quoted identifier"
	case NUMBER:
		return "number"
	case STRING:
		return "string"
	case LPAREN:
		return "("
	case RPAREN:
		return ")"
	case COMMA:
		return ","
	case SEMI:
		return ";"
	case STAR:
		return "*"
	case DOT:
		return "."
	case PLUS:
		return "+"
	case MINUS:
		return "-"
	case SLASH:
		return "/"
	case PERCENT:
		return "%"
	case EQ:
		return "="
	case NEQ:
		return "<>"
	case LT:
		return "<"
	case LTE:
		return "<="
	case GT:
		return ">"
	case GTE:
		return ">="
	case CONCAT:
		return "||"
	case QMARK:
		return "?"
	}
	return fmt.Sprintf("token(%d)", int(t))
}

// Token is one lexical element with its source position (1-based).
type Token struct {
	Type TokenType
	Text string // raw text; for STRING the unescaped value, for IDENT folded lower
	Line int
	Col  int
}

// Pos renders the position for error messages.
func (t Token) Pos() string { return fmt.Sprintf("line %d col %d", t.Line, t.Col) }
