package sql

import (
	"strings"
	"testing"

	"perm/internal/value"
)

func fmtExpr(t *testing.T, input string) string {
	t.Helper()
	e, err := ParseExpr(input)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", input, err)
	}
	return FormatExpr(e)
}

func TestFormatExprForms(t *testing.T) {
	cases := []struct{ in, want string }{
		{`a + b * 2`, `(a + (b * 2))`},
		{`NOT x`, `(NOT x)`},
		{`-x`, `(-x)`},
		{`t.c`, `t.c`},
		{`x IS NULL`, `(x IS NULL)`},
		{`x IS NOT NULL`, `(x IS NOT NULL)`},
		{`count(*)`, `count(*)`},
		{`sum(DISTINCT x)`, `sum(DISTINCT x)`},
		{`coalesce(a, b, 0)`, `coalesce(a, b, 0)`},
		{`CASE x WHEN 1 THEN 'a' ELSE 'b' END`, `CASE x WHEN 1 THEN 'a' ELSE 'b' END`},
		{`x IN (1, 2)`, `(x IN (1, 2))`},
		{`x NOT IN (1)`, `(x NOT IN (1))`},
		{`x BETWEEN 1 AND 2`, `(x BETWEEN 1 AND 2)`},
		{`x NOT BETWEEN 1 AND 2`, `(x NOT BETWEEN 1 AND 2)`},
		{`x LIKE 'a%'`, `(x LIKE 'a%')`},
		{`x NOT LIKE 'a%'`, `(x NOT LIKE 'a%')`},
		{`CAST(x AS int)`, `CAST(x AS int)`},
		{`x IS NOT DISTINCT FROM y`, `(x IS NOT DISTINCT FROM y)`},
		{`a || b`, `(a || b)`},
		{`x = ANY (SELECT a FROM t)`, `(x = ANY (SELECT a FROM t))`},
		{`x < ALL (SELECT a FROM t)`, `(x < ALL (SELECT a FROM t))`},
		{`EXISTS (SELECT 1 FROM t)`, `EXISTS (SELECT 1 FROM t)`},
		{`NOT EXISTS (SELECT 1 FROM t)`, `(NOT EXISTS (SELECT 1 FROM t))`},
		{`x IN (SELECT a FROM t)`, `(x IN (SELECT a FROM t))`},
	}
	for _, c := range cases {
		if got := fmtExpr(t, c.in); got != c.want {
			t.Errorf("FormatExpr(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatStatementForms(t *testing.T) {
	cases := []struct{ in, want string }{
		{`DROP TABLE IF EXISTS t`, `DROP TABLE IF EXISTS t`},
		{`DROP VIEW v`, `DROP VIEW v`},
		{`SET x = 'it''s'`, `SET x = 'it''s'`},
		{`SHOW optimizer`, `SHOW optimizer`},
		{`ANALYZE t`, `ANALYZE t`},
		{`ANALYZE`, `ANALYZE`},
		{`EXPLAIN SELECT 1`, `EXPLAIN SELECT 1`},
		{`EXPLAIN ANALYZE SELECT 1`, `EXPLAIN ANALYZE SELECT 1`},
		{`INSERT INTO t SELECT a FROM u`, `INSERT INTO t SELECT a FROM u`},
		{`CREATE TABLE t AS SELECT 1 AS x`, `CREATE TABLE t AS SELECT 1 AS x`},
		{`SELECT a FROM t ORDER BY a DESC LIMIT 1 OFFSET 2`,
			`SELECT a FROM t ORDER BY a DESC LIMIT 1 OFFSET 2`},
		{`SELECT * FROM t CROSS JOIN u`, `SELECT * FROM t CROSS JOIN u`},
		{`SELECT t.* FROM t`, `SELECT t.* FROM t`},
	}
	for _, c := range cases {
		st, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := FormatStatement(st); got != c.want {
			t.Errorf("FormatStatement(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatSetOpParenthesization(t *testing.T) {
	// UNION of an INTERSECT right side must parenthesize to preserve
	// precedence on re-parse.
	in := `SELECT a FROM t UNION (SELECT a FROM u UNION SELECT a FROM v)`
	st, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatStatement(st)
	st2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse %q: %v", out, err)
	}
	if FormatStatement(st2) != out {
		t.Errorf("set-op formatting not stable: %q -> %q", out, FormatStatement(st2))
	}
}

func TestFormatProvenanceAnnotations(t *testing.T) {
	in := `SELECT PROVENANCE a FROM t BASERELATION PROVENANCE (x, y)`
	st, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatStatement(st)
	for _, want := range []string{"PROVENANCE a", "BASERELATION", "PROVENANCE (x, y)"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted %q missing %q", out, want)
		}
	}
}

func TestFormatContributionVariants(t *testing.T) {
	for _, sem := range []string{"INFLUENCE", "COPY PARTIAL", "COPY COMPLETE"} {
		in := `SELECT PROVENANCE ON CONTRIBUTION (` + sem + `) a FROM t`
		st, err := Parse(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		out := FormatStatement(st)
		if !strings.Contains(out, sem) {
			t.Errorf("formatted %q missing %q", out, sem)
		}
		if _, err := Parse(out); err != nil {
			t.Errorf("re-parse %q: %v", out, err)
		}
	}
}

func TestFormatLiteralValues(t *testing.T) {
	st, err := Parse(`INSERT INTO t VALUES (NULL, TRUE, FALSE, 1.5, 'x')`)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatStatement(st)
	for _, want := range []string{"NULL", "TRUE", "FALSE", "1.5", "'x'"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted %q missing %q", out, want)
		}
	}
	_ = value.Null // keep import for symmetry with other tests
}
