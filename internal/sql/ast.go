// Package sql implements the SQL front-end of Perm: lexer, parser, abstract
// syntax tree, and SQL printer. The grammar is the SQL subset Perm supports
// plus the SQL-PLE provenance language extension of the paper:
//
//	SELECT PROVENANCE [ON CONTRIBUTION (INFLUENCE | COPY)] ...
//	<from item> BASERELATION
//	<from item> PROVENANCE (attr, ...)
package sql

import (
	"perm/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface{ expr() }

// --- Query statements -------------------------------------------------------

// SelectStmt is a full query expression: a body (single SELECT core or a tree
// of set operations) with optional ORDER BY / LIMIT / OFFSET.
type SelectStmt struct {
	Body    QueryBody
	OrderBy []OrderItem
	Limit   Expr // nil when absent
	Offset  Expr // nil when absent
}

func (*SelectStmt) stmt() {}

// QueryBody is either a *SelectCore or a *SetOpBody.
type QueryBody interface{ body() }

// SetOpType enumerates UNION / INTERSECT / EXCEPT.
type SetOpType int

// Set operation kinds.
const (
	Union SetOpType = iota
	Intersect
	Except
)

func (s SetOpType) String() string {
	switch s {
	case Union:
		return "UNION"
	case Intersect:
		return "INTERSECT"
	case Except:
		return "EXCEPT"
	}
	return "SETOP"
}

// SetOpBody combines two query bodies with a set operation.
type SetOpBody struct {
	Op    SetOpType
	All   bool
	Left  QueryBody
	Right QueryBody
}

func (*SetOpBody) body() {}

// ContributionSemantics names a provenance contribution definition of
// SQL-PLE's ON CONTRIBUTION clause.
type ContributionSemantics int

// Supported contribution semantics. Influence is PI-CS (Why-provenance
// flavored); Copy/CopyComplete are C-CS variants (Where-provenance flavored):
// COPY (PARTIAL) keeps a provenance attribute when it is copied to the output
// on some derivation path; COPY COMPLETE requires every path (paper §2.4:
// "several types of Where-provenance as keyword COPY").
const (
	DefaultContribution ContributionSemantics = iota
	Influence
	Copy
	CopyComplete
)

func (c ContributionSemantics) String() string {
	switch c {
	case Influence:
		return "INFLUENCE"
	case Copy:
		return "COPY PARTIAL"
	case CopyComplete:
		return "COPY COMPLETE"
	}
	return "DEFAULT"
}

// SelectCore is one SELECT ... FROM ... block.
type SelectCore struct {
	// Provenance marks SELECT PROVENANCE (SQL-PLE).
	Provenance bool
	// Contribution is the ON CONTRIBUTION (...) modifier; DefaultContribution
	// means the session default (influence).
	Contribution ContributionSemantics
	Distinct     bool
	Items        []SelectItem
	From         []TableExpr // empty means a one-row FROM-less select
	Where        Expr
	GroupBy      []Expr
	Having       Expr
}

func (*SelectCore) body() {}

// SelectItem is one element of the select list.
type SelectItem struct {
	// Star is SELECT * (TableStar empty) or SELECT t.* (TableStar = "t").
	Star      bool
	TableStar string
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// --- FROM items -------------------------------------------------------------

// TableExpr is a FROM item.
type TableExpr interface{ tableExpr() }

// ProvSpec carries the SQL-PLE per-FROM-item provenance annotations.
type ProvSpec struct {
	// BaseRelation: treat this item like a base relation during provenance
	// rewrite (stop descending; SQL-PLE keyword BASERELATION).
	BaseRelation bool
	// ProvAttrs: these attributes of the item already are provenance
	// (external provenance; SQL-PLE keyword PROVENANCE (a, b, ...)).
	ProvAttrs []string
	// HasProvAttrs distinguishes PROVENANCE () from absence.
	HasProvAttrs bool
}

// TableRef references a stored table or view, with optional alias.
type TableRef struct {
	Name  string
	Alias string
	Prov  ProvSpec
}

func (*TableRef) tableExpr() {}

// SubqueryRef is a derived table: (SELECT ...) alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
	Prov   ProvSpec
}

func (*SubqueryRef) tableExpr() {}

// JoinKind enumerates join types.
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	RightJoin
	FullJoin
	CrossJoin
)

func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "JOIN"
	case LeftJoin:
		return "LEFT JOIN"
	case RightJoin:
		return "RIGHT JOIN"
	case FullJoin:
		return "FULL JOIN"
	case CrossJoin:
		return "CROSS JOIN"
	}
	return "JOIN"
}

// JoinExpr is an explicit join between two FROM items.
type JoinExpr struct {
	Kind  JoinKind
	Left  TableExpr
	Right TableExpr
	On    Expr     // nil for CROSS JOIN or USING
	Using []string // non-empty for JOIN ... USING (...)
}

func (*JoinExpr) tableExpr() {}

// --- Other statements --------------------------------------------------------

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name     string
	TypeName string
	NotNull  bool
}

// CreateTableStmt is CREATE TABLE, optionally CREATE TABLE ... AS SELECT.
type CreateTableStmt struct {
	Name     string
	Columns  []ColumnDef
	AsSelect *SelectStmt // non-nil for CTAS; Columns then empty
}

func (*CreateTableStmt) stmt() {}

// CreateViewStmt is CREATE VIEW name AS select. Text preserves the SQL of the
// defining query for later re-analysis (view unfolding).
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
	Text   string
}

func (*CreateViewStmt) stmt() {}

// DropStmt drops a table or view.
type DropStmt struct {
	View     bool
	Name     string
	IfExists bool
}

func (*DropStmt) stmt() {}

// InsertStmt inserts literal rows or a query result.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr    // VALUES form
	Select  *SelectStmt // INSERT ... SELECT form
}

func (*InsertStmt) stmt() {}

// DeleteStmt deletes rows from a table.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// UpdateStmt updates rows in place.
type UpdateStmt struct {
	Table string
	Sets  []UpdateSet
	Where Expr
}

// UpdateSet is one SET col = expr assignment.
type UpdateSet struct {
	Column string
	Expr   Expr
}

func (*UpdateStmt) stmt() {}

// ExplainStmt asks for the plan of a query. With Analyze true the query also
// runs and per-stage timings are reported (the Figure 3 pipeline).
type ExplainStmt struct {
	Analyze bool
	Target  *SelectStmt
}

func (*ExplainStmt) stmt() {}

// SetStmt sets a session variable (SET name = 'value').
type SetStmt struct {
	Name  string
	Value string
}

func (*SetStmt) stmt() {}

// ShowStmt reads a session variable.
type ShowStmt struct{ Name string }

func (*ShowStmt) stmt() {}

// AnalyzeStmt refreshes optimizer statistics (ANALYZE [table]).
type AnalyzeStmt struct{ Table string }

func (*AnalyzeStmt) stmt() {}

// BeginStmt starts an explicit transaction (BEGIN [TRANSACTION | WORK]).
type BeginStmt struct{}

func (*BeginStmt) stmt() {}

// CommitStmt commits the open transaction (COMMIT | END [TRANSACTION | WORK]).
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// RollbackStmt aborts the open transaction (ROLLBACK | ABORT [TRANSACTION | WORK]).
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}

// --- Expressions -------------------------------------------------------------

// Literal is a constant.
type Literal struct{ Val value.Value }

func (*Literal) expr() {}

// Placeholder is a `?` bind parameter. The parser numbers placeholders in
// textual order (0-based); values are supplied at execution time through the
// engine's prepared-statement API, so a statement's plan can be built once
// and executed with different arguments.
type Placeholder struct{ Index int }

func (*Placeholder) expr() {}

// ColRef is a (possibly qualified) column reference.
type ColRef struct {
	Table string // empty when unqualified
	Name  string
}

func (*ColRef) expr() {}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
	// OpNotDistinct is IS NOT DISTINCT FROM (null-safe equality). The parser
	// emits it for the explicit syntax; the provenance rewriter synthesizes
	// it for join-back conditions over nullable group-by keys.
	OpNotDistinct
)

func (o BinOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNeq:
		return "<>"
	case OpLt:
		return "<"
	case OpLte:
		return "<="
	case OpGt:
		return ">"
	case OpGte:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpConcat:
		return "||"
	case OpNotDistinct:
		return "IS NOT DISTINCT FROM"
	}
	return "?"
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

func (*BinExpr) expr() {}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "not" | "-" | "+"
	E  Expr
}

func (*UnaryExpr) expr() {}

// FuncCall is a function or aggregate invocation.
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x), SUM(DISTINCT x), ...
}

func (*FuncCall) expr() {}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond   Expr
	Result Expr
}

func (*CaseExpr) expr() {}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// InExpr is expr [NOT] IN (list) or expr [NOT] IN (subquery).
type InExpr struct {
	E        Expr
	List     []Expr
	Subquery *SelectStmt
	Not      bool
}

func (*InExpr) expr() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Subquery *SelectStmt
	Not      bool
}

func (*ExistsExpr) expr() {}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Select *SelectStmt }

func (*SubqueryExpr) expr() {}

// QuantifiedExpr is expr op ANY|SOME|ALL (subquery). ANY/SOME is All=false.
type QuantifiedExpr struct {
	Op       BinOp
	E        Expr
	Subquery *SelectStmt
	All      bool
}

func (*QuantifiedExpr) expr() {}

// BetweenExpr is expr [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
}

func (*BetweenExpr) expr() {}

// LikeExpr is expr [NOT] LIKE pattern.
type LikeExpr struct {
	E, Pattern Expr
	Not        bool
}

func (*LikeExpr) expr() {}

// CastExpr is CAST(expr AS type).
type CastExpr struct {
	E        Expr
	TypeName string
}

func (*CastExpr) expr() {}
