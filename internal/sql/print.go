package sql

import (
	"fmt"
	"strings"
)

// FormatStatement renders a statement back to SQL text. The output parses to
// an equivalent AST (round-trip property tested in parser_test.go).
func FormatStatement(st Statement) string {
	var b strings.Builder
	formatStatement(&b, st)
	return b.String()
}

// FormatExpr renders an expression to SQL text.
func FormatExpr(e Expr) string {
	var b strings.Builder
	formatExpr(&b, e)
	return b.String()
}

func formatStatement(b *strings.Builder, st Statement) {
	switch s := st.(type) {
	case *SelectStmt:
		formatSelect(b, s)
	case *CreateTableStmt:
		b.WriteString("CREATE TABLE ")
		b.WriteString(quoteIdent(s.Name))
		if s.AsSelect != nil {
			b.WriteString(" AS ")
			formatSelect(b, s.AsSelect)
			return
		}
		b.WriteString(" (")
		for i, c := range s.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteIdent(c.Name))
			b.WriteByte(' ')
			b.WriteString(c.TypeName)
			if c.NotNull {
				b.WriteString(" NOT NULL")
			}
		}
		b.WriteString(")")
	case *CreateViewStmt:
		b.WriteString("CREATE VIEW ")
		b.WriteString(quoteIdent(s.Name))
		b.WriteString(" AS ")
		formatSelect(b, s.Select)
	case *DropStmt:
		b.WriteString("DROP ")
		if s.View {
			b.WriteString("VIEW ")
		} else {
			b.WriteString("TABLE ")
		}
		if s.IfExists {
			b.WriteString("IF EXISTS ")
		}
		b.WriteString(quoteIdent(s.Name))
	case *InsertStmt:
		b.WriteString("INSERT INTO ")
		b.WriteString(quoteIdent(s.Table))
		if len(s.Columns) > 0 {
			b.WriteString(" (")
			for i, c := range s.Columns {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(quoteIdent(c))
			}
			b.WriteString(")")
		}
		if s.Select != nil {
			b.WriteByte(' ')
			formatSelect(b, s.Select)
			return
		}
		b.WriteString(" VALUES ")
		for i, row := range s.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				formatExpr(b, e)
			}
			b.WriteString(")")
		}
	case *DeleteStmt:
		b.WriteString("DELETE FROM ")
		b.WriteString(quoteIdent(s.Table))
		if s.Where != nil {
			b.WriteString(" WHERE ")
			formatExpr(b, s.Where)
		}
	case *UpdateStmt:
		b.WriteString("UPDATE ")
		b.WriteString(quoteIdent(s.Table))
		b.WriteString(" SET ")
		for i, set := range s.Sets {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteIdent(set.Column))
			b.WriteString(" = ")
			formatExpr(b, set.Expr)
		}
		if s.Where != nil {
			b.WriteString(" WHERE ")
			formatExpr(b, s.Where)
		}
	case *ExplainStmt:
		b.WriteString("EXPLAIN ")
		if s.Analyze {
			b.WriteString("ANALYZE ")
		}
		formatSelect(b, s.Target)
	case *SetStmt:
		fmt.Fprintf(b, "SET %s = '%s'", s.Name, strings.ReplaceAll(s.Value, "'", "''"))
	case *ShowStmt:
		fmt.Fprintf(b, "SHOW %s", s.Name)
	case *AnalyzeStmt:
		b.WriteString("ANALYZE")
		if s.Table != "" {
			b.WriteByte(' ')
			b.WriteString(quoteIdent(s.Table))
		}
	case *BeginStmt:
		b.WriteString("BEGIN")
	case *CommitStmt:
		b.WriteString("COMMIT")
	case *RollbackStmt:
		b.WriteString("ROLLBACK")
	default:
		fmt.Fprintf(b, "/* unknown statement %T */", st)
	}
}

func formatSelect(b *strings.Builder, s *SelectStmt) {
	formatBody(b, s.Body)
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		formatExpr(b, s.Limit)
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET ")
		formatExpr(b, s.Offset)
	}
}

func formatBody(b *strings.Builder, body QueryBody) {
	switch q := body.(type) {
	case *SelectCore:
		formatCore(b, q)
	case *SetOpBody:
		needParenL := false
		if l, ok := q.Left.(*SetOpBody); ok && precOf(l.Op) < precOf(q.Op) {
			needParenL = true
		}
		if needParenL {
			b.WriteString("(")
		}
		formatBody(b, q.Left)
		if needParenL {
			b.WriteString(")")
		}
		fmt.Fprintf(b, " %s ", q.Op)
		if q.All {
			b.WriteString("ALL ")
		}
		if _, ok := q.Right.(*SetOpBody); ok {
			b.WriteString("(")
			formatBody(b, q.Right)
			b.WriteString(")")
		} else {
			formatBody(b, q.Right)
		}
	}
}

func precOf(op SetOpType) int {
	if op == Intersect {
		return 2
	}
	return 1
}

func formatCore(b *strings.Builder, c *SelectCore) {
	b.WriteString("SELECT ")
	if c.Provenance {
		b.WriteString("PROVENANCE ")
		if c.Contribution != DefaultContribution {
			fmt.Fprintf(b, "ON CONTRIBUTION (%s) ", c.Contribution)
		}
	}
	if c.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, item := range c.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case item.Star && item.TableStar == "":
			b.WriteString("*")
		case item.Star:
			b.WriteString(quoteIdent(item.TableStar))
			b.WriteString(".*")
		default:
			formatExpr(b, item.Expr)
			if item.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(quoteIdent(item.Alias))
			}
		}
	}
	if len(c.From) > 0 {
		b.WriteString(" FROM ")
		for i, te := range c.From {
			if i > 0 {
				b.WriteString(", ")
			}
			formatTableExpr(b, te)
		}
	}
	if c.Where != nil {
		b.WriteString(" WHERE ")
		formatExpr(b, c.Where)
	}
	if len(c.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range c.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			formatExpr(b, e)
		}
	}
	if c.Having != nil {
		b.WriteString(" HAVING ")
		formatExpr(b, c.Having)
	}
}

func formatProvSpec(b *strings.Builder, p ProvSpec) {
	if p.BaseRelation {
		b.WriteString(" BASERELATION")
	}
	if p.HasProvAttrs {
		b.WriteString(" PROVENANCE (")
		for i, a := range p.ProvAttrs {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteIdent(a))
		}
		b.WriteString(")")
	}
}

func formatTableExpr(b *strings.Builder, te TableExpr) {
	switch t := te.(type) {
	case *TableRef:
		b.WriteString(quoteIdent(t.Name))
		if t.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(quoteIdent(t.Alias))
		}
		formatProvSpec(b, t.Prov)
	case *SubqueryRef:
		b.WriteString("(")
		formatSelect(b, t.Select)
		b.WriteString(")")
		if t.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(quoteIdent(t.Alias))
		}
		formatProvSpec(b, t.Prov)
	case *JoinExpr:
		formatJoinSide(b, t.Left)
		b.WriteByte(' ')
		b.WriteString(t.Kind.String())
		b.WriteByte(' ')
		formatJoinSide(b, t.Right)
		if len(t.Using) > 0 {
			b.WriteString(" USING (")
			for i, u := range t.Using {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(quoteIdent(u))
			}
			b.WriteString(")")
		} else if t.On != nil {
			b.WriteString(" ON ")
			formatExpr(b, t.On)
		}
	}
}

func formatJoinSide(b *strings.Builder, te TableExpr) {
	if _, ok := te.(*JoinExpr); ok {
		b.WriteString("(")
		formatTableExpr(b, te)
		b.WriteString(")")
		return
	}
	formatTableExpr(b, te)
}

func formatExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *Literal:
		b.WriteString(x.Val.SQLLiteral())
	case *Placeholder:
		b.WriteByte('?')
	case *ColRef:
		if x.Table != "" {
			b.WriteString(quoteIdent(x.Table))
			b.WriteByte('.')
		}
		b.WriteString(quoteIdent(x.Name))
	case *BinExpr:
		b.WriteString("(")
		formatExpr(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		formatExpr(b, x.R)
		b.WriteString(")")
	case *UnaryExpr:
		switch x.Op {
		case "not":
			b.WriteString("(NOT ")
			formatExpr(b, x.E)
			b.WriteString(")")
		default:
			b.WriteString("(")
			b.WriteString(x.Op)
			formatExpr(b, x.E)
			b.WriteString(")")
		}
	case *FuncCall:
		b.WriteString(x.Name)
		b.WriteString("(")
		if x.Star {
			b.WriteString("*")
		} else {
			if x.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				formatExpr(b, a)
			}
		}
		b.WriteString(")")
	case *CaseExpr:
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteByte(' ')
			formatExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			formatExpr(b, w.Cond)
			b.WriteString(" THEN ")
			formatExpr(b, w.Result)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			formatExpr(b, x.Else)
		}
		b.WriteString(" END")
	case *IsNullExpr:
		b.WriteString("(")
		formatExpr(b, x.E)
		if x.Not {
			b.WriteString(" IS NOT NULL")
		} else {
			b.WriteString(" IS NULL")
		}
		b.WriteString(")")
	case *InExpr:
		b.WriteString("(")
		formatExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if x.Subquery != nil {
			formatSelect(b, x.Subquery)
		} else {
			for i, it := range x.List {
				if i > 0 {
					b.WriteString(", ")
				}
				formatExpr(b, it)
			}
		}
		b.WriteString("))")
	case *ExistsExpr:
		if x.Not {
			b.WriteString("(NOT ")
		}
		b.WriteString("EXISTS (")
		formatSelect(b, x.Subquery)
		b.WriteString(")")
		if x.Not {
			b.WriteString(")")
		}
	case *SubqueryExpr:
		b.WriteString("(")
		formatSelect(b, x.Select)
		b.WriteString(")")
	case *QuantifiedExpr:
		b.WriteString("(")
		formatExpr(b, x.E)
		b.WriteByte(' ')
		b.WriteString(x.Op.String())
		if x.All {
			b.WriteString(" ALL (")
		} else {
			b.WriteString(" ANY (")
		}
		formatSelect(b, x.Subquery)
		b.WriteString("))")
	case *BetweenExpr:
		b.WriteString("(")
		formatExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		formatExpr(b, x.Lo)
		b.WriteString(" AND ")
		formatExpr(b, x.Hi)
		b.WriteString(")")
	case *LikeExpr:
		b.WriteString("(")
		formatExpr(b, x.E)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		formatExpr(b, x.Pattern)
		b.WriteString(")")
	case *CastExpr:
		b.WriteString("CAST(")
		formatExpr(b, x.E)
		b.WriteString(" AS ")
		b.WriteString(x.TypeName)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "/* unknown expr %T */", e)
	}
}

// quoteIdent quotes an identifier when it is not a plain lower-case word.
func quoteIdent(s string) string {
	plain := s != ""
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c == '_':
		case (c >= '0' && c <= '9') && i > 0:
		default:
			plain = false
		}
	}
	if plain && !reservedAlias[s] {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
