package engine

import (
	"fmt"
	"time"

	"perm/internal/algebra"
	"perm/internal/executor"
	"perm/internal/sql"
	"perm/internal/storage"
	"perm/internal/value"
)

// This file is the session's streaming result surface. Provenance rewrites
// join every result tuple with its witness tuples, so rewritten results are
// routinely far wider and larger than the original query — materializing
// them (the historical Result contract) caps result size at available RAM.
// Query and Prepare expose the executor's pull-based iterator tree directly:
// columns are known up front, rows are produced one Next at a time, and the
// command tag's row count is whatever the drain actually delivered. Execute
// remains exactly what it always was — a thin drain wrapper over Query — so
// fully-buffered callers keep working unchanged.

// Rows is a streaming statement result. Columns, Schema, Rewrites and
// CacheHit are valid immediately; rows arrive through Next. For statements
// without a streaming plan (DML, DDL, SET/SHOW, EXPLAIN) the result is small
// and already complete, and Rows simply iterates it.
//
// A Rows must be fully drained or closed before the session runs its next
// statement from the same goroutine context (the executor tree holds
// operator state until then). Next/Close are single-goroutine, like the
// iterators beneath them.
type Rows struct {
	// Columns are the output column names (empty for DDL/DML).
	Columns []string
	Schema  algebra.Schema
	// Rewrites lists the provenance-rewrite decisions taken.
	Rewrites []string
	// CacheHit reports that the statement was served from the session plan
	// cache, skipping parse, analyze, rewrite and planning entirely.
	CacheHit bool

	done bool
	pos  int32 // cursor into res.Rows for materialized results

	stream  *executor.Stream // streaming SELECT plan; nil for materialized results
	res     *Result          // complete result backing non-streamed statements
	opened  time.Time
	timings Timings
	tag     string
	err     error

	// Observability plumbing (observe.go): the owning session records
	// process metrics at finish; obs carries the deep-observation state —
	// statement text, stats tree, spill baselines — and is allocated only
	// when SET trace or the slow-query log is armed, so the default path
	// keeps the pre-instrumentation Rows footprint.
	sess *Session
	obs  *rowsObs
}

// rowsObs is the deep-observation sidecar of one streamed statement,
// allocated only when SET trace is on or a slow-query threshold is set at
// open time.
type rowsObs struct {
	sqlText    string
	nparams    int
	stats      *executor.OpStats
	ectx       *executor.Context
	poolFiles0 int64
	poolBytes0 int64
	// openDur is the executor-open slice of the execute stage (blocking
	// operators' up-front work).
	openDur time.Duration
}

// materializedRows wraps an already-complete result in the Rows interface.
func materializedRows(res *Result) *Rows {
	return &Rows{
		Columns:  res.Columns,
		Schema:   res.Schema,
		Rewrites: res.Rewrites,
		CacheHit: res.CacheHit,
		res:      res,
		timings:  res.Timings,
		tag:      res.Tag,
	}
}

// Next returns the next row, or (nil, nil) at end of stream. Errors —
// including interrupt and deadline unwinds mid-stream — are sticky.
func (r *Rows) Next() (value.Row, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.stream == nil {
		if r.res == nil || int(r.pos) >= len(r.res.Rows) {
			r.done = true
			return nil, nil
		}
		row := r.res.Rows[r.pos]
		r.pos++
		return row, nil
	}
	row, err := r.stream.Next()
	if err != nil {
		r.err = err
		r.finish()
		return nil, err
	}
	if row == nil {
		r.finish()
	}
	return row, nil
}

// finish seals the result: the executor tree is released, the execute-stage
// timing stops, and the command tag is fixed from the rows actually
// delivered — drain-time row counts, not plan-time estimates.
func (r *Rows) finish() {
	if r.done {
		return
	}
	r.done = true
	if r.stream != nil {
		r.stream.Close()
		// Drop the statement's snapshot pin: the stream has delivered (or
		// abandoned) its last row, so the version vacuum may advance past it.
		r.stream.Context().Release()
		r.timings.Execute += time.Since(r.opened)
		r.tag = fmt.Sprintf("SELECT %d", r.stream.Rows())
		if r.sess != nil {
			r.sess.noteStreamDone(r)
		}
	}
}

// Close releases the result. Closing a half-read stream abandons the
// remaining rows (the tag then reflects only the delivered count). Close is
// idempotent and never blocks.
func (r *Rows) Close() error {
	r.finish()
	return nil
}

// Tag returns the command tag. For streamed SELECTs it is only final once
// the stream is exhausted or closed: "SELECT n" counts delivered rows.
func (r *Rows) Tag() string {
	if r.stream != nil && !r.done {
		return fmt.Sprintf("SELECT %d", r.stream.Rows())
	}
	return r.tag
}

// Timings reports the per-stage latencies; the execute stage accumulates
// until the stream finishes (for a network cursor it therefore spans the
// client's fetch cadence, not just CPU time).
func (r *Rows) Timings() Timings {
	if r.stream != nil && !r.done {
		t := r.timings
		t.Execute += time.Since(r.opened)
		return t
	}
	return r.timings
}

// Err returns the sticky stream error, if any.
func (r *Rows) Err() error { return r.err }

// DrainResult materializes the remaining rows into the classic Result —
// the bridge that keeps Execute's fully-buffered contract (including the
// executor row budget) on top of the streaming path.
func (r *Rows) DrainResult() (*Result, error) {
	if r.stream == nil {
		r.done = true
		return r.res, nil
	}
	rows, err := r.stream.Drain()
	if err != nil {
		r.err = err
		r.finish()
		return nil, err
	}
	r.finish()
	return &Result{
		Columns:  r.Columns,
		Schema:   r.Schema,
		Rows:     rows,
		Tag:      r.tag,
		Timings:  r.timings,
		Rewrites: r.Rewrites,
		CacheHit: r.CacheHit,
	}, nil
}

// Query runs one SQL statement and returns its result as a stream: SELECTs
// (including SELECT PROVENANCE) expose the live executor iterator tree —
// server-side memory stays bounded however large the provenance result —
// while other statements execute eagerly and replay their (small) output.
// The session plan cache works exactly as under Execute.
func (s *Session) Query(text string) (*Rows, error) {
	return s.query(text, nil, nil)
}

// query is the single execution entry: optional pre-parsed statement
// (prepared path) and optional bound parameter values.
func (s *Session) query(text string, st sql.Statement, args []value.Value) (*Rows, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("engine: session is closed")
	}
	caching := s.planCacheOn() && cacheableStatement(text)
	// One store pins the whole statement: version check, cache hit
	// execution, and the full plan pipeline all see the same store even if
	// a replica re-bootstrap swaps the database's store mid-statement.
	store := s.db.Store()
	var key, keyFingerprint string
	// Capture the schema version BEFORE planning: if concurrent DDL lands
	// mid-plan, the stored entry is tagged stale and discarded on next use.
	var schemaVersion uint64
	if caching {
		key, keyFingerprint = s.cacheKey(text, args)
		schemaVersion = store.Catalog().Version()
		if e := s.cache.get(key, schemaVersion); e != nil {
			mPlanCacheHits.Inc()
			rows, err := s.openCached(e, store, args)
			if err != nil {
				mQueryErrors.Inc()
				return nil, err
			}
			rows.sess = s
			if rows.obs != nil {
				rows.obs.sqlText, rows.obs.nparams = text, len(args)
			}
			return rows, nil
		}
		mPlanCacheMisses.Inc()
	}
	t0 := time.Now()
	if st == nil {
		var err error
		st, err = sql.Parse(text)
		if err != nil {
			mQueryErrors.Inc()
			return nil, err
		}
	}
	parseDur := time.Since(t0)
	if sel, ok := st.(*sql.SelectStmt); ok {
		rows, plan, err := s.openSelect(sel, store, args)
		if err != nil {
			mQueryErrors.Inc()
			return nil, err
		}
		rows.sess = s
		if rows.obs != nil {
			rows.obs.sqlText, rows.obs.nparams = text, len(args)
		}
		rows.timings.Parse = parseDur
		// Guard against a concurrent SET landing mid-plan on the shared
		// implicit session: the plan was built from the settings as they were
		// DURING planning, so store it only if the fingerprint still matches
		// the one embedded in the key (the settings analog of the
		// schema-version check in get).
		if caching && s.currentFingerprint() == keyFingerprint {
			s.cache.put(key, &planCacheEntry{
				plan:          plan,
				columns:       rows.Columns,
				decisions:     rows.Rewrites,
				schemaVersion: schemaVersion,
			})
		}
		return rows, nil
	}
	var spill0 int64
	if s.mem != nil {
		spill0 = s.mem.Pool().Bytes()
	}
	res, err := s.executeStatement(st, args)
	if err != nil {
		mQueryErrors.Inc()
		return nil, err
	}
	res.Timings.Parse = parseDur
	var spillBytes int64
	if s.mem != nil {
		spillBytes = s.mem.Pool().Bytes() - spill0
	}
	s.noteStatement(text, res.Timings, int64(len(res.Rows)), res.CacheHit, len(args), spillBytes)
	return materializedRows(res), nil
}

// openSelect runs the front half of the Figure 3 pipeline against the one
// pinned store and opens the executor stream, returning the live rows and
// the optimized plan for caching.
func (s *Session) openSelect(sel *sql.SelectStmt, store *storage.Store, args []value.Value) (*Rows, algebra.Op, error) {
	rows := &Rows{}
	t0 := time.Now()
	plan, decisions, rewriteDur, err := s.analyzeOn(store, sel, paramKinds(args))
	if err != nil {
		return nil, nil, err
	}
	rows.timings.Analyze = time.Since(t0)
	rows.timings.Rewrite = rewriteDur
	rows.Rewrites = decisions

	t1 := time.Now()
	plan = s.planOn(store, plan)
	rows.timings.Plan = time.Since(t1)

	ctx := s.execContextOn(store)
	ctx.Params = args
	if err := s.openStream(rows, ctx, plan); err != nil {
		ctx.Release()
		return nil, nil, err
	}
	rows.Schema = rows.stream.Schema()
	rows.Columns = rows.Schema.Names()
	return rows, plan, nil
}

// openStream opens the executor stream behind rows. When SET trace is on the
// build is instrumented; when either trace or a slow-query threshold is
// armed, the deep-observation sidecar captures spill-pool baselines and the
// open-stage timing. The default path — no trace, no threshold — does
// exactly what it did before instrumentation existed.
func (s *Session) openStream(rows *Rows, ctx *executor.Context, plan algebra.Op) error {
	trace := s.traceOn()
	if !trace && s.slowMs.Load() < 0 {
		rows.opened = time.Now()
		stream, err := executor.Open(ctx, plan)
		if err != nil {
			return err
		}
		rows.stream = stream
		return nil
	}
	obs := &rowsObs{}
	if s.mem != nil {
		p := s.mem.Pool()
		obs.poolFiles0, obs.poolBytes0 = p.Files(), p.Bytes()
	}
	rows.obs = obs
	rows.opened = time.Now()
	var stream *executor.Stream
	var err error
	if trace {
		var root *executor.OpStats
		stream, root, err = executor.OpenInstrumented(ctx, plan)
		obs.stats, obs.ectx = root, ctx
	} else {
		stream, err = executor.Open(ctx, plan)
	}
	if err != nil {
		return err
	}
	obs.openDur = time.Since(rows.opened)
	rows.stream = stream
	return nil
}

// openCached opens a stream over a previously planned statement: only the
// execute stage of the Figure 3 pipeline is paid, the rest reports zero.
func (s *Session) openCached(e *planCacheEntry, store *storage.Store, args []value.Value) (*Rows, error) {
	// Copy the decisions so callers appending to Rewrites cannot write into
	// the shared cache entry (hits may be served concurrently).
	var decisions []string
	if len(e.decisions) > 0 {
		decisions = append(make([]string, 0, len(e.decisions)), e.decisions...)
	}
	ctx := s.execContextOn(store)
	ctx.Params = args
	rows := &Rows{CacheHit: true, Rewrites: decisions}
	if err := s.openStream(rows, ctx, e.plan); err != nil {
		ctx.Release()
		return nil, err
	}
	rows.Schema = rows.stream.Schema()
	rows.Columns = e.columns
	return rows, nil
}

// paramKinds extracts the kind vector of a bound argument list — the part
// of the plan-cache key (and the analyzer's typing input) parameters
// contribute.
func paramKinds(args []value.Value) []value.Kind {
	if len(args) == 0 {
		return nil
	}
	kinds := make([]value.Kind, len(args))
	for i, v := range args {
		kinds[i] = v.K
	}
	return kinds
}

// Prepared is a server-side prepared statement: parsed once, analyzed and
// planned per distinct bound-argument kind vector (entries live in the
// session plan cache keyed on statement text + parameter kinds), executed
// with true binds — parameter values never pass through SQL text.
type Prepared struct {
	s    *Session
	text string
	st   sql.Statement
	n    int
}

// Prepare parses one statement and returns its prepared handle. `?`
// placeholders are numbered in textual order; Query/Exec bind them
// positionally.
func (s *Session) Prepare(text string) (*Prepared, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("engine: session is closed")
	}
	st, n, err := sql.ParseWithParams(text)
	if err != nil {
		return nil, err
	}
	return &Prepared{s: s, text: text, st: st, n: n}, nil
}

// NumParams reports how many `?` placeholders the statement binds.
func (p *Prepared) NumParams() int { return p.n }

// bindCheck validates the argument count.
func (p *Prepared) bindCheck(args []value.Value) error {
	if len(args) != p.n {
		return fmt.Errorf("engine: statement binds %d parameters, got %d arguments", p.n, len(args))
	}
	return nil
}

// Query executes the prepared statement with args bound, streaming the
// result.
func (p *Prepared) Query(args ...value.Value) (*Rows, error) {
	if err := p.bindCheck(args); err != nil {
		return nil, err
	}
	return p.s.query(p.text, p.st, args)
}

// Exec executes the prepared statement with args bound and drains the
// result — the materialized companion of Query, used for DML.
func (p *Prepared) Exec(args ...value.Value) (*Result, error) {
	rows, err := p.Query(args...)
	if err != nil {
		return nil, err
	}
	return rows.DrainResult()
}
