package engine

import (
	"fmt"
	"time"

	"perm/internal/algebra"
	"perm/internal/executor"
	"perm/internal/sql"
	"perm/internal/storage"
	"perm/internal/value"
)

// This file is the session's streaming result surface. Provenance rewrites
// join every result tuple with its witness tuples, so rewritten results are
// routinely far wider and larger than the original query — materializing
// them (the historical Result contract) caps result size at available RAM.
// Query and Prepare expose the executor's pull-based iterator tree directly:
// columns are known up front, rows are produced one Next at a time, and the
// command tag's row count is whatever the drain actually delivered. Execute
// remains exactly what it always was — a thin drain wrapper over Query — so
// fully-buffered callers keep working unchanged.

// Rows is a streaming statement result. Columns, Schema, Rewrites and
// CacheHit are valid immediately; rows arrive through Next. For statements
// without a streaming plan (DML, DDL, SET/SHOW, EXPLAIN) the result is small
// and already complete, and Rows simply iterates it.
//
// A Rows must be fully drained or closed before the session runs its next
// statement from the same goroutine context (the executor tree holds
// operator state until then). Next/Close are single-goroutine, like the
// iterators beneath them.
type Rows struct {
	// Columns are the output column names (empty for DDL/DML).
	Columns []string
	Schema  algebra.Schema
	// Rewrites lists the provenance-rewrite decisions taken.
	Rewrites []string
	// CacheHit reports that the statement was served from the session plan
	// cache, skipping parse, analyze, rewrite and planning entirely.
	CacheHit bool

	stream  *executor.Stream // streaming SELECT plan; nil for materialized results
	res     *Result          // complete result backing non-streamed statements
	pos     int
	opened  time.Time
	timings Timings
	done    bool
	tag     string
	err     error
}

// materializedRows wraps an already-complete result in the Rows interface.
func materializedRows(res *Result) *Rows {
	return &Rows{
		Columns:  res.Columns,
		Schema:   res.Schema,
		Rewrites: res.Rewrites,
		CacheHit: res.CacheHit,
		res:      res,
		timings:  res.Timings,
		tag:      res.Tag,
	}
}

// Next returns the next row, or (nil, nil) at end of stream. Errors —
// including interrupt and deadline unwinds mid-stream — are sticky.
func (r *Rows) Next() (value.Row, error) {
	if r.err != nil {
		return nil, r.err
	}
	if r.stream == nil {
		if r.res == nil || r.pos >= len(r.res.Rows) {
			r.done = true
			return nil, nil
		}
		row := r.res.Rows[r.pos]
		r.pos++
		return row, nil
	}
	row, err := r.stream.Next()
	if err != nil {
		r.err = err
		r.finish()
		return nil, err
	}
	if row == nil {
		r.finish()
	}
	return row, nil
}

// finish seals the result: the executor tree is released, the execute-stage
// timing stops, and the command tag is fixed from the rows actually
// delivered — drain-time row counts, not plan-time estimates.
func (r *Rows) finish() {
	if r.done {
		return
	}
	r.done = true
	if r.stream != nil {
		r.stream.Close()
		r.timings.Execute += time.Since(r.opened)
		r.tag = fmt.Sprintf("SELECT %d", r.stream.Rows())
	}
}

// Close releases the result. Closing a half-read stream abandons the
// remaining rows (the tag then reflects only the delivered count). Close is
// idempotent and never blocks.
func (r *Rows) Close() error {
	r.finish()
	return nil
}

// Tag returns the command tag. For streamed SELECTs it is only final once
// the stream is exhausted or closed: "SELECT n" counts delivered rows.
func (r *Rows) Tag() string {
	if r.stream != nil && !r.done {
		return fmt.Sprintf("SELECT %d", r.stream.Rows())
	}
	return r.tag
}

// Timings reports the per-stage latencies; the execute stage accumulates
// until the stream finishes (for a network cursor it therefore spans the
// client's fetch cadence, not just CPU time).
func (r *Rows) Timings() Timings {
	if r.stream != nil && !r.done {
		t := r.timings
		t.Execute += time.Since(r.opened)
		return t
	}
	return r.timings
}

// Err returns the sticky stream error, if any.
func (r *Rows) Err() error { return r.err }

// DrainResult materializes the remaining rows into the classic Result —
// the bridge that keeps Execute's fully-buffered contract (including the
// executor row budget) on top of the streaming path.
func (r *Rows) DrainResult() (*Result, error) {
	if r.stream == nil {
		r.done = true
		return r.res, nil
	}
	rows, err := r.stream.Drain()
	if err != nil {
		r.err = err
		r.finish()
		return nil, err
	}
	r.finish()
	return &Result{
		Columns:  r.Columns,
		Schema:   r.Schema,
		Rows:     rows,
		Tag:      r.tag,
		Timings:  r.timings,
		Rewrites: r.Rewrites,
		CacheHit: r.CacheHit,
	}, nil
}

// Query runs one SQL statement and returns its result as a stream: SELECTs
// (including SELECT PROVENANCE) expose the live executor iterator tree —
// server-side memory stays bounded however large the provenance result —
// while other statements execute eagerly and replay their (small) output.
// The session plan cache works exactly as under Execute.
func (s *Session) Query(text string) (*Rows, error) {
	return s.query(text, nil, nil)
}

// query is the single execution entry: optional pre-parsed statement
// (prepared path) and optional bound parameter values.
func (s *Session) query(text string, st sql.Statement, args []value.Value) (*Rows, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("engine: session is closed")
	}
	caching := s.planCacheOn() && cacheableStatement(text)
	// One store pins the whole statement: version check, cache hit
	// execution, and the full plan pipeline all see the same store even if
	// a replica re-bootstrap swaps the database's store mid-statement.
	store := s.db.Store()
	var key, keyFingerprint string
	// Capture the schema version BEFORE planning: if concurrent DDL lands
	// mid-plan, the stored entry is tagged stale and discarded on next use.
	var schemaVersion uint64
	if caching {
		key, keyFingerprint = s.cacheKey(text, args)
		schemaVersion = store.Catalog().Version()
		if e := s.cache.get(key, schemaVersion); e != nil {
			return s.openCached(e, store, args)
		}
	}
	t0 := time.Now()
	if st == nil {
		var err error
		st, err = sql.Parse(text)
		if err != nil {
			return nil, err
		}
	}
	parseDur := time.Since(t0)
	if sel, ok := st.(*sql.SelectStmt); ok {
		rows, plan, err := s.openSelect(sel, store, args)
		if err != nil {
			return nil, err
		}
		rows.timings.Parse = parseDur
		// Guard against a concurrent SET landing mid-plan on the shared
		// implicit session: the plan was built from the settings as they were
		// DURING planning, so store it only if the fingerprint still matches
		// the one embedded in the key (the settings analog of the
		// schema-version check in get).
		if caching && s.currentFingerprint() == keyFingerprint {
			s.cache.put(key, &planCacheEntry{
				plan:          plan,
				columns:       rows.Columns,
				decisions:     rows.Rewrites,
				schemaVersion: schemaVersion,
			})
		}
		return rows, nil
	}
	res, err := s.executeStatement(st, args)
	if err != nil {
		return nil, err
	}
	res.Timings.Parse = parseDur
	return materializedRows(res), nil
}

// openSelect runs the front half of the Figure 3 pipeline against the one
// pinned store and opens the executor stream, returning the live rows and
// the optimized plan for caching.
func (s *Session) openSelect(sel *sql.SelectStmt, store *storage.Store, args []value.Value) (*Rows, algebra.Op, error) {
	rows := &Rows{}
	t0 := time.Now()
	plan, decisions, rewriteDur, err := s.analyzeOn(store, sel, paramKinds(args))
	if err != nil {
		return nil, nil, err
	}
	rows.timings.Analyze = time.Since(t0)
	rows.timings.Rewrite = rewriteDur
	rows.Rewrites = decisions

	t1 := time.Now()
	plan = s.planOn(store, plan)
	rows.timings.Plan = time.Since(t1)

	ctx := s.execContextOn(store)
	ctx.Params = args
	rows.opened = time.Now()
	stream, err := executor.Open(ctx, plan)
	if err != nil {
		return nil, nil, err
	}
	rows.stream = stream
	rows.Schema = stream.Schema()
	rows.Columns = rows.Schema.Names()
	return rows, plan, nil
}

// openCached opens a stream over a previously planned statement: only the
// execute stage of the Figure 3 pipeline is paid, the rest reports zero.
func (s *Session) openCached(e *planCacheEntry, store *storage.Store, args []value.Value) (*Rows, error) {
	// Copy the decisions so callers appending to Rewrites cannot write into
	// the shared cache entry (hits may be served concurrently).
	var decisions []string
	if len(e.decisions) > 0 {
		decisions = append(make([]string, 0, len(e.decisions)), e.decisions...)
	}
	ctx := s.execContextOn(store)
	ctx.Params = args
	rows := &Rows{CacheHit: true, Rewrites: decisions, opened: time.Now()}
	stream, err := executor.Open(ctx, e.plan)
	if err != nil {
		return nil, err
	}
	rows.stream = stream
	rows.Schema = stream.Schema()
	rows.Columns = e.columns
	return rows, nil
}

// paramKinds extracts the kind vector of a bound argument list — the part
// of the plan-cache key (and the analyzer's typing input) parameters
// contribute.
func paramKinds(args []value.Value) []value.Kind {
	if len(args) == 0 {
		return nil
	}
	kinds := make([]value.Kind, len(args))
	for i, v := range args {
		kinds[i] = v.K
	}
	return kinds
}

// Prepared is a server-side prepared statement: parsed once, analyzed and
// planned per distinct bound-argument kind vector (entries live in the
// session plan cache keyed on statement text + parameter kinds), executed
// with true binds — parameter values never pass through SQL text.
type Prepared struct {
	s    *Session
	text string
	st   sql.Statement
	n    int
}

// Prepare parses one statement and returns its prepared handle. `?`
// placeholders are numbered in textual order; Query/Exec bind them
// positionally.
func (s *Session) Prepare(text string) (*Prepared, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("engine: session is closed")
	}
	st, n, err := sql.ParseWithParams(text)
	if err != nil {
		return nil, err
	}
	return &Prepared{s: s, text: text, st: st, n: n}, nil
}

// NumParams reports how many `?` placeholders the statement binds.
func (p *Prepared) NumParams() int { return p.n }

// bindCheck validates the argument count.
func (p *Prepared) bindCheck(args []value.Value) error {
	if len(args) != p.n {
		return fmt.Errorf("engine: statement binds %d parameters, got %d arguments", p.n, len(args))
	}
	return nil
}

// Query executes the prepared statement with args bound, streaming the
// result.
func (p *Prepared) Query(args ...value.Value) (*Rows, error) {
	if err := p.bindCheck(args); err != nil {
		return nil, err
	}
	return p.s.query(p.text, p.st, args)
}

// Exec executes the prepared statement with args bound and drains the
// result — the materialized companion of Query, used for DML.
func (p *Prepared) Exec(args ...value.Value) (*Result, error) {
	rows, err := p.Query(args...)
	if err != nil {
		return nil, err
	}
	return rows.DrainResult()
}
