package engine

import (
	"strconv"
	"time"

	"perm/internal/executor"
	"perm/internal/logx"
	"perm/internal/metrics"
)

// This file is the engine's observability surface: process-wide metrics,
// the per-query stage trace behind SET trace / SHOW last_trace, and the
// threshold slow-query log behind SET slow_query_ms / -slow-query-ms.
//
// Everything here rides the session statement path, so it behaves
// identically embedded and over the wire — SHOW last_trace against a
// permserver reads the trace of the server-side session that executed the
// traced query.

// Process-wide engine metrics. Counters are shared by every DB/session in
// the process (the test suite runs many engines at once); per-session
// numbers stay available through SHOW plan_cache_stats / memory_status.
var (
	mQueries = metrics.Default.Counter("perm_engine_queries_total",
		"Statements executed (all kinds, all sessions)")
	mQueryErrors = metrics.Default.Counter("perm_engine_query_errors_total",
		"Statements that failed (parse, plan or execution errors)")
	mQueryLatency = metrics.Default.Histogram("perm_engine_query_seconds",
		"Statement latency, parse through drain", 1e-9)
	mPlanCacheHits = metrics.Default.Counter("perm_engine_plan_cache_hits_total",
		"Plan-cache hits across all sessions")
	mPlanCacheMisses = metrics.Default.Counter("perm_engine_plan_cache_misses_total",
		"Plan-cache misses (cacheable statements that were planned)")
	mSlowQueries = metrics.Default.Counter("perm_engine_slow_queries_total",
		"Statements at or over the session slow_query_ms threshold")
	mParallelQueries = metrics.Default.Counter("perm_engine_parallel_queries_total",
		"Statements in which at least one operator fanned out to parallel workers")
	mParallelWorkers = metrics.Default.Counter("perm_engine_parallel_workers_total",
		"Parallel worker goroutines launched across all statements")
)

// Trace is the stage-level profile of the session's most recent traced
// statement (SET trace = on), retrievable with SHOW last_trace.
type Trace struct {
	SQL      string
	CacheHit bool
	Timings  Timings
	// Open is the subset of Execute spent opening the executor tree — where
	// blocking operators (sorts, hash-join builds) do their up-front work.
	// The drain phase is Execute - Open.
	Open time.Duration
	// Rows is the delivered row count (drain-time, like the command tag).
	Rows int64
	// MemPeak is the largest operator-attributed work_mem high-water mark.
	MemPeak int64
	// SpillFiles/SpillBytes are the statement's spill-pool deltas.
	SpillFiles, SpillBytes int64
	// SubplanHits/SubplanMisses count uncorrelated-subplan memoization.
	SubplanHits, SubplanMisses int64
	// ParallelOps/ParallelWorkers count operators that fanned out to
	// parallel workers and the total workers they launched (0/0 for serial
	// statements and for parallel sessions whose operators all fell back).
	ParallelOps, ParallelWorkers int64
	// Stats is the per-operator tree (the EXPLAIN ANALYZE payload).
	Stats *executor.OpStats
}

// SlowQuery is one slow-query log record. Bind values are never included —
// only their count — so logs stay free of data values from parameterized
// statements.
type SlowQuery struct {
	SQL        string
	Duration   time.Duration
	Rows       int64
	CacheHit   bool
	SpillBytes int64
	Params     int
}

// SetSlowQueryMs sets the slow-query threshold programmatically (the
// -slow-query-ms flag): statements taking >= ms log one SlowQuery record.
// 0 logs every statement; negative disables (the default).
func (s *Session) SetSlowQueryMs(ms int64) {
	s.slowMs.Store(ms)
	s.settingsMu.Lock()
	s.settings["slow_query_ms"] = strconv.FormatInt(ms, 10)
	s.fingerprint = s.computeFingerprint()
	s.settingsMu.Unlock()
}

// SetSlowQueryLog installs the slow-query sink (the network server points
// this at its structured logger). Nil restores the default stderr logger.
func (s *Session) SetSlowQueryLog(fn func(SlowQuery)) {
	s.slowSink.Store(&fn)
}

// LastTrace returns the most recent SET trace profile, or nil.
func (s *Session) LastTrace() *Trace { return s.lastTrace.Load() }

// traceOn reports whether SET trace is enabled (memoized flag, not a map
// read, because it is consulted on every statement).
func (s *Session) traceOn() bool { return s.traceFlag.Load() }

// noteStatement records one finished statement into the process metrics and
// the slow-query log. Called for every statement — streamed SELECTs at
// finish, materialized statements at execution — so the counters and the
// threshold see DML and utility statements too.
func (s *Session) noteStatement(sqlText string, t Timings, rows int64, cacheHit bool, nparams int, spillBytes int64) {
	mQueries.Inc()
	total := t.Total()
	mQueryLatency.Observe(int64(total))
	ms := s.slowMs.Load()
	if ms < 0 || total < time.Duration(ms)*time.Millisecond {
		return
	}
	mSlowQueries.Inc()
	rec := SlowQuery{
		SQL:        sqlText,
		Duration:   total,
		Rows:       rows,
		CacheHit:   cacheHit,
		SpillBytes: spillBytes,
		Params:     nparams,
	}
	if fn := s.slowSink.Load(); fn != nil && *fn != nil {
		(*fn)(rec)
		return
	}
	logx.Default.Warn("slow query",
		"duration", rec.Duration,
		"rows", rec.Rows,
		"cache_hit", rec.CacheHit,
		"spill_bytes", rec.SpillBytes,
		"params", rec.Params,
		"sql", rec.SQL,
	)
}

// noteStreamDone seals observability for one streamed statement: metrics,
// slow-query log, and — when traced — the session's last_trace. Without the
// deep-observation sidecar (no trace, no slow-query threshold at open time)
// only the process counters are touched.
func (s *Session) noteStreamDone(r *Rows) {
	if r.err != nil {
		mQueryErrors.Inc()
	}
	if r.stream != nil {
		if ectx := r.stream.Context(); ectx != nil && ectx.ParallelOps > 0 {
			mParallelQueries.Inc()
			mParallelWorkers.Add(uint64(ectx.ParallelWorkers))
		}
	}
	if r.obs == nil {
		mQueries.Inc()
		mQueryLatency.Observe(int64(r.timings.Total()))
		return
	}
	o := r.obs
	spillBytes := int64(0)
	spillFiles := int64(0)
	if s.mem != nil {
		p := s.mem.Pool()
		spillFiles = p.Files() - o.poolFiles0
		spillBytes = p.Bytes() - o.poolBytes0
	}
	rows := int64(0)
	if r.stream != nil {
		rows = int64(r.stream.Rows())
	}
	s.noteStatement(o.sqlText, r.timings, rows, r.CacheHit, o.nparams, spillBytes)
	if o.stats != nil {
		tr := &Trace{
			SQL:        o.sqlText,
			CacheHit:   r.CacheHit,
			Timings:    r.timings,
			Open:       o.openDur,
			Rows:       rows,
			SpillFiles: spillFiles,
			SpillBytes: spillBytes,
			Stats:      o.stats,
		}
		o.stats.Walk(func(n *executor.OpStats) {
			if n.MemPeak > tr.MemPeak {
				tr.MemPeak = n.MemPeak
			}
		})
		if o.ectx != nil {
			tr.SubplanHits = int64(o.ectx.SubplanHits)
			tr.SubplanMisses = int64(o.ectx.SubplanMisses)
			tr.ParallelOps = int64(o.ectx.ParallelOps)
			tr.ParallelWorkers = int64(o.ectx.ParallelWorkers)
		}
		s.lastTrace.Store(tr)
	}
}
