package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSessions runs parallel sessions over one shared database:
// writers appending to their own tables, readers running provenance queries
// over a shared table. Run under -race this guards the locking discipline of
// catalog, storage and session state.
func TestConcurrentSessions(t *testing.T) {
	db := NewDB()
	setup := db.NewSession()
	if _, err := setup.ExecuteScript(`
		CREATE TABLE shared (a int, b int);
		INSERT INTO shared VALUES (1, 10), (2, 20), (3, 30);
		ANALYZE;
	`); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession()
			table := fmt.Sprintf("private%d", w)
			if _, err := s.Execute(`CREATE TABLE ` + table + ` (x int)`); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 20; i++ {
				if _, err := s.Execute(fmt.Sprintf(`INSERT INTO %s VALUES (%d)`, table, i)); err != nil {
					errs <- err
					return
				}
			}
			res, err := s.Execute(`SELECT count(*) FROM ` + table)
			if err != nil {
				errs <- err
				return
			}
			if res.Rows[0][0].I != 20 {
				errs <- fmt.Errorf("worker %d: count = %v", w, res.Rows[0][0])
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s := db.NewSession()
			if r%2 == 0 {
				if _, err := s.Execute(`SET provenance_contribution = 'copy'`); err != nil {
					errs <- err
					return
				}
			}
			for i := 0; i < 20; i++ {
				res, err := s.Execute(`SELECT PROVENANCE a, b FROM shared WHERE a >= 1`)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 3 {
					errs <- fmt.Errorf("reader %d: rows = %d", r, len(res.Rows))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
