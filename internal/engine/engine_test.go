package engine

import (
	"strings"
	"testing"

	"perm/internal/sql"
	"perm/internal/value"
)

func session(t *testing.T) *Session {
	t.Helper()
	return NewDB().NewSession()
}

func exec(t *testing.T, s *Session, q string) *Result {
	t.Helper()
	res, err := s.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int, b text NOT NULL)`)
	res := exec(t, s, `INSERT INTO t VALUES (1, 'x'), (2, 'y')`)
	if res.Tag != "INSERT 2" {
		t.Errorf("tag = %s", res.Tag)
	}
	res = exec(t, s, `SELECT * FROM t ORDER BY a`)
	if len(res.Rows) != 2 || res.Rows[0][1].Str() != "x" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Tag != "SELECT 2" {
		t.Errorf("tag = %s", res.Tag)
	}
}

func TestInsertColumnList(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int, b text, c int)`)
	exec(t, s, `INSERT INTO t (c, a) VALUES (30, 1)`)
	res := exec(t, s, `SELECT a, b, c FROM t`)
	if res.Rows[0][0].I != 1 || !res.Rows[0][1].IsNull() || res.Rows[0][2].I != 30 {
		t.Errorf("row = %v", res.Rows[0])
	}
	if _, err := s.Execute(`INSERT INTO t (zz) VALUES (1)`); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestInsertSelect(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE src (a int)`)
	exec(t, s, `CREATE TABLE dst (a int)`)
	exec(t, s, `INSERT INTO src VALUES (1), (2), (3)`)
	res := exec(t, s, `INSERT INTO dst SELECT a * 10 FROM src WHERE a > 1`)
	if res.Tag != "INSERT 2" {
		t.Errorf("tag = %s", res.Tag)
	}
}

func TestNotNullEnforced(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int NOT NULL)`)
	if _, err := s.Execute(`INSERT INTO t VALUES (NULL)`); err == nil {
		t.Error("NOT NULL must be enforced")
	}
}

func TestDeleteUpdate(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int, b int)`)
	exec(t, s, `INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)
	res := exec(t, s, `UPDATE t SET b = b + 1 WHERE a >= 2`)
	if res.Tag != "UPDATE 2" {
		t.Errorf("tag = %s", res.Tag)
	}
	res = exec(t, s, `DELETE FROM t WHERE b = 21`)
	if res.Tag != "DELETE 1" {
		t.Errorf("tag = %s", res.Tag)
	}
	res = exec(t, s, `SELECT sum(b) FROM t`)
	if res.Rows[0][0].I != 41 {
		t.Errorf("sum = %v", res.Rows[0])
	}
}

func TestDropAndIfExists(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int)`)
	exec(t, s, `DROP TABLE t`)
	if _, err := s.Execute(`DROP TABLE t`); err == nil {
		t.Error("double drop must fail")
	}
	exec(t, s, `DROP TABLE IF EXISTS t`)
	exec(t, s, `CREATE VIEW v AS SELECT 1 AS one`)
	exec(t, s, `DROP VIEW v`)
	exec(t, s, `DROP VIEW IF EXISTS v`)
}

func TestViewLifecycle(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int)`)
	exec(t, s, `INSERT INTO t VALUES (1), (2)`)
	exec(t, s, `CREATE VIEW doubled AS SELECT a * 2 AS d FROM t`)
	res := exec(t, s, `SELECT d FROM doubled ORDER BY d`)
	if len(res.Rows) != 2 || res.Rows[1][0].I != 4 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Views see later inserts (unfolded at use).
	exec(t, s, `INSERT INTO t VALUES (5)`)
	res = exec(t, s, `SELECT count(*) FROM doubled`)
	if res.Rows[0][0].I != 3 {
		t.Errorf("count = %v", res.Rows[0])
	}
	if _, err := s.Execute(`CREATE VIEW bad AS SELECT zz FROM t`); err == nil {
		t.Error("invalid view definition must fail at CREATE")
	}
}

func TestSettingsValidation(t *testing.T) {
	s := session(t)
	exec(t, s, `SET provenance_contribution = 'copy'`)
	res := exec(t, s, `SHOW provenance_contribution`)
	if res.Rows[0][0].Str() != "copy" {
		t.Errorf("setting = %v", res.Rows[0])
	}
	if _, err := s.Execute(`SET provenance_contribution = 'bogus'`); err == nil {
		t.Error("invalid setting value must fail")
	}
	if _, err := s.Execute(`SET nonsense = 'x'`); err == nil {
		t.Error("unknown setting must fail")
	}
	if _, err := s.Execute(`SHOW nonsense`); err == nil {
		t.Error("unknown SHOW must fail")
	}
}

func TestSessionIsolation(t *testing.T) {
	db := NewDB()
	s1, s2 := db.NewSession(), db.NewSession()
	if _, err := s1.Execute(`SET optimizer = 'off'`); err != nil {
		t.Fatal(err)
	}
	if s2.Setting("optimizer") != "on" {
		t.Error("settings must be per-session")
	}
	// But data is shared.
	if _, err := s1.Execute(`CREATE TABLE shared (a int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Execute(`INSERT INTO shared VALUES (1)`); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultContributionSetting(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int, b int)`)
	exec(t, s, `INSERT INTO t VALUES (1, 2)`)
	exec(t, s, `SET provenance_contribution = 'copy'`)
	// Without ON CONTRIBUTION the session default applies: b is not copied,
	// so its provenance attribute is masked.
	res := exec(t, s, `SELECT PROVENANCE a FROM t`)
	bIdx := -1
	for i, c := range res.Columns {
		if c == "prov_public_t_b" {
			bIdx = i
		}
	}
	if bIdx < 0 {
		t.Fatalf("columns = %v", res.Columns)
	}
	if !res.Rows[0][bIdx].IsNull() {
		t.Errorf("COPY default not applied: %v", res.Rows[0])
	}
	// Explicit ON CONTRIBUTION (INFLUENCE) overrides the session default.
	res = exec(t, s, `SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) a FROM t`)
	if res.Rows[0][bIdx].IsNull() {
		t.Errorf("explicit INFLUENCE not applied: %v", res.Rows[0])
	}
}

func TestEagerProvenanceCTAS(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int, b int)`)
	exec(t, s, `INSERT INTO t VALUES (1, 10), (1, 20), (2, 30)`)
	exec(t, s, `CREATE TABLE p AS SELECT PROVENANCE sum(b), a FROM t GROUP BY a`)
	res := exec(t, s, `SELECT count(*) FROM p`)
	if res.Rows[0][0].I != 3 {
		t.Errorf("materialized witness rows = %v", res.Rows[0])
	}
	// Stored provenance is a plain table with prov_ columns.
	res = exec(t, s, `SELECT prov_public_t_b FROM p WHERE a = 1 ORDER BY 1`)
	if len(res.Rows) != 2 || res.Rows[0][0].I != 10 || res.Rows[1][0].I != 20 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestCTASDuplicateColumnNames(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int)`)
	exec(t, s, `INSERT INTO t VALUES (1)`)
	// Star over a self-join duplicates the column name "a".
	exec(t, s, `CREATE TABLE dup AS SELECT * FROM t AS x, t AS y`)
	def := s.db.Catalog().Table("dup")
	if def.Columns[0].Name == def.Columns[1].Name {
		t.Errorf("CTAS must deduplicate column names: %+v", def.Columns)
	}
}

func TestExplainStatement(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int)`)
	exec(t, s, `INSERT INTO t VALUES (1)`)
	res := exec(t, s, `EXPLAIN SELECT PROVENANCE a FROM t`)
	text := ""
	for _, row := range res.Rows {
		text += row[0].Str() + "\n"
	}
	for _, want := range []string{"Original algebra tree", "Rewritten algebra tree", "Rewritten SQL", "prov_public_t_a"} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, text)
		}
	}
	res = exec(t, s, `EXPLAIN ANALYZE SELECT a FROM t`)
	text = ""
	for _, row := range res.Rows {
		text += row[0].Str() + "\n"
	}
	if !strings.Contains(text, "Stage timings") || !strings.Contains(text, "Rows: 1") {
		t.Errorf("EXPLAIN ANALYZE output:\n%s", text)
	}
}

func TestExplainRewrittenSQLRuns(t *testing.T) {
	// The rewritten SQL shown in the browser must itself execute and produce
	// the same rows as the provenance query (round-trip through the SQL
	// generator).
	s := session(t)
	exec(t, s, `CREATE TABLE r (i int)`)
	exec(t, s, `CREATE TABLE s2 (i int)`)
	exec(t, s, `INSERT INTO r VALUES (1), (2)`)
	exec(t, s, `INSERT INTO s2 VALUES (1), (2), (3)`)
	q := `SELECT PROVENANCE r.i FROM r JOIN s2 ON r.i = s2.i`
	st, _ := sql.Parse(q)
	ex, err := s.Explain(st.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	direct := exec(t, s, q)
	roundtrip := exec(t, s, ex.RewrittenSQL)
	if len(direct.Rows) != len(roundtrip.Rows) {
		t.Fatalf("rewritten SQL returns %d rows, direct %d", len(roundtrip.Rows), len(direct.Rows))
	}
	for i := range direct.Rows {
		if direct.Rows[i].Key() != roundtrip.Rows[i].Key() {
			t.Errorf("row %d differs: %v vs %v", i, direct.Rows[i], roundtrip.Rows[i])
		}
	}
}

func TestAnalyzeStatement(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int)`)
	exec(t, s, `INSERT INTO t VALUES (1), (2)`)
	exec(t, s, `ANALYZE t`)
	if s.db.Catalog().TableStats("t").RowCount != 2 {
		t.Error("ANALYZE did not refresh stats")
	}
	exec(t, s, `ANALYZE`)
}

func TestScriptStopsOnError(t *testing.T) {
	s := session(t)
	results, err := s.ExecuteScript(`
		CREATE TABLE t (a int);
		INSERT INTO t VALUES (1);
		SELECT zz FROM t;
		INSERT INTO t VALUES (2);
	`)
	if err == nil {
		t.Fatal("script error must propagate")
	}
	if len(results) != 2 {
		t.Errorf("partial results = %d, want 2", len(results))
	}
	res := exec(t, s, `SELECT count(*) FROM t`)
	if res.Rows[0][0].I != 1 {
		t.Error("statement after error must not run")
	}
}

func TestTimingsPopulated(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int)`)
	exec(t, s, `INSERT INTO t VALUES (1)`)
	res := exec(t, s, `SELECT PROVENANCE a FROM t`)
	if res.Timings.Analyze <= 0 || res.Timings.Execute <= 0 {
		t.Errorf("timings = %+v", res.Timings)
	}
	if res.Timings.Rewrite <= 0 {
		t.Errorf("rewrite time missing: %+v", res.Timings)
	}
	if res.Timings.Total() <= 0 {
		t.Error("total must be positive")
	}
}

func TestOptimizerToggle(t *testing.T) {
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int)`)
	exec(t, s, `INSERT INTO t VALUES (1), (2), (3)`)
	exec(t, s, `SET optimizer = 'off'`)
	res := exec(t, s, `SELECT a FROM t WHERE a > 1 ORDER BY a`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestValuesKindInResult(t *testing.T) {
	s := session(t)
	res := exec(t, s, `SELECT 1 AS a, 'x' AS b, 2.5 AS c, NULL AS d, TRUE AS e`)
	kinds := []value.Kind{value.KindInt, value.KindString, value.KindFloat, value.KindNull, value.KindBool}
	for i, k := range kinds {
		if res.Rows[0][i].K != k {
			t.Errorf("column %d kind = %v, want %v", i, res.Rows[0][i].K, k)
		}
	}
}
