package engine

import (
	"sort"
	"testing"

	"perm/internal/algebra"
	"perm/internal/sql"
)

// TestRewrittenSQLGeneratorRoundTrip feeds a battery of analyzed plans
// through the algebra→SQL decompiler and re-executes the generated SQL,
// asserting multiset-equal results. This is the guarantee behind the Perm
// browser's "rewritten SQL" pane: what it displays is executable and
// equivalent.
func TestRewrittenSQLGeneratorRoundTrip(t *testing.T) {
	s := NewDB().NewSession()
	if _, err := s.ExecuteScript(logicSetup); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT n, s FROM nums WHERE n > 1`,
		`SELECT n + 1 AS succ, upper(s) FROM nums WHERE s IS NOT NULL`,
		`SELECT nums.n, pairs.b FROM nums JOIN pairs ON nums.n = pairs.a`,
		`SELECT nums.n, pairs.b FROM nums LEFT JOIN pairs ON nums.n = pairs.a`,
		`SELECT a, count(*), sum(b) FROM pairs GROUP BY a HAVING count(*) >= 1`,
		`SELECT DISTINCT a FROM pairs`,
		`SELECT a FROM pairs UNION SELECT b FROM pairs`,
		`SELECT a FROM pairs UNION ALL SELECT b FROM pairs`,
		`SELECT a FROM pairs INTERSECT SELECT b FROM pairs`,
		`SELECT a FROM pairs EXCEPT SELECT b FROM pairs`,
		`SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n DESC LIMIT 2 OFFSET 1`,
		`SELECT CASE WHEN n > 2 THEN 'big' ELSE 'small' END FROM nums WHERE n IS NOT NULL`,
		`SELECT n FROM nums WHERE s LIKE 'o%'`,
		`SELECT n FROM nums WHERE n IN (1, 2, 9)`,
		`SELECT CAST(n AS text) FROM nums WHERE n = 1`,
		`SELECT PROVENANCE n FROM nums WHERE n > 2`,
		`SELECT PROVENANCE count(*), a FROM pairs GROUP BY a`,
		`SELECT PROVENANCE a FROM pairs UNION SELECT b FROM pairs`,
	}
	for _, q := range queries {
		st, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		plan, _, _, err := s.Analyze(st.(*sql.SelectStmt))
		if err != nil {
			t.Fatalf("analyze %q: %v", q, err)
		}
		generated := algebra.ToSQL(plan)

		direct, err := s.Execute(q)
		if err != nil {
			t.Fatalf("run %q: %v", q, err)
		}
		round, err := s.Execute(generated)
		if err != nil {
			t.Errorf("generated SQL for %q does not run: %v\nSQL: %s", q, err, generated)
			continue
		}
		a, b := keysOf(direct), keysOf(round)
		if len(a) != len(b) {
			t.Errorf("%q: generated SQL returns %d rows, direct %d\nSQL: %s", q, len(b), len(a), generated)
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%q: row %d differs between direct and generated SQL", q, i)
				break
			}
		}
	}
}

func keysOf(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.Key()
	}
	sort.Strings(out)
	return out
}

// TestRuntimeErrorPropagation: failures during execution (not analysis) must
// surface as errors, not panics or silent wrong answers.
func TestRuntimeErrorPropagation(t *testing.T) {
	s := NewDB().NewSession()
	if _, err := s.ExecuteScript(logicSetup); err != nil {
		t.Fatal(err)
	}
	cases := []string{
		`SELECT 1 / (n - n) FROM nums WHERE n = 1`,           // division by zero
		`SELECT CAST(s AS int) FROM nums WHERE s = 'one'`,    // bad cast
		`SELECT n FROM nums WHERE n = (SELECT a FROM pairs)`, // scalar subquery > 1 row
		`SELECT sqrt(0 - n) FROM nums WHERE n = 4`,           // sqrt of negative
	}
	for _, q := range cases {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("query %q must fail at runtime", q)
		}
	}
	// The session must remain usable after runtime errors.
	if _, err := s.Execute(`SELECT count(*) FROM nums`); err != nil {
		t.Errorf("session unusable after runtime error: %v", err)
	}
}
