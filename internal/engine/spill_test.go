package engine

import (
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
)

// Spill-to-disk coverage at the engine layer: every blocking operator must
// produce byte-identical results with work_mem forced far below its input
// size, spill files must actually be created, and every temp file must be
// gone when the query (or session) ends.

// tinyWorkMem forces every blocking operator over budget immediately (the
// per-operator floors still guarantee forward progress).
const tinyWorkMem = 4096

// seedSpillDB builds a database whose blocking-operator inputs dwarf
// tinyWorkMem: rows with heavily duplicated keys (exercising group merges
// and stability) and distinct payloads.
func seedSpillDB(t testing.TB, rows int) *DB {
	t.Helper()
	db := NewDB()
	s := db.NewSession()
	defer s.Close()
	mustExecSpill(t, s, `CREATE TABLE big (k int, v int, s text)`)
	mustExecSpill(t, s, `CREATE TABLE other (k int, v int, s text)`)
	rng := rand.New(rand.NewSource(7))
	insertBatch := func(table string, n, off int) {
		var b strings.Builder
		fmt.Fprintf(&b, "INSERT INTO %s VALUES ", table)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d, 'payload %d')", rng.Intn(50), i+off, (i+off)%97)
		}
		mustExecSpill(t, s, b.String())
	}
	for off := 0; off < rows; off += 1000 {
		n := rows - off
		if n > 1000 {
			n = 1000
		}
		insertBatch("big", n, off)
		insertBatch("other", n/2, off)
	}
	return db
}

func mustExecSpill(t testing.TB, s *Session, q string) *Result {
	t.Helper()
	res, err := s.Execute(q)
	if err != nil {
		t.Fatalf("%q: %v", q, err)
	}
	return res
}

// renderFull flattens a result including column names, so schema divergence
// is caught too.
func renderFull(res *Result) string {
	return strings.Join(res.Columns, "|") + "\n" + renderRows(res)
}

// spillSuite is the blocking-operator battery the in-memory and forced-spill
// paths must answer identically — including the queries WITHOUT an ORDER BY,
// which pin the order-preservation contract of the spill paths.
var spillSuite = []string{
	`SELECT k, v, s FROM big ORDER BY k, v DESC`,
	`SELECT k, v FROM big ORDER BY s DESC, v`,
	`SELECT k FROM big ORDER BY k`, // duplicate keys: stability visible via row multiplicity
	`SELECT k, count(*), sum(v), min(s), max(v) FROM big GROUP BY k`,
	`SELECT k, count(*), sum(v) FROM big GROUP BY k ORDER BY k`,
	`SELECT v % 701, count(DISTINCT s), avg(v) FROM big GROUP BY v % 701`,
	`SELECT count(*), count(DISTINCT k) FROM big`,
	`SELECT DISTINCT k, s FROM big`,
	`SELECT DISTINCT v % 83 FROM big`,
	`SELECT k, s FROM big INTERSECT SELECT k, s FROM other`,
	`SELECT k, v, s FROM big INTERSECT ALL SELECT k, v, s FROM other`,
	`SELECT k, s FROM big EXCEPT SELECT k, s FROM other`,
	`SELECT k, s FROM big EXCEPT ALL SELECT k, s FROM other`,
	`SELECT k, s FROM big UNION SELECT k, s FROM other`,
	`SELECT k FROM big UNION SELECT k FROM other ORDER BY k`,
}

// TestSpillDifferential runs the battery under the default (generous) budget
// and under tinyWorkMem and requires byte-identical results, that the tiny
// session really spilled, and that no temp file outlives its query.
func TestSpillDifferential(t *testing.T) {
	db := seedSpillDB(t, 4000)
	wide := db.NewSession()
	defer wide.Close()
	tiny := db.NewSession()
	defer tiny.Close()
	dir := t.TempDir()
	tiny.SetTempDir(dir)
	mustExecSpill(t, tiny, fmt.Sprintf(`SET work_mem = %d`, tinyWorkMem))

	for _, q := range spillSuite {
		want := renderFull(mustExecSpill(t, wide, q))
		got := renderFull(mustExecSpill(t, tiny, q))
		if got != want {
			t.Fatalf("forced-spill result diverged on %q:\nwant:\n%.2000s\ngot:\n%.2000s", q, want, got)
		}
		if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
			t.Fatalf("%q left %d files in temp dir (err %v)", q, len(ents), err)
		}
	}
	ms := tiny.MemStatus()
	if ms.SpillFiles == 0 || ms.SpillBytes == 0 {
		t.Fatalf("tiny session never spilled: %+v", ms)
	}
	if ws := wide.MemStatus(); ws.SpillFiles != 0 {
		t.Fatalf("wide session spilled: %+v", ws)
	}
	if ms.Tracked != 0 {
		t.Fatalf("tracked memory leaked: %d bytes after all queries drained", ms.Tracked)
	}
}

// TestSpillSortStability pins the external sort's sort.SliceStable contract:
// rows with equal keys must surface in input order, across run boundaries,
// exactly as the in-memory path orders them.
func TestSpillSortStability(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	defer s.Close()
	mustExecSpill(t, s, `CREATE TABLE dup (k int, seq int)`)
	// Many duplicates per key, inserted in ascending seq order across
	// several batches, so spill runs split key groups mid-way.
	var b strings.Builder
	seq := 0
	for batch := 0; batch < 4; batch++ {
		b.Reset()
		b.WriteString(`INSERT INTO dup VALUES `)
		for i := 0; i < 1500; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d)", seq%7, seq)
			seq++
		}
		mustExecSpill(t, s, b.String())
	}

	const q = `SELECT k, seq FROM dup ORDER BY k`
	want := renderFull(mustExecSpill(t, s, q))

	tiny := db.NewSession()
	defer tiny.Close()
	mustExecSpill(t, tiny, fmt.Sprintf(`SET work_mem = %d`, tinyWorkMem))
	got := renderFull(mustExecSpill(t, tiny, q))
	if got != want {
		t.Fatalf("external sort broke stability:\nwant:\n%.2000s\ngot:\n%.2000s", want, got)
	}
	if ms := tiny.MemStatus(); ms.SpillFiles == 0 {
		t.Fatalf("sort did not spill: %+v", ms)
	}

	// Within each key, seq must ascend — the direct statement of stability.
	res := mustExecSpill(t, tiny, q)
	lastSeq := map[int64]int64{}
	for _, row := range res.Rows {
		k, sq := row[0].Int(), row[1].Int()
		if prev, ok := lastSeq[k]; ok && sq < prev {
			t.Fatalf("key %d: seq %d after %d (input order lost)", k, sq, prev)
		}
		lastSeq[k] = sq
	}
}

// TestWorkMemSetting covers the SET/SHOW surface: validation, the
// memory_status columns, and programmatic SetWorkMem.
func TestWorkMemSetting(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	defer s.Close()

	if v := s.Setting("work_mem"); v != fmt.Sprint(DefaultWorkMem) {
		t.Fatalf("default work_mem = %q", v)
	}
	mustExecSpill(t, s, `SET work_mem = 123456`)
	if got := s.MemStatus().WorkMem; got != 123456 {
		t.Fatalf("budget after SET = %d", got)
	}
	for _, bad := range []string{`SET work_mem = -5`, `SET work_mem = banana`} {
		if _, err := s.Execute(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	res := mustExecSpill(t, s, `SHOW memory_status`)
	wantCols := "work_mem|tracked|peak|spill_files|spill_bytes|temp_dir"
	if got := strings.Join(res.Columns, "|"); got != wantCols {
		t.Fatalf("memory_status columns = %q", got)
	}
	if res.Rows[0][0].Int() != 123456 {
		t.Fatalf("memory_status work_mem = %v", res.Rows[0][0])
	}

	s.SetWorkMem(0)
	if got := s.MemStatus().WorkMem; got != 0 {
		t.Fatalf("budget after SetWorkMem(0) = %d", got)
	}
	if v := s.Setting("work_mem"); v != "0" {
		t.Fatalf("setting after SetWorkMem(0) = %q", v)
	}
}

// TestSpillCleanupOnSessionClose abandons a spilling stream mid-read and
// closes the session: Close must remove the stream's spill files.
func TestSpillCleanupOnSessionClose(t *testing.T) {
	db := seedSpillDB(t, 4000)
	s := db.NewSession()
	dir := t.TempDir()
	s.SetTempDir(dir)
	mustExecSpill(t, s, fmt.Sprintf(`SET work_mem = %d`, tinyWorkMem))

	rows, err := s.Query(`SELECT k, v, s FROM big ORDER BY s, v`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil { // the sort has spilled and merged its first row
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("expected live spill files mid-stream, got %d (err %v)", len(ents), err)
	}
	// No rows.Close(): the session teardown alone must clean up.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err = os.ReadDir(dir)
	if err != nil || len(ents) != 0 {
		t.Fatalf("session close left %d spill files (err %v)", len(ents), err)
	}
}

// TestSpill100kProvenance is the acceptance bar of the spill subsystem: with
// work_mem far below the input size, ORDER BY, GROUP BY and INTERSECT over a
// 100k-row provenance-rewritten input must complete, stay within ~2x the
// budget in peak tracked memory, and produce byte-identical output to the
// in-memory path.
func TestSpill100kProvenance(t *testing.T) {
	rows := 100_000
	if testing.Short() {
		rows = 20_000
	}
	db := seedSpillDB(t, rows)
	wide := db.NewSession()
	defer wide.Close()
	tiny := db.NewSession()
	defer tiny.Close()
	const budget = 256 << 10
	mustExecSpill(t, tiny, fmt.Sprintf(`SET work_mem = %d`, budget))

	for _, q := range []string{
		`SELECT PROVENANCE k, v, s FROM big ORDER BY v DESC, k`,
		`SELECT PROVENANCE k, count(*), sum(v), count(DISTINCT s) FROM big GROUP BY k`,
		`SELECT PROVENANCE k, s FROM big INTERSECT SELECT k, s FROM other`,
	} {
		want := renderFull(mustExecSpill(t, wide, q))
		got := renderFull(mustExecSpill(t, tiny, q))
		if got != want {
			t.Fatalf("100k forced-spill diverged on %q", q)
		}
	}
	ms := tiny.MemStatus()
	if ms.SpillFiles == 0 {
		t.Fatalf("100k run never spilled: %+v", ms)
	}
	// "~2x the budget": one over-budget detection quantum of slack on top of
	// the budget itself.
	if ms.Peak > 2*budget {
		t.Fatalf("peak tracked memory %d exceeds 2x budget (%d)", ms.Peak, 2*budget)
	}
	t.Logf("100k spill: peak=%d (budget %d), spill files=%d, spill bytes=%d", ms.Peak, budget, ms.SpillFiles, ms.SpillBytes)
}
