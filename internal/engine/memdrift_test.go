package engine

import (
	"fmt"
	"strings"
	"testing"
)

// TestWorkerErrorMidSpillNoAccountingDrift is the memory-accounting audit pin
// for SHOW memory_status under parallel statements: when a worker dies
// mid-spill — here a residual join condition that divides by zero on a
// matched pair, long after the join's build side went to disk — every
// per-worker memAcct must release exactly what it held. Any drift leaks into
// the session-shared tracker and silently shrinks every later statement's
// effective work_mem, so the test runs the failing statement repeatedly and
// asserts the tracked count returns to zero each time, at a spilling serial
// degree and a per-worker-spilling parallel degree.
func TestWorkerErrorMidSpillNoAccountingDrift(t *testing.T) {
	db := seedParallelDB(t)

	// other.v covers [0,500) ∪ [1000,1500) ∪ ... — b.v = 1200 has an
	// equi-match, so the residual condition is reached and errors there.
	// The budget sits above the ~540 KB materialized build side (so the
	// partition-wise join engages rather than falling back to serial) and
	// below coordinator-build + one worker re-charge (so each worker's
	// private join account overflows and spills through the grace path).
	const q = `SELECT b.k, o.s FROM big b JOIN other o ON b.v = o.v AND b.v / (b.v - 1200) >= 0`
	const budget = 700 << 10

	for _, deg := range []int{1, 4} {
		s := db.NewSession()
		s.SetTempDir(t.TempDir())
		mustExecSpill(t, s, fmt.Sprintf(`SET parallelism = %d`, deg))
		mustExecSpill(t, s, fmt.Sprintf(`SET work_mem = %d`, budget))

		for i := 0; i < 3; i++ {
			_, err := s.Execute(q)
			if err == nil || !strings.Contains(err.Error(), "division by zero") {
				t.Fatalf("parallelism=%d run %d: want division-by-zero error, got %v", deg, i, err)
			}
			ms := s.MemStatus()
			if ms.Tracked != 0 {
				t.Fatalf("parallelism=%d run %d: tracked bytes after failed statement = %d, want 0 (per-worker account drift)", deg, i, ms.Tracked)
			}
		}
		ms := s.MemStatus()
		if ms.SpillFiles == 0 {
			t.Fatalf("parallelism=%d: statement never spilled — the test lost its mid-spill coverage: %+v", deg, ms)
		}

		// The session must be fully usable afterwards, with the whole budget:
		// the same join without the poisoned residual answers correctly.
		res := mustExecSpill(t, s, `SELECT count(*) FROM big b JOIN other o ON b.v = o.v`)
		if res.Rows[0][0].I == 0 {
			t.Fatalf("parallelism=%d: follow-up join returned no rows", deg)
		}
		if ms := s.MemStatus(); ms.Tracked != 0 {
			t.Fatalf("parallelism=%d: tracked bytes after follow-up statement = %d, want 0", deg, ms.Tracked)
		}
		s.Close()
	}
}
