package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func txnDB(t testing.TB) (*DB, *Session) {
	t.Helper()
	db := NewDB()
	s := db.NewSession()
	t.Cleanup(func() { s.Close() })
	mustExecSpill(t, s, `CREATE TABLE acct (id int, bal int)`)
	var b strings.Builder
	b.WriteString(`INSERT INTO acct VALUES `)
	for i := 0; i < 16; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, 100)", i)
	}
	mustExecSpill(t, s, b.String())
	return db, s
}

func TestTransactionLifecycle(t *testing.T) {
	db, s := txnDB(t)
	other := db.NewSession()
	defer other.Close()

	res := mustExecSpill(t, s, `BEGIN`)
	if res.Tag != "BEGIN" {
		t.Fatalf("tag = %q", res.Tag)
	}
	mustExecSpill(t, s, `INSERT INTO acct VALUES (99, 7)`)
	mustExecSpill(t, s, `UPDATE acct SET bal = 0 WHERE id = 0`)
	mustExecSpill(t, s, `DELETE FROM acct WHERE id = 1`)

	// Read-your-writes inside the transaction — through the plain scan and
	// through the provenance rewriter.
	if got := mustExecSpill(t, s, `SELECT count(*) FROM acct`).Rows[0][0].I; got != 16 {
		t.Fatalf("in-txn count = %d, want 16 (15 survivors + 1 insert)", got)
	}
	prov := mustExecSpill(t, s, `SELECT PROVENANCE id, bal FROM acct WHERE id = 99`)
	if len(prov.Rows) != 1 || prov.Rows[0][1].I != 7 {
		t.Fatalf("provenance read of own insert: %v", prov.Rows)
	}

	// Invisible to every other session until COMMIT.
	if got := mustExecSpill(t, other, `SELECT count(*) FROM acct`).Rows[0][0].I; got != 16 {
		t.Fatalf("other session sees %d rows mid-txn, want the original 16", got)
	}

	// Statement errors inside a transaction do not abort it.
	if _, err := s.Execute(`SELECT 1/0 FROM acct`); err == nil {
		t.Fatal("division by zero succeeded")
	}
	if res := mustExecSpill(t, s, `COMMIT`); res.Tag != "COMMIT" {
		t.Fatalf("tag = %q", res.Tag)
	}
	if got := mustExecSpill(t, other, `SELECT count(*) FROM acct`).Rows[0][0].I; got != 16 {
		t.Fatalf("after commit other session sees %d rows, want 16", got)
	}
	if got := mustExecSpill(t, other, `SELECT bal FROM acct WHERE id = 0`).Rows[0][0].I; got != 0 {
		t.Fatalf("committed update not visible")
	}

	// ROLLBACK discards everything.
	mustExecSpill(t, s, `BEGIN`)
	mustExecSpill(t, s, `DELETE FROM acct`)
	if res := mustExecSpill(t, s, `ROLLBACK`); res.Tag != "ROLLBACK" {
		t.Fatalf("tag = %q", res.Tag)
	}
	if got := mustExecSpill(t, s, `SELECT count(*) FROM acct`).Rows[0][0].I; got != 16 {
		t.Fatalf("after rollback %d rows, want 16", got)
	}

	// State machine: no nesting, no finishing what is not open.
	mustExecSpill(t, s, `BEGIN`)
	if _, err := s.Execute(`BEGIN`); err == nil {
		t.Fatal("nested BEGIN succeeded")
	}
	if _, err := s.Execute(`CREATE TABLE x (a int)`); err == nil {
		t.Fatal("DDL inside a transaction succeeded")
	}
	if _, err := s.Execute(`ANALYZE acct`); err == nil {
		t.Fatal("ANALYZE inside a transaction succeeded")
	}
	mustExecSpill(t, s, `ROLLBACK`)
	if _, err := s.Execute(`COMMIT`); err == nil {
		t.Fatal("COMMIT without a transaction succeeded")
	}
	if _, err := s.Execute(`ROLLBACK`); err == nil {
		t.Fatal("ROLLBACK without a transaction succeeded")
	}

	// Every pin is released once no statement or transaction is open.
	if st := db.Store().MVCCStatus(); st.Pins != 0 {
		t.Fatalf("outstanding snapshot pins = %d, want 0", st.Pins)
	}
	ms := mustExecSpill(t, s, `SHOW mvcc_status`)
	if len(ms.Columns) != 8 || len(ms.Rows) != 1 {
		t.Fatalf("SHOW mvcc_status shape: %v", ms.Columns)
	}
}

// TestSessionCloseRollsBack pins that an abandoned transaction cannot hold
// the vacuum horizon (or half-applied effects) past its session.
func TestSessionCloseRollsBack(t *testing.T) {
	db, s := txnDB(t)
	doomed := db.NewSession()
	mustExecSpill(t, doomed, `BEGIN`)
	mustExecSpill(t, doomed, `DELETE FROM acct`)
	if st := db.Store().MVCCStatus(); st.Pins == 0 {
		t.Fatal("open transaction holds no snapshot pin")
	}
	doomed.Close()
	if st := db.Store().MVCCStatus(); st.Pins != 0 {
		t.Fatalf("pins after session close = %d, want 0", st.Pins)
	}
	if got := mustExecSpill(t, s, `SELECT count(*) FROM acct`).Rows[0][0].I; got != 16 {
		t.Fatalf("abandoned transaction leaked effects: %d rows", got)
	}
}

func TestTransactionWriteConflict(t *testing.T) {
	db, _ := txnDB(t)
	s1, s2 := db.NewSession(), db.NewSession()
	defer s1.Close()
	defer s2.Close()

	mustExecSpill(t, s1, `BEGIN`)
	mustExecSpill(t, s2, `BEGIN`)
	mustExecSpill(t, s1, `UPDATE acct SET bal = bal + 1 WHERE id = 3`)
	mustExecSpill(t, s2, `UPDATE acct SET bal = bal + 10 WHERE id = 3`)
	mustExecSpill(t, s1, `COMMIT`)
	_, err := s2.Execute(`COMMIT`)
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second committer: err = %v, want ErrWriteConflict", err)
	}
	// The losing transaction is already finished: the session is back in
	// autocommit, and none of its effects landed.
	if _, err := s2.Execute(`COMMIT`); err == nil {
		t.Fatal("COMMIT after a conflict-aborted transaction succeeded")
	}
	if got := mustExecSpill(t, s2, `SELECT bal FROM acct WHERE id = 3`).Rows[0][0].I; got != 101 {
		t.Fatalf("bal = %d, want first committer's 101", got)
	}

	// Delete/update collision conflicts the same way.
	mustExecSpill(t, s1, `BEGIN`)
	mustExecSpill(t, s2, `BEGIN`)
	mustExecSpill(t, s1, `DELETE FROM acct WHERE id = 5`)
	mustExecSpill(t, s2, `UPDATE acct SET bal = -1 WHERE id = 5`)
	mustExecSpill(t, s2, `COMMIT`)
	if _, err := s1.Execute(`COMMIT`); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("delete vs committed update: err = %v, want ErrWriteConflict", err)
	}

	// Disjoint rows never conflict.
	mustExecSpill(t, s1, `BEGIN`)
	mustExecSpill(t, s2, `BEGIN`)
	mustExecSpill(t, s1, `UPDATE acct SET bal = bal + 1 WHERE id = 7`)
	mustExecSpill(t, s2, `UPDATE acct SET bal = bal + 1 WHERE id = 8`)
	mustExecSpill(t, s1, `COMMIT`)
	mustExecSpill(t, s2, `COMMIT`)

	if st := db.Store().MVCCStatus(); st.WriteConflicts != 2 {
		t.Fatalf("write_conflicts = %d, want 2", st.WriteConflicts)
	}
	if st := db.Store().MVCCStatus(); st.Pins != 0 {
		t.Fatalf("pins = %d, want 0", st.Pins)
	}
}

// TestSnapshotReadMidStream pins the tentpole's reader guarantee: a statement
// streams exactly the rows visible at its own start, however many writers
// commit while it drains — and without blocking them.
func TestSnapshotReadMidStream(t *testing.T) {
	db, s := txnDB(t)
	writer := db.NewSession()
	defer writer.Close()

	rows, err := s.Query(`SELECT id, bal FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	// Pull a couple of rows, then wipe the table from another session: the
	// delete must neither block on the open cursor nor change its output.
	for i := 0; i < 2; i++ {
		if _, err := rows.Next(); err != nil {
			t.Fatal(err)
		}
	}
	mustExecSpill(t, writer, `DELETE FROM acct`)
	n := 2
	for {
		row, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		if row[1].I != 100 {
			t.Fatalf("mid-stream row mutated: %v", row)
		}
		n++
	}
	if n != 16 {
		t.Fatalf("snapshot stream delivered %d rows, want all 16 from its snapshot", n)
	}
	if got := mustExecSpill(t, s, `SELECT count(*) FROM acct`).Rows[0][0].I; got != 0 {
		t.Fatalf("next statement sees %d rows, want the committed 0", got)
	}
	if st := db.Store().MVCCStatus(); st.Pins != 0 {
		t.Fatalf("pins after drain = %d, want 0", st.Pins)
	}
}

func TestVacuumReclaimsDeadVersions(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	defer s.Close()
	mustExecSpill(t, s, `CREATE TABLE v (a int)`)
	mustExecSpill(t, s, `INSERT INTO v VALUES (0)`)
	for i := 0; i < 40; i++ {
		mustExecSpill(t, s, `UPDATE v SET a = a + 1`)
	}
	before := db.Store().MVCCStatus()
	if before.Versions < 41 {
		t.Fatalf("versions before vacuum = %d, want the full update chain (>= 41)", before.Versions)
	}
	removed := db.Store().Vacuum()
	after := db.Store().MVCCStatus()
	if after.Versions != 1 || after.Slots != 1 {
		t.Fatalf("after vacuum: versions=%d slots=%d, want 1/1", after.Versions, after.Slots)
	}
	if removed != before.Versions-after.Versions {
		t.Fatalf("vacuum reported %d removed, want %d", removed, before.Versions-after.Versions)
	}
	if got := mustExecSpill(t, s, `SELECT a FROM v`).Rows[0][0].I; got != 40 {
		t.Fatalf("live value after vacuum = %d, want 40", got)
	}

	// A pinned snapshot holds its versions: vacuum must not reclaim under it.
	rows, err := s.Query(`SELECT a FROM v`)
	if err != nil {
		t.Fatal(err)
	}
	mustExecSpill(t, db.NewSession(), `UPDATE v SET a = -1`)
	if db.Store().Vacuum() != 0 {
		t.Fatal("vacuum reclaimed versions under a pinned snapshot")
	}
	row, err := rows.Next()
	if err != nil || row == nil || row[0].I != 40 {
		t.Fatalf("pinned read after vacuum attempt: %v %v", row, err)
	}
	rows.Close()
	if removed := db.Store().Vacuum(); removed != 1 {
		t.Fatalf("vacuum after unpin removed %d, want 1", removed)
	}
}

// TestConcurrentWriterDifferential is the seeded concurrent-writer
// differential of the issue: writers run seeded transfer transactions with
// first-committer-wins retries while readers continuously assert snapshot
// invariants, and the final table must render byte-identical to a serial
// replay of exactly the transactions that committed. Run under -race by the
// CI MVCC concurrency step.
func TestConcurrentWriterDifferential(t *testing.T) {
	db, setup := txnDB(t)
	const (
		accounts    = 16
		writers     = 4
		txPerWriter = 30
		readers     = 2
	)
	type op struct{ a, b, d int }
	var mu sync.Mutex
	var committed []op
	conflicts := 0

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			s := db.NewSession()
			defer s.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Every snapshot must balance: transfers preserve the total,
				// so any torn read (half a transaction) breaks the sum.
				res, err := s.Execute(`SELECT sum(bal), count(*) FROM acct`)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if res.Rows[0][0].I != accounts*100 || res.Rows[0][1].I != accounts {
					t.Errorf("reader %d: torn snapshot sum=%d count=%d", r, res.Rows[0][0].I, res.Rows[0][1].I)
					return
				}
				// The provenance rewrite reads the same snapshot: each base
				// row witnesses itself, so the sum over the rewritten result
				// must balance identically.
				prov, err := s.Execute(`SELECT PROVENANCE id, bal FROM acct`)
				if err != nil {
					t.Errorf("reader %d provenance: %v", r, err)
					return
				}
				total := int64(0)
				for _, row := range prov.Rows {
					total += row[1].I
				}
				if len(prov.Rows) != accounts || total != accounts*100 {
					t.Errorf("reader %d: torn provenance snapshot sum=%d rows=%d", r, total, len(prov.Rows))
					return
				}
			}
		}(r)
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			s := db.NewSession()
			defer s.Close()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < txPerWriter; i++ {
				a := rng.Intn(accounts)
				b := (a + 1 + rng.Intn(accounts-1)) % accounts
				d := 1 + rng.Intn(5)
				for {
					if _, err := s.Execute(`BEGIN`); err != nil {
						t.Errorf("writer %d BEGIN: %v", w, err)
						return
					}
					if _, err := s.Execute(fmt.Sprintf(`UPDATE acct SET bal = bal - %d WHERE id = %d`, d, a)); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					if _, err := s.Execute(fmt.Sprintf(`UPDATE acct SET bal = bal + %d WHERE id = %d`, d, b)); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
					_, err := s.Execute(`COMMIT`)
					if err == nil {
						mu.Lock()
						committed = append(committed, op{a: a, b: b, d: d})
						mu.Unlock()
						break
					}
					// The ONLY admissible commit failure is the typed
					// conflict; anything else is a bug surfacing.
					if !errors.Is(err, ErrWriteConflict) {
						t.Errorf("writer %d COMMIT: %v (not a write conflict)", w, err)
						return
					}
					mu.Lock()
					conflicts++
					mu.Unlock()
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if t.Failed() {
		return
	}

	// Serial replay: a fresh database runs exactly the committed transfers,
	// one by one. The concurrent schedule must be indistinguishable from it.
	replayDB := NewDB()
	replay := replayDB.NewSession()
	defer replay.Close()
	mustExecSpill(t, replay, `CREATE TABLE acct (id int, bal int)`)
	var b strings.Builder
	b.WriteString(`INSERT INTO acct VALUES `)
	for i := 0; i < accounts; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, 100)", i)
	}
	mustExecSpill(t, replay, b.String())
	for _, o := range committed {
		mustExecSpill(t, replay, fmt.Sprintf(`UPDATE acct SET bal = bal - %d WHERE id = %d`, o.d, o.a))
		mustExecSpill(t, replay, fmt.Sprintf(`UPDATE acct SET bal = bal + %d WHERE id = %d`, o.d, o.b))
	}
	const q = `SELECT id, bal FROM acct ORDER BY id`
	got := renderFull(mustExecSpill(t, setup, q))
	want := renderFull(mustExecSpill(t, replay, q))
	if got != want {
		t.Fatalf("concurrent state diverges from serial replay of committed transactions:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if len(committed) != writers*txPerWriter {
		t.Fatalf("committed %d transactions, want %d", len(committed), writers*txPerWriter)
	}
	if st := db.Store().MVCCStatus(); st.Pins != 0 {
		t.Fatalf("pins after differential = %d, want 0", st.Pins)
	}
	t.Logf("committed=%d conflicts=%d (retried)", len(committed), conflicts)
}

// BenchmarkSnapshotReadUnderWrites measures reader latency while a writer
// commits continuously — the workload the retired global write gate
// serialized. Readers pin a snapshot and never wait on the writer; the
// number to watch against a gate-serialized baseline is the tail created by
// writer stalls, which no longer exists structurally.
func BenchmarkSnapshotReadUnderWrites(b *testing.B) {
	db, s := txnDB(b)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := db.NewSession()
		defer w.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := w.Execute(fmt.Sprintf(`UPDATE acct SET bal = bal + 1 WHERE id = %d`, i%16)); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Execute(`SELECT sum(bal) FROM acct`)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rows[0][0].I < 16*100 {
			b.Fatalf("snapshot sum shrank: %d", res.Rows[0][0].I)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkTxnCommit prices the transaction envelope: BEGIN + one UPDATE +
// COMMIT (snapshot pin, write buffering, first-committer-wins validation,
// version stamping) against the same UPDATE in autocommit.
func BenchmarkTxnCommit(b *testing.B) {
	db, s := txnDB(b)
	_ = db
	b.Run("autocommit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustExecSpill(b, s, `UPDATE acct SET bal = bal + 1 WHERE id = 0`)
		}
	})
	b.Run("txn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustExecSpill(b, s, `BEGIN`)
			mustExecSpill(b, s, `UPDATE acct SET bal = bal + 1 WHERE id = 0`)
			mustExecSpill(b, s, `COMMIT`)
		}
	})
}

// BenchmarkVacuum prices one vacuum pass over a table whose slots each carry
// a dead version chain — the steady-state cost the background vacuum pays.
func BenchmarkVacuum(b *testing.B) {
	db, s := txnDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 8; j++ {
			mustExecSpill(b, s, `UPDATE acct SET bal = bal + 1`)
		}
		b.StartTimer()
		db.Store().Vacuum()
	}
}
