package engine

import (
	"strings"
	"testing"
)

// sqllogic_test.go is a compact sqllogictest-style battery: each case runs a
// setup script and asserts the rendered rows of one query. It covers SQL
// surface breadth cheaply — one behavior per case.

// renderRows canonicalizes a result: one line per row, cells joined by '|'.
func renderRows(res *Result) string {
	var b strings.Builder
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

const logicSetup = `
	CREATE TABLE nums (n int, s text);
	INSERT INTO nums VALUES (1, 'one'), (2, 'two'), (3, 'three'), (4, NULL), (NULL, 'none');
	CREATE TABLE pairs (a int, b int);
	INSERT INTO pairs VALUES (1, 1), (1, 2), (2, 4), (3, 9);
`

func TestSQLLogic(t *testing.T) {
	cases := []struct {
		name  string
		query string
		want  string
	}{
		{"arith precedence", `SELECT 2 + 3 * 4`, "14"},
		{"int division", `SELECT 7 / 2`, "3"},
		{"float division", `SELECT 7.0 / 2`, "3.5"},
		{"modulo", `SELECT 7 % 3`, "1"},
		{"concat operator", `SELECT 'a' || 'b' || 'c'`, "abc"},
		{"concat null", `SELECT 'a' || NULL IS NULL`, "true"},
		{"case searched", `SELECT CASE WHEN 1 > 2 THEN 'x' ELSE 'y' END`, "y"},
		{"case operand", `SELECT CASE 2 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END`, "b"},
		{"cast text to int", `SELECT CAST('41' AS int) + 1`, "42"},
		{"between", `SELECT n FROM nums WHERE n BETWEEN 2 AND 3 ORDER BY n`, "2\n3"},
		{"not between", `SELECT n FROM nums WHERE n NOT BETWEEN 2 AND 3 ORDER BY n`, "1\n4"},
		{"like prefix", `SELECT s FROM nums WHERE s LIKE 't%' ORDER BY s`, "three\ntwo"},
		{"like underscore", `SELECT s FROM nums WHERE s LIKE '_ne' ORDER BY s`, "one"},
		{"in list", `SELECT n FROM nums WHERE n IN (1, 3, 5) ORDER BY n`, "1\n3"},
		{"is null", `SELECT s FROM nums WHERE n IS NULL`, "none"},
		{"is not null count", `SELECT count(n) FROM nums`, "4"},
		{"count star vs col", `SELECT count(*), count(n), count(s) FROM nums`, "5|4|4"},
		{"sum avg", `SELECT sum(n), avg(n) FROM nums`, "10|2.5"},
		{"min max", `SELECT min(n), max(n) FROM nums`, "1|4"},
		{"count distinct", `SELECT count(DISTINCT a) FROM pairs`, "3"},
		{"sum distinct", `SELECT sum(DISTINCT a) FROM pairs`, "6"},
		{"group by having", `SELECT a, count(*) FROM pairs GROUP BY a HAVING count(*) > 1`, "1|2"},
		{"group by expression", `SELECT n % 2, count(*) FROM nums WHERE n IS NOT NULL GROUP BY n % 2 ORDER BY 1`, "0|2\n1|2"},
		{"order by desc nulls", `SELECT n FROM nums ORDER BY n DESC`, "4\n3\n2\n1\nnull"},
		{"order by asc nulls first", `SELECT n FROM nums ORDER BY n`, "null\n1\n2\n3\n4"},
		{"limit offset", `SELECT n FROM nums WHERE n IS NOT NULL ORDER BY n LIMIT 2 OFFSET 1`, "2\n3"},
		{"distinct", `SELECT DISTINCT a FROM pairs ORDER BY a`, "1\n2\n3"},
		{"union distinct", `SELECT a FROM pairs UNION SELECT b FROM pairs ORDER BY 1`, "1\n2\n3\n4\n9"},
		{"union all count", `SELECT count(*) FROM (SELECT a FROM pairs UNION ALL SELECT b FROM pairs) AS u`, "8"},
		{"intersect", `SELECT a FROM pairs INTERSECT SELECT b FROM pairs ORDER BY 1`, "1\n2"},
		{"except", `SELECT b FROM pairs EXCEPT SELECT a FROM pairs ORDER BY 1`, "4\n9"},
		{"cross join count", `SELECT count(*) FROM nums, pairs`, "20"},
		{"inner join", `SELECT s FROM nums JOIN pairs ON nums.n = pairs.b WHERE pairs.a = 1 ORDER BY s`, "one\ntwo"},
		{"left join null pad", `SELECT nums.n, pairs.b FROM nums LEFT JOIN pairs ON nums.n = pairs.a AND pairs.b > 3 ORDER BY nums.n`, "null|null\n1|null\n2|4\n3|9\n4|null"},
		{"using join", `SELECT count(*) FROM pairs p1 JOIN pairs p2 USING (a)`, "6"},
		{"scalar subquery", `SELECT (SELECT max(b) FROM pairs)`, "9"},
		{"exists", `SELECT n FROM nums WHERE EXISTS (SELECT 1 FROM pairs WHERE pairs.a = nums.n) ORDER BY n`, "1\n2\n3"},
		{"not exists", `SELECT n FROM nums WHERE n IS NOT NULL AND NOT EXISTS (SELECT 1 FROM pairs WHERE pairs.a = nums.n)`, "4"},
		{"in subquery", `SELECT n FROM nums WHERE n IN (SELECT b FROM pairs) ORDER BY n`, "1\n2\n4"},
		{"not in with null needle", `SELECT count(*) FROM nums WHERE n NOT IN (SELECT a FROM pairs)`, "1"},
		{"correlated scalar", `SELECT n, (SELECT sum(b) FROM pairs WHERE pairs.a = nums.n) FROM nums WHERE n < 3 ORDER BY n`, "1|3\n2|4"},
		{"coalesce", `SELECT coalesce(n, 0) FROM nums ORDER BY 1`, "0\n1\n2\n3\n4"},
		{"nullif", `SELECT nullif(n, 2) FROM nums WHERE n IS NOT NULL ORDER BY n`, "1\nnull\n3\n4"},
		{"upper substr", `SELECT upper(substr(s, 1, 2)) FROM nums WHERE n = 1`, "ON"},
		{"values", `VALUES (1, 'a'), (2, 'b')`, "1|a\n2|b"},
		{"from-less select", `SELECT 1 + 1, 'x'`, "2|x"},
		{"is distinct from", `SELECT count(*) FROM nums WHERE n IS DISTINCT FROM 1`, "4"},
		{"is not distinct from null", `SELECT count(*) FROM nums WHERE n IS NOT DISTINCT FROM NULL`, "1"},
		{"any quantifier", `SELECT count(*) FROM nums WHERE n < ANY (SELECT a FROM pairs)`, "2"},
		{"all quantifier", `SELECT count(*) FROM nums WHERE n >= ALL (SELECT a FROM pairs)`, "2"},
		{"nested derived tables", `SELECT x FROM (SELECT n + 1 AS x FROM (SELECT n FROM nums WHERE n <= 2) AS i) AS o ORDER BY x`, "2\n3"},
		{"where three valued", `SELECT count(*) FROM nums WHERE n > 2 OR s = 'one'`, "3"},
		{"order by alias", `SELECT n AS k FROM nums WHERE n IS NOT NULL ORDER BY k DESC LIMIT 1`, "4"},
		{"right join null pad", `SELECT pairs.b, nums.s FROM nums RIGHT JOIN pairs ON nums.n = pairs.b ORDER BY pairs.b`, "1|one\n2|two\n4|null\n9|null"},
		{"full join", `SELECT count(*) FROM nums FULL JOIN pairs ON nums.n = pairs.a`, "6"},
		{"except all bag", `SELECT count(*) FROM (SELECT a FROM pairs EXCEPT ALL SELECT b FROM pairs) AS e`, "2"},
		{"intersect all bag", `SELECT count(*) FROM (SELECT a FROM pairs INTERSECT ALL SELECT b FROM pairs) AS i`, "2"},
		{"having without group by", `SELECT count(*) FROM pairs HAVING count(*) > 3`, "4"},
		{"having filters all", `SELECT count(*) FROM pairs HAVING count(*) > 100`, ""},
		{"group by alias", `SELECT a AS grp, count(*) FROM pairs GROUP BY grp ORDER BY grp`, "1|2\n2|1\n3|1"},
		{"aggregate of expression", `SELECT sum(b - a) FROM pairs`, "9"},
		{"order by expression", `SELECT n FROM nums WHERE n IS NOT NULL ORDER BY 0 - n`, "4\n3\n2\n1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewDB().NewSession()
			if _, err := s.ExecuteScript(logicSetup); err != nil {
				t.Fatal(err)
			}
			res, err := s.Execute(c.query)
			if err != nil {
				t.Fatalf("query %q: %v", c.query, err)
			}
			got := renderRows(res)
			if got != c.want {
				t.Errorf("query %q:\ngot:\n%s\nwant:\n%s", c.query, got, c.want)
			}
		})
	}
}

// TestSQLLogicProvenance is the same battery style for provenance queries:
// each case asserts row count and a spot-checked cell.
func TestSQLLogicProvenance(t *testing.T) {
	cases := []struct {
		name     string
		query    string
		wantRows int
	}{
		{"scan", `SELECT PROVENANCE n FROM nums`, 5},
		{"filter", `SELECT PROVENANCE n FROM nums WHERE n > 2`, 2},
		{"project expr", `SELECT PROVENANCE n * 2 FROM nums WHERE n = 1`, 1},
		{"join", `SELECT PROVENANCE s FROM nums JOIN pairs ON nums.n = pairs.a`, 4},
		{"group", `SELECT PROVENANCE count(*), a FROM pairs GROUP BY a`, 4},
		{"scalar agg", `SELECT PROVENANCE sum(b) FROM pairs`, 4},
		{"union all", `SELECT PROVENANCE a FROM pairs UNION ALL SELECT b FROM pairs`, 8},
		{"union distinct", `SELECT PROVENANCE a FROM pairs UNION SELECT b FROM pairs`, 8},
		{"distinct", `SELECT PROVENANCE DISTINCT a FROM pairs`, 4},
		{"in subquery", `SELECT PROVENANCE n FROM nums WHERE n IN (SELECT a FROM pairs)`, 4},
		{"exists", `SELECT PROVENANCE n FROM nums WHERE EXISTS (SELECT 1 FROM pairs WHERE pairs.a = nums.n)`, 4},
		{"limit", `SELECT PROVENANCE n FROM nums WHERE n IS NOT NULL ORDER BY n LIMIT 2`, 2},
		{"copy", `SELECT PROVENANCE ON CONTRIBUTION (COPY) n FROM nums`, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewDB().NewSession()
			if _, err := s.ExecuteScript(logicSetup); err != nil {
				t.Fatal(err)
			}
			res, err := s.Execute(c.query)
			if err != nil {
				t.Fatalf("query %q: %v", c.query, err)
			}
			if len(res.Rows) != c.wantRows {
				t.Errorf("query %q: %d rows, want %d\n%v", c.query, len(res.Rows), c.wantRows, res.Rows)
			}
			// Every provenance case must flag at least one provenance column.
			found := false
			for _, col := range res.Schema {
				if col.IsProv {
					found = true
				}
			}
			if !found {
				t.Errorf("query %q: no provenance columns in %v", c.query, res.Columns)
			}
		})
	}
}
