package engine

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Intra-query parallelism coverage: parallel execution must be byte-identical
// to serial across degrees, memory budgets, and provenance rewriting; workers
// must observe interrupts and deadlines promptly; and no goroutine or spill
// file may outlive its query.

// seedParallelDB extends the spill fixture with a small table for bounded
// nested-loop joins. big has 6000 rows and other 3000 — both above the
// executor's fan-out floor.
func seedParallelDB(t testing.TB) *DB {
	t.Helper()
	db := seedSpillDB(t, 6000)
	s := db.NewSession()
	defer s.Close()
	mustExecSpill(t, s, `CREATE TABLE small (w int)`)
	var b strings.Builder
	b.WriteString(`INSERT INTO small VALUES `)
	for i := 0; i < 40; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d)", i*3%40)
	}
	mustExecSpill(t, s, b.String())
	return db
}

// parallelSuite spans every parallel operator plus shapes that must fall back
// to the serial path and still agree: gather chains, partition-wise hash and
// nested-loop joins, partition-wise aggregation, DISTINCT aggregates and
// float sums (ineligible), subqueries, sorts, and provenance rewrites.
var parallelSuite = []string{
	// gather: scan/filter/project chains
	`SELECT k, v FROM big WHERE v % 3 = 0`,
	`SELECT k + v, s FROM big WHERE k < 25`,
	// partition-wise hash join
	`SELECT b.k, b.v, o.v FROM big b, other o WHERE b.v = o.v`,
	`SELECT b.k, o.s FROM big b JOIN other o ON b.v = o.v WHERE b.k % 2 = 0`,
	`SELECT b.v, o.v FROM big b LEFT JOIN other o ON b.v = o.v WHERE b.v < 500`,
	// partition-wise nested-loop and cross joins
	`SELECT b.v, sm.w FROM big b, small sm WHERE b.v % 97 < sm.w AND b.v % 11 = 0`,
	`SELECT count(*) FROM big b, small sm`,
	// partition-wise aggregation with worker-order partial merge
	`SELECT k, count(*), sum(v), min(s), max(v) FROM big GROUP BY k`,
	`SELECT k % 7, count(*), avg(v) FROM big WHERE v % 2 = 0 GROUP BY k % 7`,
	`SELECT count(*), sum(v), min(v), max(s) FROM big`,
	// serial-fallback shapes (DISTINCT aggregates, sorts, subqueries)
	`SELECT k, count(DISTINCT s) FROM big GROUP BY k`,
	`SELECT k, v FROM big ORDER BY v DESC, k LIMIT 100`,
	`SELECT DISTINCT k FROM big`,
	`SELECT k FROM big WHERE v IN (SELECT v FROM other) ORDER BY k LIMIT 50`,
	// provenance-rewritten plans through the same operators
	`SELECT PROVENANCE k, v FROM big WHERE v % 5 = 0`,
	`SELECT PROVENANCE b.k, o.v FROM big b, other o WHERE b.v = o.v`,
	`SELECT PROVENANCE k, count(*), sum(v) FROM big GROUP BY k`,
}

// TestParallelDifferential pins the headline contract: for every query in the
// suite, every (parallelism, work_mem) combination must produce bytes
// identical to the serial wide-budget run — including the forced-spill
// configurations, where parallel operators either spill per worker (joins) or
// fall back to the serial spilling path (aggregation).
func TestParallelDifferential(t *testing.T) {
	db := seedParallelDB(t)
	base := db.NewSession()
	defer base.Close()
	want := make(map[string]string, len(parallelSuite))
	for _, q := range parallelSuite {
		want[q] = renderFull(mustExecSpill(t, base, q))
	}

	for _, deg := range []int{1, 2, 8} {
		for _, tiny := range []bool{false, true} {
			name := fmt.Sprintf("parallelism=%d/tiny=%v", deg, tiny)
			t.Run(name, func(t *testing.T) {
				s := db.NewSession()
				defer s.Close()
				dir := t.TempDir()
				s.SetTempDir(dir)
				mustExecSpill(t, s, fmt.Sprintf(`SET parallelism = %d`, deg))
				if tiny {
					mustExecSpill(t, s, fmt.Sprintf(`SET work_mem = %d`, tinyWorkMem))
				}
				for _, q := range parallelSuite {
					got := renderFull(mustExecSpill(t, s, q))
					if got != want[q] {
						t.Fatalf("diverged on %q:\nwant:\n%.2000s\ngot:\n%.2000s", q, want[q], got)
					}
					if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
						t.Fatalf("%q left %d files in temp dir (err %v)", q, len(ents), err)
					}
				}
				if ms := s.MemStatus(); ms.Tracked != 0 {
					t.Fatalf("tracked memory leaked: %d bytes", ms.Tracked)
				}
			})
		}
	}
}

// TestParallelErrorAgreement: a query that fails must fail identically at
// every degree (same error text), not hang or half-succeed.
func TestParallelErrorAgreement(t *testing.T) {
	db := seedParallelDB(t)
	q := `SELECT b.v / (o.v - o.v) FROM big b, other o WHERE b.v = o.v`
	var want string
	for i, deg := range []int{1, 2, 8} {
		s := db.NewSession()
		mustExecSpill(t, s, fmt.Sprintf(`SET parallelism = %d`, deg))
		_, err := s.Execute(q)
		if err == nil {
			s.Close()
			t.Fatalf("parallelism=%d: expected division error, got success", deg)
		}
		if i == 0 {
			want = err.Error()
		} else if err.Error() != want {
			t.Fatalf("parallelism=%d error diverged:\nwant %q\ngot  %q", deg, want, err.Error())
		}
		if ms := s.MemStatus(); ms.Tracked != 0 {
			t.Fatalf("parallelism=%d leaked %d tracked bytes after error", deg, ms.Tracked)
		}
		s.Close()
	}
}

// TestParallelInterrupt arms the session kill channel mid-query: every worker
// must observe the interrupt and the statement must unwind promptly even with
// workers parked in the exchange.
func TestParallelInterrupt(t *testing.T) {
	db := seedParallelDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExecSpill(t, s, `SET parallelism = 4`)
	kill := make(chan struct{})
	s.SetInterrupt(kill)
	done := make(chan error, 1)
	go func() {
		_, err := s.Execute(`SELECT count(*) FROM big b1, big b2 WHERE b1.v + b2.v >= 0`)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	close(kill)
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "interrupted") {
			t.Fatalf("expected interrupt error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("interrupted parallel query did not unwind within 10s")
	}
	if ms := s.MemStatus(); ms.Tracked != 0 {
		t.Fatalf("interrupt leaked %d tracked bytes", ms.Tracked)
	}
}

// TestParallelDeadline: the wall-clock deadline must cancel parallel workers
// exactly as it cancels the serial loops.
func TestParallelDeadline(t *testing.T) {
	db := seedParallelDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExecSpill(t, s, `SET parallelism = 4`)
	s.SetDeadline(time.Now().Add(50 * time.Millisecond))
	defer s.SetDeadline(time.Time{})
	_, err := s.Execute(`SELECT count(*) FROM big b1, big b2 WHERE b1.v + b2.v >= 0`)
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("expected deadline interrupt, got %v", err)
	}
}

// TestParallelGoroutineLeak runs parallel queries to completion, abandons one
// mid-stream (workers parked on full exchange queues must exit through the
// quit channel), and requires the goroutine count to settle back to the
// baseline.
func TestParallelGoroutineLeak(t *testing.T) {
	db := seedParallelDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExecSpill(t, s, `SET parallelism = 8`)
	before := runtime.NumGoroutine()

	for _, q := range []string{
		`SELECT b.k, b.v, o.v FROM big b, other o WHERE b.v = o.v`,
		`SELECT k, count(*), sum(v) FROM big GROUP BY k`,
	} {
		mustExecSpill(t, s, q)
	}
	rows, err := s.Query(`SELECT k, v FROM big WHERE v % 2 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rows.Next(); err != nil {
			t.Fatal(err)
		}
	}
	rows.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestParallelJoinBuildSpillRegression is the build-side memory-bug
// regression: a hash join whose build side dwarfs work_mem must account it,
// spill, stay within ~2x the budget, and produce byte-identical rows — at
// every parallelism degree (the parallel join detects the overflow and takes
// the serial grace path).
func TestParallelJoinBuildSpillRegression(t *testing.T) {
	const budget = 131072
	db := seedParallelDB(t)
	base := db.NewSession()
	defer base.Close()
	q := `SELECT b.k, b.v, o.s FROM big b JOIN other o ON b.v = o.v`
	want := renderFull(mustExecSpill(t, base, q))
	for _, deg := range []int{1, 4} {
		s := db.NewSession()
		s.SetTempDir(t.TempDir())
		mustExecSpill(t, s, fmt.Sprintf(`SET parallelism = %d`, deg))
		mustExecSpill(t, s, fmt.Sprintf(`SET work_mem = %d`, budget))
		got := renderFull(mustExecSpill(t, s, q))
		if got != want {
			t.Fatalf("parallelism=%d: forced-spill join diverged", deg)
		}
		ms := s.MemStatus()
		if ms.SpillFiles == 0 {
			t.Fatalf("parallelism=%d: join build side never spilled: %+v", deg, ms)
		}
		if ms.Peak > 2*budget {
			t.Fatalf("parallelism=%d: peak tracked bytes %d exceed 2x budget %d", deg, ms.Peak, 2*budget)
		}
		s.Close()
	}
}

// TestParallelDistinctSpillRegression is the resident-DISTINCT memory-bug
// regression: per-group seen-sets far beyond work_mem must shed to sorted
// element runs and stay within ~2x the budget, byte-identical to the
// unbounded run.
func TestParallelDistinctSpillRegression(t *testing.T) {
	const budget = 131072
	db := NewDB()
	seed := db.NewSession()
	mustExecSpill(t, seed, `CREATE TABLE d (g int, x int)`)
	for off := 0; off < 60000; off += 1000 {
		var b strings.Builder
		b.WriteString(`INSERT INTO d VALUES `)
		for i := 0; i < 1000; i++ {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d)", (off+i)%8, off+i)
		}
		mustExecSpill(t, seed, b.String())
	}
	seed.Close()

	q := `SELECT g, count(DISTINCT x), min(x), avg(x) FROM d GROUP BY g`
	base := db.NewSession()
	defer base.Close()
	want := renderFull(mustExecSpill(t, base, q))
	for _, deg := range []int{1, 4} {
		s := db.NewSession()
		s.SetTempDir(t.TempDir())
		mustExecSpill(t, s, fmt.Sprintf(`SET parallelism = %d`, deg))
		mustExecSpill(t, s, fmt.Sprintf(`SET work_mem = %d`, budget))
		got := renderFull(mustExecSpill(t, s, q))
		if got != want {
			t.Fatalf("parallelism=%d: forced-spill DISTINCT diverged", deg)
		}
		ms := s.MemStatus()
		if ms.SpillFiles == 0 {
			t.Fatalf("parallelism=%d: DISTINCT states never spilled: %+v", deg, ms)
		}
		if ms.Peak > 2*budget {
			t.Fatalf("parallelism=%d: peak tracked bytes %d exceed 2x budget %d", deg, ms.Peak, 2*budget)
		}
		s.Close()
	}
}

// TestParallelTraceCounters drives the observability surface of a parallel
// statement the way a client would: SET trace on, run a fan-out-eligible
// query, and read SHOW last_trace — the parallel_ops/parallel_workers
// columns must be present, positionally consistent with the schema and row
// (a mismatch panics generic table renderers like permshell's), and nonzero
// exactly when the statement actually fanned out.
func TestParallelTraceCounters(t *testing.T) {
	db := seedParallelDB(t)
	s := db.NewSession()
	defer s.Close()
	mustExecSpill(t, s, `SET parallelism = 4`)
	mustExecSpill(t, s, `SET trace = on`)
	mustExecSpill(t, s, `SELECT v, v % 7 FROM big WHERE v % 3 <> 1`)
	res := mustExecSpill(t, s, `SHOW last_trace`)
	if len(res.Rows) != 1 {
		t.Fatalf("last_trace rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if len(res.Columns) != len(res.Schema) || len(row) != len(res.Columns) {
		t.Fatalf("last_trace arity mismatch: %d columns, %d schema fields, %d row cells",
			len(res.Columns), len(res.Schema), len(row))
	}
	ops := row[colIndex(t, res.Columns, "parallel_ops")].I
	workers := row[colIndex(t, res.Columns, "parallel_workers")].I
	if ops < 1 {
		t.Errorf("parallel_ops = %d, want >= 1", ops)
	}
	if workers < 2 {
		t.Errorf("parallel_workers = %d, want >= 2", workers)
	}

	// EXPLAIN ANALYZE instruments a parallel join + aggregation, so the
	// per-worker rollup is published from the join's release path too (the
	// counters must only be read after the workers are joined — this is
	// the regression surface for that ordering).
	res = mustExecSpill(t, s,
		`EXPLAIN ANALYZE SELECT b.v % 16, count(*), sum(b.v) FROM big b JOIN other o ON b.v = o.v GROUP BY b.v % 16`)
	var out strings.Builder
	for _, r := range res.Rows {
		out.WriteString(r[0].Str())
		out.WriteByte('\n')
	}
	if !strings.Contains(out.String(), "workers=") {
		t.Errorf("EXPLAIN ANALYZE of a parallel join missing workers= rollup:\n%s", out.String())
	}
}
