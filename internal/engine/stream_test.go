package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"perm/internal/value"
)

func seedStreamDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	s := db.NewSession()
	defer s.Close()
	for _, stmt := range []string{
		`CREATE TABLE t (i int, s text)`,
		`INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd'), (5, NULL)`,
	} {
		if _, err := s.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	return db
}

// TestStreamedTagAgreesWithExecute is the drain-time tag regression:
// Session.Query's "SELECT n" must count delivered rows and agree with the
// materialized Execute path for every query shape.
func TestStreamedTagAgreesWithExecute(t *testing.T) {
	db := seedStreamDB(t)
	s := db.NewSession()
	defer s.Close()

	for _, q := range []string{
		`SELECT i FROM t`,
		`SELECT i FROM t WHERE i > 3`,
		`SELECT i FROM t LIMIT 2`,
		`SELECT i FROM t WHERE i < 0`,
		`SELECT PROVENANCE i FROM t`,
		`SELECT count(*) FROM t`,
	} {
		res, err := s.Execute(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		rows, err := s.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		n := 0
		for {
			row, err := rows.Next()
			if err != nil {
				t.Fatalf("%q: %v", q, err)
			}
			if row == nil {
				break
			}
			n++
		}
		if want := fmt.Sprintf("SELECT %d", len(res.Rows)); rows.Tag() != want || res.Tag != want {
			t.Fatalf("%q: streamed tag %q, materialized tag %q, want %q", q, rows.Tag(), res.Tag, want)
		}
		if n != len(res.Rows) {
			t.Fatalf("%q: streamed %d rows, materialized %d", q, n, len(res.Rows))
		}
	}
}

// TestStreamAbandonedEarly closes a half-read stream: the tag reflects only
// the delivered rows (drain-time counting, not plan-time), and the session
// keeps working.
func TestStreamAbandonedEarly(t *testing.T) {
	db := seedStreamDB(t)
	s := db.NewSession()
	defer s.Close()

	rows, err := s.Query(`SELECT i FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Next(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rows.Tag(); got != "SELECT 2" {
		t.Fatalf("abandoned tag = %q, want SELECT 2", got)
	}
	// Idempotent close, then the session is free for the next statement.
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(`SELECT count(*) FROM t`)
	if err != nil || res.Rows[0][0].Int() != 5 {
		t.Fatalf("after abandon: %v %v", res, err)
	}
}

// TestPreparedBindsAndPlanCache exercises engine prepared statements: typed
// binds, per-kind-vector plan caching, and rebinding with different kinds.
func TestPreparedBindsAndPlanCache(t *testing.T) {
	db := seedStreamDB(t)
	s := db.NewSession()
	defer s.Close()

	prep, err := s.Prepare(`SELECT i, s FROM t WHERE i >= ? ORDER BY i`)
	if err != nil {
		t.Fatal(err)
	}
	if prep.NumParams() != 1 {
		t.Fatalf("NumParams = %d", prep.NumParams())
	}
	res, err := prep.Exec(value.NewInt(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tag != "SELECT 2" || res.CacheHit {
		t.Fatalf("first bind: tag=%q cacheHit=%v", res.Tag, res.CacheHit)
	}
	// Same kind vector: plan-cache hit.
	res, err = prep.Exec(value.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tag != "SELECT 4" || !res.CacheHit {
		t.Fatalf("second bind: tag=%q cacheHit=%v, want hit", res.Tag, res.CacheHit)
	}
	// A float argument is a different kind vector: re-planned, not served
	// from the int-typed entry.
	res, err = prep.Exec(value.NewFloat(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tag != "SELECT 3" || res.CacheHit {
		t.Fatalf("float bind: tag=%q cacheHit=%v, want miss", res.Tag, res.CacheHit)
	}

	// Wrong arity is rejected before execution.
	if _, err := prep.Exec(); err == nil || !strings.Contains(err.Error(), "binds 1 parameters") {
		t.Fatalf("arity error = %v", err)
	}

	// An unbound placeholder in plain Execute is a statement error, not a
	// crash.
	if _, err := s.Execute(`SELECT i FROM t WHERE i = ?`); err == nil ||
		!strings.Contains(err.Error(), "parameter $1") {
		t.Fatalf("unbound placeholder error = %v", err)
	}
}

// TestPreparedDMLBinds binds parameters through INSERT, UPDATE and DELETE.
func TestPreparedDMLBinds(t *testing.T) {
	db := seedStreamDB(t)
	s := db.NewSession()
	defer s.Close()

	ins, err := s.Prepare(`INSERT INTO t VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := ins.Exec(value.NewInt(6), value.NewString("f")); err != nil || res.Tag != "INSERT 1" {
		t.Fatalf("insert binds: %v %v", res, err)
	}
	up, err := s.Prepare(`UPDATE t SET s = ? WHERE i = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := up.Exec(value.NewString("bound"), value.NewInt(6)); err != nil || res.Tag != "UPDATE 1" {
		t.Fatalf("update binds: %v %v", res, err)
	}
	del, err := s.Prepare(`DELETE FROM t WHERE s = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := del.Exec(value.NewString("bound")); err != nil || res.Tag != "DELETE 1" {
		t.Fatalf("delete binds: %v %v", res, err)
	}
	if res, err := s.Execute(`SELECT count(*) FROM t`); err != nil || res.Rows[0][0].Int() != 5 {
		t.Fatalf("final count: %v %v", res, err)
	}
}

// TestStreamInterruptMidDrain cancels a session mid-stream: Next must
// unwind with the interrupt error instead of producing further rows.
func TestStreamInterruptMidDrain(t *testing.T) {
	db := seedStreamDB(t)
	s := db.NewSession()
	defer s.Close()

	// A cross join large enough that the interrupt poll (every 256 rows)
	// fires long before exhaustion.
	big := db.NewSession()
	defer big.Close()
	if _, err := big.Execute(`INSERT INTO t SELECT i + 10, s FROM t`); err != nil {
		t.Fatal(err)
	}

	s.SetDeadline(time.Now().Add(-time.Second)) // already expired
	rows, err := s.Query(`SELECT a.i FROM t a, t b, t c, t d`)
	if err == nil {
		// The deadline may fire at open or at first poll; drain until it does.
		for {
			row, nerr := rows.Next()
			if nerr != nil {
				err = nerr
				break
			}
			if row == nil {
				t.Fatal("expired deadline never interrupted the stream")
			}
		}
	}
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupt", err)
	}
	s.SetDeadline(time.Time{})
}
