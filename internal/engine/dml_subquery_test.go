package engine

import (
	"testing"
	"time"
)

// Self-referential DML: a WHERE subquery (or SET expression) that scans the
// table being mutated must not deadlock — the mutation's decision phase runs
// outside the table lock. Regression test for the two-phase
// storage.Table.Delete/Update.
func TestDMLSubqueryOnSameTable(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	defer s.Close()
	mustExec := func(q string) *Result {
		t.Helper()
		res, err := s.Execute(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return res
	}
	mustExec(`CREATE TABLE t (id int, v int)`)
	mustExec(`INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)

	type outcome struct {
		tag string
		err error
	}
	run := func(q string) outcome {
		done := make(chan outcome, 1)
		go func() {
			res, err := s.Execute(q)
			var tag string
			if res != nil {
				tag = res.Tag
			}
			done <- outcome{tag: tag, err: err}
		}()
		select {
		case o := <-done:
			return o
		case <-time.After(10 * time.Second):
			t.Fatalf("statement deadlocked: %s", q)
			return outcome{}
		}
	}

	// DELETE whose subquery scans the same table.
	o := run(`DELETE FROM t WHERE id IN (SELECT id FROM t WHERE v >= 30)`)
	if o.err != nil || o.tag != "DELETE 1" {
		t.Fatalf("self-referential DELETE: tag=%q err=%v", o.tag, o.err)
	}
	// UPDATE whose predicate and SET expression both read the same table.
	o = run(`UPDATE t SET v = (SELECT max(v) FROM t) WHERE id IN (SELECT min(id) FROM t)`)
	if o.err != nil || o.tag != "UPDATE 1" {
		t.Fatalf("self-referential UPDATE: tag=%q err=%v", o.tag, o.err)
	}
	res := mustExec(`SELECT id, v FROM t ORDER BY id`)
	if len(res.Rows) != 2 || res.Rows[0][1].Int() != 20 || res.Rows[1][1].Int() != 20 {
		t.Fatalf("rows after self-referential DML: %v", res.Rows)
	}
}
