// Package engine ties the Perm pipeline together, mirroring Figure 3 of the
// paper: Parser & Analyzer → Provenance Rewriter → Planner → Executor. It
// owns the storage engine, dispatches DDL/DML, manages session settings
// (contribution semantics, rewrite strategies, optimizer toggles), measures
// per-stage timings, and implements eager provenance via CREATE TABLE AS
// SELECT PROVENANCE.
package engine

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"perm/internal/algebra"
	"perm/internal/analyzer"
	"perm/internal/catalog"
	"perm/internal/core"
	"perm/internal/executor"
	"perm/internal/planner"
	"perm/internal/sql"
	"perm/internal/storage"
	"perm/internal/value"
)

// DB is a Perm database instance: storage plus catalog. It is safe for use
// from multiple sessions.
type DB struct {
	store *storage.Store
	// ddlMu serializes DDL so CREATE TABLE + heap allocation stay atomic
	// relative to other DDL.
	ddlMu sync.Mutex
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{store: storage.NewStore()}
}

// Store exposes the storage engine (tools and tests).
func (db *DB) Store() *storage.Store { return db.store }

// Catalog exposes the schema registry.
func (db *DB) Catalog() *catalog.Catalog { return db.store.Catalog() }

// NewSession opens a session with default settings.
func (db *DB) NewSession() *Session {
	return &Session{
		db: db,
		settings: map[string]string{
			"provenance_contribution":      "influence",
			"provenance_strategy":          "heuristic",
			"provenance_agg_strategy":      "auto",
			"provenance_set_strategy":      "auto",
			"provenance_distinct_strategy": "auto",
			"optimizer":                    "on",
			"provenance_schema_name":       "public",
		},
	}
}

// Session is a single-user connection with its own settings.
type Session struct {
	db       *DB
	settings map[string]string
}

// Timings records the per-stage latency of one statement — the observable
// version of the Figure 3 architecture.
type Timings struct {
	Parse   time.Duration
	Analyze time.Duration // includes provenance rewriting (Perm module)
	Rewrite time.Duration // time inside the provenance rewriter only
	Plan    time.Duration
	Execute time.Duration
}

// Total sums the stages.
func (t Timings) Total() time.Duration {
	return t.Parse + t.Analyze + t.Plan + t.Execute
}

// Result is the outcome of one statement.
type Result struct {
	// Columns are the output column names (empty for DDL/DML).
	Columns []string
	Schema  algebra.Schema
	Rows    []value.Row
	// Tag is the command tag, e.g. "SELECT 4", "INSERT 2", "CREATE TABLE".
	Tag string
	// Timings holds the per-stage latencies.
	Timings Timings
	// Rewrites lists the provenance-rewrite decisions taken (strategy
	// choices, de-correlations), for EXPLAIN and the browser.
	Rewrites []string
}

// Execute runs a single SQL statement.
func (s *Session) Execute(text string) (*Result, error) {
	t0 := time.Now()
	st, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	parseDur := time.Since(t0)
	res, err := s.ExecuteStatement(st)
	if err != nil {
		return nil, err
	}
	res.Timings.Parse = parseDur
	return res, nil
}

// ExecuteScript runs a semicolon-separated script, stopping at the first
// error. It returns one result per statement.
func (s *Session) ExecuteScript(text string) ([]*Result, error) {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for i, st := range stmts {
		res, err := s.ExecuteStatement(st)
		if err != nil {
			return out, fmt.Errorf("statement %d: %v", i+1, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// ExecuteStatement runs a parsed statement.
func (s *Session) ExecuteStatement(st sql.Statement) (*Result, error) {
	switch x := st.(type) {
	case *sql.SelectStmt:
		return s.runSelect(x)
	case *sql.CreateTableStmt:
		return s.runCreateTable(x)
	case *sql.CreateViewStmt:
		return s.runCreateView(x)
	case *sql.DropStmt:
		return s.runDrop(x)
	case *sql.InsertStmt:
		return s.runInsert(x)
	case *sql.DeleteStmt:
		return s.runDelete(x)
	case *sql.UpdateStmt:
		return s.runUpdate(x)
	case *sql.ExplainStmt:
		return s.runExplain(x)
	case *sql.SetStmt:
		return s.runSet(x)
	case *sql.ShowStmt:
		return s.runShow(x)
	case *sql.AnalyzeStmt:
		if err := s.db.store.Analyze(x.Table); err != nil {
			return nil, err
		}
		return &Result{Tag: "ANALYZE"}, nil
	}
	return nil, fmt.Errorf("unsupported statement %T", st)
}

// rewriterOptions builds core.Options from the session settings.
func (s *Session) rewriterOptions(defaultSem sql.ContributionSemantics) core.Options {
	opts := core.DefaultOptions()
	opts.SchemaName = s.settings["provenance_schema_name"]
	switch defaultSem {
	case sql.Copy:
		opts.Semantics = core.CopySemantics
	case sql.CopyComplete:
		opts.Semantics = core.CopyCompleteSemantics
	case sql.Influence:
		opts.Semantics = core.InfluenceSemantics
	default:
		switch s.settings["provenance_contribution"] {
		case "copy":
			opts.Semantics = core.CopySemantics
		case "copycomplete":
			opts.Semantics = core.CopyCompleteSemantics
		}
	}
	if s.settings["provenance_strategy"] == "cost" {
		opts.Mode = core.ModeCost
		pl := planner.New(s.db.Catalog())
		opts.Estimator = func(op algebra.Op) float64 { return pl.EstimateRows(op) }
	}
	switch s.settings["provenance_agg_strategy"] {
	case "joingroup":
		opts.Agg, opts.AggForced = core.AggJoinGroup, true
	case "crossfilter":
		opts.Agg, opts.AggForced = core.AggCrossFilter, true
	}
	switch s.settings["provenance_set_strategy"] {
	case "pad":
		opts.Set, opts.SetForced = core.SetPad, true
	case "join":
		opts.Set, opts.SetForced = core.SetJoin, true
	}
	switch s.settings["provenance_distinct_strategy"] {
	case "pass":
		opts.Distinct, opts.DistinctForced = core.DistinctPass, true
	case "join":
		opts.Distinct, opts.DistinctForced = core.DistinctJoin, true
	}
	return opts
}

// Analyze resolves a query to an executable plan, running the provenance
// rewriter for SELECT PROVENANCE blocks. It returns the plan, the rewrite
// decisions, and the time spent in the rewriter.
func (s *Session) Analyze(sel *sql.SelectStmt) (algebra.Op, []string, time.Duration, error) {
	an := analyzer.New(s.db.Catalog())
	var decisions []string
	var rewriteDur time.Duration
	an.Rewrite = func(req analyzer.ProvRequest) (algebra.Op, error) {
		t0 := time.Now()
		rw := core.NewRewriter(s.rewriterOptions(req.Contribution))
		out, err := rw.Rewrite(req.Input)
		rewriteDur += time.Since(t0)
		decisions = append(decisions, rw.Decisions...)
		return out, err
	}
	plan, err := an.AnalyzeSelect(sel)
	if err != nil {
		return nil, nil, 0, err
	}
	return plan, decisions, rewriteDur, nil
}

// AnalyzeOriginal resolves a query ignoring SELECT PROVENANCE markers (the
// browser's "original algebra tree" pane).
func (s *Session) AnalyzeOriginal(sel *sql.SelectStmt) (algebra.Op, error) {
	an := analyzer.New(s.db.Catalog())
	an.StripProvenance = true
	return an.AnalyzeSelect(sel)
}

// Plan optimizes a resolved plan per the session's optimizer setting.
func (s *Session) Plan(op algebra.Op) algebra.Op {
	if s.settings["optimizer"] == "off" {
		return op
	}
	return planner.New(s.db.Catalog()).Optimize(op)
}

func (s *Session) runSelect(sel *sql.SelectStmt) (*Result, error) {
	res := &Result{}
	t0 := time.Now()
	plan, decisions, rewriteDur, err := s.Analyze(sel)
	if err != nil {
		return nil, err
	}
	res.Timings.Analyze = time.Since(t0)
	res.Timings.Rewrite = rewriteDur
	res.Rewrites = decisions

	t1 := time.Now()
	plan = s.Plan(plan)
	res.Timings.Plan = time.Since(t1)

	t2 := time.Now()
	out, err := executor.Run(executor.NewContext(s.db.store), plan)
	if err != nil {
		return nil, err
	}
	res.Timings.Execute = time.Since(t2)
	res.Schema = out.Schema
	res.Columns = out.Schema.Names()
	res.Rows = out.Rows
	res.Tag = fmt.Sprintf("SELECT %d", len(out.Rows))
	return res, nil
}

func (s *Session) runCreateTable(ct *sql.CreateTableStmt) (*Result, error) {
	s.db.ddlMu.Lock()
	defer s.db.ddlMu.Unlock()
	if ct.AsSelect != nil {
		// Eager provenance: CREATE TABLE p AS SELECT PROVENANCE ... stores
		// the provenance relation for later querying.
		sub, err := s.runSelect(ct.AsSelect)
		if err != nil {
			return nil, err
		}
		def := &catalog.TableDef{Name: ct.Name}
		used := map[string]int{}
		for _, col := range sub.Schema {
			name := strings.ToLower(col.Name)
			if name == "" {
				name = "column"
			}
			if n := used[name]; n > 0 {
				used[name] = n + 1
				name = fmt.Sprintf("%s_%d", name, n)
			} else {
				used[name] = 1
			}
			typ := col.Type
			if typ == value.KindNull {
				typ = value.KindString
			}
			def.Columns = append(def.Columns, catalog.Column{Name: name, Type: typ})
		}
		table, err := s.db.store.CreateTable(def)
		if err != nil {
			return nil, err
		}
		if _, err := table.InsertBatch(sub.Rows); err != nil {
			_ = s.db.store.DropTable(ct.Name)
			return nil, err
		}
		s.db.Catalog().SetRowCount(ct.Name, len(sub.Rows))
		return &Result{Tag: fmt.Sprintf("SELECT %d", len(sub.Rows)), Timings: sub.Timings}, nil
	}
	def := &catalog.TableDef{Name: ct.Name}
	for _, c := range ct.Columns {
		kind, err := value.KindFromTypeName(c.TypeName)
		if err != nil {
			return nil, err
		}
		def.Columns = append(def.Columns, catalog.Column{Name: c.Name, Type: kind, NotNull: c.NotNull})
	}
	if _, err := s.db.store.CreateTable(def); err != nil {
		return nil, err
	}
	return &Result{Tag: "CREATE TABLE"}, nil
}

func (s *Session) runCreateView(cv *sql.CreateViewStmt) (*Result, error) {
	s.db.ddlMu.Lock()
	defer s.db.ddlMu.Unlock()
	// Validate the defining query now (including provenance blocks).
	plan, _, _, err := s.Analyze(cv.Select)
	if err != nil {
		return nil, fmt.Errorf("invalid view definition: %v", err)
	}
	var cols []catalog.Column
	for _, c := range plan.Schema() {
		cols = append(cols, catalog.Column{Name: c.Name, Type: c.Type})
	}
	err = s.db.Catalog().CreateView(&catalog.ViewDef{Name: cv.Name, Text: cv.Text, Columns: cols})
	if err != nil {
		return nil, err
	}
	return &Result{Tag: "CREATE VIEW"}, nil
}

func (s *Session) runDrop(d *sql.DropStmt) (*Result, error) {
	s.db.ddlMu.Lock()
	defer s.db.ddlMu.Unlock()
	var err error
	if d.View {
		err = s.db.Catalog().DropView(d.Name)
	} else {
		err = s.db.store.DropTable(d.Name)
	}
	if err != nil {
		if d.IfExists {
			return &Result{Tag: "DROP"}, nil
		}
		return nil, err
	}
	return &Result{Tag: "DROP"}, nil
}

func (s *Session) runInsert(ins *sql.InsertStmt) (*Result, error) {
	table := s.db.store.Table(ins.Table)
	if table == nil {
		return nil, fmt.Errorf("table %q does not exist", ins.Table)
	}
	def := table.Def()
	// Map the column list.
	target := make([]int, 0, len(def.Columns))
	if len(ins.Columns) == 0 {
		for i := range def.Columns {
			target = append(target, i)
		}
	} else {
		for _, name := range ins.Columns {
			idx := def.ColumnIndex(name)
			if idx < 0 {
				return nil, fmt.Errorf("column %q of table %q does not exist", name, ins.Table)
			}
			target = append(target, idx)
		}
	}

	var rows []value.Row
	if ins.Select != nil {
		sub, err := s.runSelect(ins.Select)
		if err != nil {
			return nil, err
		}
		if len(sub.Schema) != len(target) {
			return nil, fmt.Errorf("INSERT expects %d columns, query returns %d", len(target), len(sub.Schema))
		}
		rows = sub.Rows
	} else {
		an := analyzer.New(s.db.Catalog())
		ctx := executor.NewContext(s.db.store)
		for i, exprRow := range ins.Rows {
			if len(exprRow) != len(target) {
				return nil, fmt.Errorf("row %d has %d values, expected %d", i+1, len(exprRow), len(target))
			}
			row := make(value.Row, len(exprRow))
			for j, e := range exprRow {
				re, err := an.AnalyzeExpr(e, algebra.Schema{})
				if err != nil {
					return nil, err
				}
				v, err := executor.Eval(re, nil, ctx)
				if err != nil {
					return nil, err
				}
				row[j] = v
			}
			rows = append(rows, row)
		}
	}

	// Scatter into full-width rows.
	full := make([]value.Row, len(rows))
	for i, r := range rows {
		fr := value.NullRow(len(def.Columns))
		for j, t := range target {
			fr[t] = r[j]
		}
		full[i] = fr
	}
	n, err := table.InsertBatch(full)
	if err != nil {
		return nil, err
	}
	s.db.Catalog().SetRowCount(ins.Table, table.RowCount())
	return &Result{Tag: fmt.Sprintf("INSERT %d", n)}, nil
}

// compilePredicate resolves a WHERE clause against a table for DELETE/UPDATE.
func (s *Session) compilePredicate(where sql.Expr, def *catalog.TableDef) (func(value.Row) (bool, error), error) {
	if where == nil {
		return nil, nil
	}
	sch := make(algebra.Schema, len(def.Columns))
	for i, c := range def.Columns {
		sch[i] = algebra.Column{Name: c.Name, Table: def.Name, Type: c.Type}
	}
	an := analyzer.New(s.db.Catalog())
	cond, err := an.AnalyzeExpr(where, sch)
	if err != nil {
		return nil, err
	}
	ctx := executor.NewContext(s.db.store)
	return func(row value.Row) (bool, error) {
		return executor.EvalBool(cond, row, ctx)
	}, nil
}

func (s *Session) runDelete(del *sql.DeleteStmt) (*Result, error) {
	table := s.db.store.Table(del.Table)
	if table == nil {
		return nil, fmt.Errorf("table %q does not exist", del.Table)
	}
	pred, err := s.compilePredicate(del.Where, table.Def())
	if err != nil {
		return nil, err
	}
	if del.Where == nil {
		pred = func(value.Row) (bool, error) { return true, nil }
	}
	n, err := table.Delete(pred)
	if err != nil {
		return nil, err
	}
	s.db.Catalog().SetRowCount(del.Table, table.RowCount())
	return &Result{Tag: fmt.Sprintf("DELETE %d", n)}, nil
}

func (s *Session) runUpdate(up *sql.UpdateStmt) (*Result, error) {
	table := s.db.store.Table(up.Table)
	if table == nil {
		return nil, fmt.Errorf("table %q does not exist", up.Table)
	}
	def := table.Def()
	pred, err := s.compilePredicate(up.Where, def)
	if err != nil {
		return nil, err
	}
	sch := make(algebra.Schema, len(def.Columns))
	for i, c := range def.Columns {
		sch[i] = algebra.Column{Name: c.Name, Table: def.Name, Type: c.Type}
	}
	an := analyzer.New(s.db.Catalog())
	type setter struct {
		idx  int
		expr algebra.Expr
	}
	var setters []setter
	for _, set := range up.Sets {
		idx := def.ColumnIndex(set.Column)
		if idx < 0 {
			return nil, fmt.Errorf("column %q of table %q does not exist", set.Column, up.Table)
		}
		e, err := an.AnalyzeExpr(set.Expr, sch)
		if err != nil {
			return nil, err
		}
		setters = append(setters, setter{idx: idx, expr: e})
	}
	ctx := executor.NewContext(s.db.store)
	n, err := table.Update(pred, func(row value.Row) (value.Row, error) {
		out := row.Clone()
		for _, st := range setters {
			v, err := executor.Eval(st.expr, row, ctx)
			if err != nil {
				return nil, err
			}
			out[st.idx] = v
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Tag: fmt.Sprintf("UPDATE %d", n)}, nil
}

func (s *Session) runSet(st *sql.SetStmt) (*Result, error) {
	name := strings.ToLower(st.Name)
	val := strings.ToLower(st.Value)
	valid := map[string][]string{
		"provenance_contribution":      {"influence", "copy", "copycomplete"},
		"provenance_strategy":          {"heuristic", "cost"},
		"provenance_agg_strategy":      {"auto", "joingroup", "crossfilter"},
		"provenance_set_strategy":      {"auto", "pad", "join"},
		"provenance_distinct_strategy": {"auto", "pass", "join"},
		"optimizer":                    {"on", "off"},
		"provenance_schema_name":       nil, // free-form
	}
	allowed, ok := valid[name]
	if !ok {
		return nil, fmt.Errorf("unknown setting %q", st.Name)
	}
	if allowed != nil {
		found := false
		for _, a := range allowed {
			if val == a {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("invalid value %q for %s (valid: %s)", st.Value, name, strings.Join(allowed, ", "))
		}
	}
	s.settings[name] = val
	return &Result{Tag: "SET"}, nil
}

func (s *Session) runShow(st *sql.ShowStmt) (*Result, error) {
	name := strings.ToLower(st.Name)
	val, ok := s.settings[name]
	if !ok {
		return nil, fmt.Errorf("unknown setting %q", st.Name)
	}
	return &Result{
		Columns: []string{name},
		Schema:  algebra.Schema{{Name: name, Type: value.KindString}},
		Rows:    []value.Row{{value.NewString(val)}},
		Tag:     "SHOW",
	}, nil
}

// Setting reads a session variable (tools).
func (s *Session) Setting(name string) string { return s.settings[strings.ToLower(name)] }
