// Package engine ties the Perm pipeline together, mirroring Figure 3 of the
// paper: Parser & Analyzer → Provenance Rewriter → Planner → Executor. It
// owns the storage engine, dispatches DDL/DML, manages session settings
// (contribution semantics, rewrite strategies, optimizer toggles), measures
// per-stage timings, and implements eager provenance via CREATE TABLE AS
// SELECT PROVENANCE.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"perm/internal/algebra"
	"perm/internal/analyzer"
	"perm/internal/catalog"
	"perm/internal/core"
	"perm/internal/executor"
	"perm/internal/metrics"
	"perm/internal/planner"
	"perm/internal/sql"
	"perm/internal/storage"
	"perm/internal/value"
)

// ErrReadOnly is the typed error every write statement fails with on a
// read-only replica. Callers (and database/sql users, through perm/driver)
// match it with errors.Is; the network server maps it to the wire protocol's
// read-only error code so it stays typed across the network.
var ErrReadOnly = errors.New("read-only replica: writes must go to the primary")

// ErrStaleEpoch is the typed error for cluster fencing: a request carried a
// fencing epoch newer than this node's (so this node is a deposed primary or
// a lagging member), or a promote/demote arrived with an epoch the node has
// already moved past. The network server maps it to the wire protocol's
// stale-epoch error code so it stays typed across the network.
var ErrStaleEpoch = errors.New("stale cluster epoch")

// ReplStatus is the observable replication state surfaced by
// SHOW replication_status.
type ReplStatus struct {
	// Role is "primary" or "replica".
	Role string
	// Connected reports whether a replica's feed subscription is currently
	// established (always true on a primary).
	Connected bool
	// AppliedLSN is the node's change-log position: the last LSN written
	// (primary) or applied (replica).
	AppliedLSN uint64
	// PrimaryLSN is the primary's last known LSN (heartbeats carry it); on
	// the primary itself it equals AppliedLSN.
	PrimaryLSN uint64
	// Epoch is the cluster fencing epoch this node serves under (0 when the
	// node has never been part of a managed cluster).
	Epoch uint64
	// Staleness is the wall clock elapsed since the replica last made
	// observable progress — applied records, or a heartbeat confirming it
	// was caught up. Zero on a primary and on a replica that is current.
	Staleness time.Duration
	// LastError is the most recent replication error, empty when healthy.
	LastError string
}

// Lag is the number of primary changes not yet applied here.
func (st ReplStatus) Lag() uint64 {
	if st.PrimaryLSN <= st.AppliedLSN {
		return 0
	}
	return st.PrimaryLSN - st.AppliedLSN
}

// DB is a Perm database instance: storage plus catalog. It is safe for use
// from multiple sessions.
type DB struct {
	// store is an atomic pointer so a replication follower can bootstrap a
	// snapshot into a fresh store off to the side and swap it in whole:
	// readers keep serving the old, complete state until the instant of the
	// swap, never a half-restored one. Every access goes through Store().
	store atomic.Pointer[storage.Store]
	// ddlMu serializes DDL so CREATE TABLE + heap allocation stay atomic
	// relative to other DDL.
	ddlMu sync.Mutex
	// sessions counts the sessions currently open (NewSession minus Close) —
	// the network server surfaces it and tests assert teardown.
	sessions atomic.Int64
	// readOnly marks the database a replica: every session rejects DML, DDL
	// and ANALYZE with ErrReadOnly. The replication follower bypasses the
	// engine and applies its feed directly to storage.
	readOnly atomic.Bool
	// replStatus, when set, reports the replica's live replication state
	// (installed by the follower driving this database).
	replStatus atomic.Value // of func() ReplStatus
	// walCtl, when set, is the write-ahead log manager behind SET wal_sync
	// and SHOW wal_status (installed by the server when -data-dir is given).
	walCtl atomic.Value // of walCtlBox
	// epoch is the cluster fencing epoch this node serves under. It only
	// ever rises (SetEpoch ignores lower values), so a raced promote/demote
	// cannot roll the fence back.
	epoch atomic.Uint64
}

// NewDB creates an empty database.
func NewDB() *DB {
	db := &DB{}
	db.store.Store(storage.NewStore())
	return db
}

// NewDBFrom wraps an existing store — the durable path: the server recovers
// the store from its data directory first, then serves it.
func NewDBFrom(s *storage.Store) *DB {
	db := &DB{}
	db.store.Store(s)
	return db
}

// WALStatus is the observable durable-write-path state behind
// SHOW wal_status.
type WALStatus struct {
	// Mode is the active sync policy ("always", "group(<ms>)", "off"), or
	// "disabled" when the server runs without a data directory.
	Mode string
	// LastLSN is the newest journaled record, DurableLSN the newest one
	// fsync has covered, CheckpointLSN the position of the on-disk snapshot.
	LastLSN, DurableLSN, CheckpointLSN uint64
	// Checkpoints counts snapshots written in this process life; Segments
	// and WALBytes size the live log.
	Checkpoints int
	Segments    int
	WALBytes    int64
	// Err is the sticky durability failure, empty while healthy.
	Err string
}

// WALController is the engine's handle on the write-ahead log manager. The
// engine only depends on this interface; internal/server adapts the
// concrete manager to it.
type WALController interface {
	SetSyncPolicy(policy string) error
	WALStatus() WALStatus
}

type walCtlBox struct{ c WALController }

// SetWALController installs (or, with nil, removes) the write-ahead log
// handle behind SET wal_sync and SHOW wal_status.
func (db *DB) SetWALController(c WALController) {
	db.walCtl.Store(walCtlBox{c: c})
}

func (db *DB) walController() WALController {
	if box, ok := db.walCtl.Load().(walCtlBox); ok {
		return box.c
	}
	return nil
}

// WALStatus reports the durable write path's state; without a WAL the mode
// is "disabled" and every counter zero.
func (db *DB) WALStatus() WALStatus {
	if ctl := db.walController(); ctl != nil {
		return ctl.WALStatus()
	}
	return WALStatus{Mode: "disabled"}
}

// Store exposes the storage engine (tools and tests).
func (db *DB) Store() *storage.Store { return db.store.Load() }

// Catalog exposes the schema registry.
func (db *DB) Catalog() *catalog.Catalog { return db.Store().Catalog() }

// DefaultWorkMem is the default per-session memory budget for blocking
// operators (SET work_mem): generous enough that ordinary queries never
// spill, small enough that a runaway provenance sort cannot take the
// process down.
const DefaultWorkMem = 64 << 20

// NewSession opens a session with default settings.
func (db *DB) NewSession() *Session {
	s := &Session{
		db: db,
		settings: map[string]string{
			"provenance_contribution":      "influence",
			"provenance_strategy":          "heuristic",
			"provenance_agg_strategy":      "auto",
			"provenance_set_strategy":      "auto",
			"provenance_distinct_strategy": "auto",
			"optimizer":                    "on",
			"provenance_schema_name":       "public",
			"plan_cache":                   "on",
			"work_mem":                     strconv.FormatInt(DefaultWorkMem, 10),
			"trace":                        "off",
			"slow_query_ms":                "-1",
			"parallelism":                  "1",
		},
		cache: newPlanCache(),
		mem:   executor.NewMemTracker(DefaultWorkMem, ""),
	}
	s.slowMs.Store(-1)
	s.fingerprint = s.computeFingerprint()
	db.sessions.Add(1)
	return s
}

// ActiveSessions reports how many sessions are currently open.
func (db *DB) ActiveSessions() int { return int(db.sessions.Load()) }

// SetReadOnly switches the database into (or out of) replica mode: when
// read-only, every session's write statements fail with ErrReadOnly.
func (db *DB) SetReadOnly(ro bool) { db.readOnly.Store(ro) }

// ReadOnly reports whether the database rejects writes.
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }

// Epoch reports the cluster fencing epoch this node serves under.
func (db *DB) Epoch() uint64 { return db.epoch.Load() }

// SetEpoch raises the node's fencing epoch. Epochs are monotonic: a value at
// or below the current one is ignored, and the method reports whether the
// epoch advanced. Persisting the epoch (so a restart cannot resurrect an old
// fence) is the cluster harness's job, not the engine's.
func (db *DB) SetEpoch(e uint64) bool {
	for {
		cur := db.epoch.Load()
		if e <= cur {
			return false
		}
		if db.epoch.CompareAndSwap(cur, e) {
			return true
		}
	}
}

// SetReplStatusFunc installs the provider behind SHOW replication_status.
// The replication follower sets it; pass nil to revert to the built-in
// primary view.
func (db *DB) SetReplStatusFunc(f func() ReplStatus) {
	db.replStatus.Store(f)
}

// SwapStore atomically replaces the storage engine — the replica bootstrap
// path: the follower restores a snapshot into a fresh store while sessions
// keep reading the old, complete one, then swaps. In-flight statements
// finish against the store they started with. The new catalog's schema
// version is advanced past the old one first, so plan-cache entries keyed
// on the old schema can never collide with a coincidentally equal version
// in the new history.
func (db *DB) SwapStore(s *storage.Store) {
	old := db.store.Load()
	for s.Catalog().Version() <= old.Catalog().Version() {
		s.Catalog().BumpVersion()
	}
	db.store.Store(s)
}

// ReplicationStatus reports the node's replication state. Without an
// installed provider the database describes itself as a primary at its
// change log's position.
func (db *DB) ReplicationStatus() ReplStatus {
	if f, _ := db.replStatus.Load().(func() ReplStatus); f != nil {
		st := f()
		if st.Epoch == 0 {
			st.Epoch = db.Epoch()
		}
		return st
	}
	lsn := db.Store().Log().LastLSN()
	role := "primary"
	if db.ReadOnly() {
		// Read-only without a follower: a replica whose follower is not
		// running (yet), e.g. between Restore and StartFollower.
		role = "replica"
	}
	return ReplStatus{Role: role, Connected: role == "primary", AppliedLSN: lsn, PrimaryLSN: lsn, Epoch: db.Epoch()}
}

// Session is a single-user connection with its own settings and its own plan
// cache (see plancache.go for the keying and invalidation rules).
//
// perm.DB shares one implicit session across goroutines, so the settings map
// is guarded: all writes go through runSet and all reads through setting();
// the plan-cache key fingerprint is memoized there instead of being rebuilt
// (and the map iterated) on every statement.
type Session struct {
	db         *DB
	settingsMu sync.RWMutex
	settings   map[string]string
	// fingerprint is the precomputed settings suffix of plan-cache keys,
	// recomputed only when a setting changes.
	fingerprint string
	cache       *planCache
	// interrupt holds the current query-cancellation channel (see
	// SetInterrupt); stored atomically because the shared implicit session may
	// be used from several goroutines. deadline is its wall-clock analog
	// (UnixNano, 0 = none; see SetDeadline).
	interrupt atomic.Value // of <-chan struct{}
	deadline  atomic.Int64
	closed    atomic.Bool
	// mem is the session's memory governor: the work_mem budget, live/peak
	// tracked bytes, and the spill-file pool blocking operators write temp
	// files through. SHOW memory_status reads it; Close removes any spill
	// files still on disk.
	mem *executor.MemTracker
	// Observability state (observe.go): the memoized SET trace flag, the
	// most recent traced-statement profile (SHOW last_trace), the
	// slow-query threshold in ms (-1 = off, memoized from the setting), and
	// the installed slow-query sink. All atomic: the shared implicit
	// session executes statements from many goroutines.
	traceFlag atomic.Bool
	lastTrace atomic.Pointer[Trace]
	slowMs    atomic.Int64
	slowSink  atomic.Pointer[func(SlowQuery)]
	// parDeg memoizes the parallelism setting (SET parallelism; 0 = use
	// GOMAXPROCS, resolved per statement) so execContextOn never takes the
	// settings lock on the hot path.
	parDeg atomic.Int32
	// txn is the session's open explicit transaction (nil in autocommit).
	// Guarded because the shared implicit session executes statements from
	// several goroutines; the transaction itself is single-writer by the
	// session's one-statement-at-a-time contract.
	txnMu sync.Mutex
	txn   *storage.Txn
}

// maxParallelism caps SET parallelism: more workers than this buys nothing
// and each parallel operator pins a goroutine per worker.
const maxParallelism = 64

// parallelDegree resolves the session's parallelism setting to the concrete
// worker count for one statement: 0 means "all the cores Go will schedule".
func (s *Session) parallelDegree() int32 {
	n := s.parDeg.Load()
	if n == 0 {
		n = int32(runtime.GOMAXPROCS(0))
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetParallelism sets the session's intra-query parallelism degree — the
// programmatic form of SET parallelism (0 = GOMAXPROCS, 1 = serial), used by
// the network server to apply its -parallelism flag to every connection's
// session.
func (s *Session) SetParallelism(n int) {
	if n < 0 {
		n = 1
	}
	if n > maxParallelism {
		n = maxParallelism
	}
	s.settingsMu.Lock()
	s.settings["parallelism"] = strconv.Itoa(n)
	s.fingerprint = s.computeFingerprint()
	s.settingsMu.Unlock()
	s.parDeg.Store(int32(n))
}

// SetWorkMem sets the session's blocking-operator memory budget in bytes
// (<= 0 = unlimited) — the programmatic form of SET work_mem, used by the
// network server to apply its -work-mem flag to every connection's session.
func (s *Session) SetWorkMem(n int64) {
	s.settingsMu.Lock()
	s.settings["work_mem"] = strconv.FormatInt(n, 10)
	s.fingerprint = s.computeFingerprint()
	s.settingsMu.Unlock()
	s.mem.SetBudget(n)
}

// SetTempDir redirects the session's spill files ("" = the OS temp
// directory). The network server applies its -temp-dir flag here.
func (s *Session) SetTempDir(dir string) { s.mem.SetDir(dir) }

// MemStatus is the observable memory state surfaced by SHOW memory_status.
type MemStatus struct {
	// WorkMem is the byte budget (SET work_mem); <= 0 means unlimited.
	WorkMem int64
	// Tracked and Peak are the current and high-water bytes blocking
	// operators hold against the budget.
	Tracked, Peak int64
	// SpillFiles and SpillBytes count spill files ever created and bytes
	// ever written by this session (cumulative).
	SpillFiles, SpillBytes int64
	// TempDir is where spill files are created ("" = the OS temp directory).
	TempDir string
}

// MemStatus reports the session's memory and spill state.
func (s *Session) MemStatus() MemStatus {
	return MemStatus{
		WorkMem:    s.mem.Budget(),
		Tracked:    s.mem.Tracked(),
		Peak:       s.mem.Peak(),
		SpillFiles: s.mem.Pool().Files(),
		SpillBytes: s.mem.Pool().Bytes(),
		TempDir:    s.mem.Dir(),
	}
}

// SetInterrupt installs a cancellation channel for subsequent statements:
// once ch is closed, executing queries unwind with executor.ErrInterrupted
// at their next materialization step. Pass nil to clear. The network server
// arms this with the connection's kill channel; the in-process driver wires
// it to the caller's context.
func (s *Session) SetInterrupt(ch <-chan struct{}) {
	s.interrupt.Store(ch)
}

// SetDeadline bounds subsequent statements to the wall-clock instant t — the
// timer-free per-query timeout (polled alongside the interrupt channel).
// Pass the zero time to clear.
func (s *Session) SetDeadline(t time.Time) {
	if t.IsZero() {
		s.deadline.Store(0)
		return
	}
	s.deadline.Store(t.UnixNano())
}

// execContext builds the executor context for one statement, carrying the
// session's current interrupt channel and deadline.
func (s *Session) execContext() *executor.Context {
	return s.execContextOn(s.db.Store())
}

// execContextOn is execContext against a pinned store (see analyzeOn). Every
// context carries a read position: inside an explicit transaction the
// transaction's snapshot (plus its own buffered writes), otherwise a
// freshly pinned statement snapshot the caller must release with
// Context.Release once the statement's last read is done — the pin holds
// the version vacuum's horizon.
func (s *Session) execContextOn(store *storage.Store) *executor.Context {
	ctx := executor.NewContext(store)
	ctx.Mem = s.mem
	if ch, _ := s.interrupt.Load().(<-chan struct{}); ch != nil {
		ctx.Interrupt = ch
	}
	if ns := s.deadline.Load(); ns != 0 {
		ctx.DeadlineNs = ns
	}
	ctx.Parallel = s.parallelDegree()
	if txn := s.currentTxn(); txn != nil && txn.Store() == store {
		// The transaction owns the snapshot pin; Release on this context is a
		// no-op and COMMIT/ROLLBACK drop the pin.
		ctx.Txn = txn
		ctx.SnapLSN = txn.Snap()
	} else {
		snap := store.PinSnapshot()
		ctx.SnapLSN = snap
		ctx.SetUnpin(func() { store.UnpinSnapshot(snap) })
	}
	return ctx
}

// Close tears the session down: the plan cache is released and the session
// no longer counts as active. Executing a statement on a closed session is
// an error. Close is idempotent.
func (s *Session) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	// A transaction abandoned at disconnect rolls back — and releases its
	// snapshot pin, or the version vacuum could never advance past it.
	s.rollbackOpenTxn()
	s.cache.reset()
	// Remove any spill files still on disk: a result stream abandoned
	// without Close (disconnects, shutdown kills) must not leak temp files
	// past its session.
	s.mem.Cleanup()
	s.db.sessions.Add(-1)
	return nil
}

// setting reads one session variable under the read lock.
func (s *Session) setting(name string) (string, bool) {
	s.settingsMu.RLock()
	defer s.settingsMu.RUnlock()
	v, ok := s.settings[name]
	return v, ok
}

// PlanCacheStats returns the session's plan-cache hit/miss counters and entry
// count.
func (s *Session) PlanCacheStats() (hits, misses uint64, size int) {
	return s.cache.stats()
}

// Timings records the per-stage latency of one statement — the observable
// version of the Figure 3 architecture.
type Timings struct {
	Parse   time.Duration
	Analyze time.Duration // includes provenance rewriting (Perm module)
	Rewrite time.Duration // time inside the provenance rewriter only
	Plan    time.Duration
	Execute time.Duration
}

// Total sums the stages.
func (t Timings) Total() time.Duration {
	return t.Parse + t.Analyze + t.Plan + t.Execute
}

// Result is the outcome of one statement.
type Result struct {
	// Columns are the output column names (empty for DDL/DML).
	Columns []string
	Schema  algebra.Schema
	Rows    []value.Row
	// Tag is the command tag, e.g. "SELECT 4", "INSERT 2", "CREATE TABLE".
	Tag string
	// Timings holds the per-stage latencies.
	Timings Timings
	// Rewrites lists the provenance-rewrite decisions taken (strategy
	// choices, de-correlations), for EXPLAIN and the browser.
	Rewrites []string
	// CacheHit reports that the statement was served from the session plan
	// cache, skipping parse, analyze, rewrite and planning entirely.
	CacheHit bool
}

// Execute runs a single SQL statement to completion. It is a thin drain
// wrapper over Query — the streaming path is the only execution path — so
// its fully-materialized Result contract is unchanged. With the plan cache
// enabled, a statement textually identical to an earlier SELECT in this
// session (under identical settings and schema version) skips
// parse/analyze/rewrite/plan and goes straight to execution.
func (s *Session) Execute(text string) (*Result, error) {
	rows, err := s.Query(text)
	if err != nil {
		return nil, err
	}
	return rows.DrainResult()
}

// ExecuteScript runs a semicolon-separated script, stopping at the first
// error. It returns one result per statement.
func (s *Session) ExecuteScript(text string) ([]*Result, error) {
	stmts, err := sql.ParseScript(text)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for i, st := range stmts {
		res, err := s.ExecuteStatement(st)
		if err != nil {
			return out, fmt.Errorf("statement %d: %w", i+1, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// writeVerb names the command when st mutates data, schema or statistics;
// it returns "" for read statements (SELECT including provenance blocks,
// EXPLAIN, SHOW) and for session-local ones (SET).
func writeVerb(st sql.Statement) string {
	switch x := st.(type) {
	case *sql.InsertStmt:
		return "INSERT"
	case *sql.DeleteStmt:
		return "DELETE"
	case *sql.UpdateStmt:
		return "UPDATE"
	case *sql.CreateTableStmt:
		return "CREATE TABLE"
	case *sql.CreateViewStmt:
		return "CREATE VIEW"
	case *sql.DropStmt:
		if x.View {
			return "DROP VIEW"
		}
		return "DROP TABLE"
	case *sql.AnalyzeStmt:
		return "ANALYZE"
	}
	return ""
}

// ExecuteStatement runs a parsed statement.
func (s *Session) ExecuteStatement(st sql.Statement) (*Result, error) {
	return s.executeStatement(st, nil)
}

// executeStatement runs a parsed statement with args bound to its `?`
// placeholders (nil when the statement binds none).
func (s *Session) executeStatement(st sql.Statement, args []value.Value) (*Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("engine: session is closed")
	}
	if s.db.ReadOnly() {
		if verb := writeVerb(st); verb != "" {
			return nil, fmt.Errorf("%s rejected: %w", verb, ErrReadOnly)
		}
	}
	if err := s.noDDLInTxn(st); err != nil {
		return nil, err
	}
	switch x := st.(type) {
	case *sql.BeginStmt:
		return s.runBegin()
	case *sql.CommitStmt:
		return s.runCommit()
	case *sql.RollbackStmt:
		return s.runRollback()
	case *sql.SelectStmt:
		return s.runSelect(x, args)
	case *sql.CreateTableStmt:
		return s.runCreateTable(x, args)
	case *sql.CreateViewStmt:
		return s.runCreateView(x)
	case *sql.DropStmt:
		return s.runDrop(x)
	case *sql.InsertStmt:
		return s.runInsert(x, args)
	case *sql.DeleteStmt:
		return s.runDelete(x, args)
	case *sql.UpdateStmt:
		return s.runUpdate(x, args)
	case *sql.ExplainStmt:
		return s.runExplain(x)
	case *sql.SetStmt:
		return s.runSet(x)
	case *sql.ShowStmt:
		return s.runShow(x)
	case *sql.AnalyzeStmt:
		if err := s.db.Store().Analyze(x.Table); err != nil {
			return nil, err
		}
		// Fresh statistics can change cost-based rewrite decisions; force
		// cached plans (in every session) to be rebuilt.
		s.db.Catalog().BumpVersion()
		return &Result{Tag: "ANALYZE"}, nil
	}
	return nil, fmt.Errorf("unsupported statement %T", st)
}

// rewriterOptions builds core.Options from the session settings, costing
// against the given store's catalog.
func (s *Session) rewriterOptions(store *storage.Store, defaultSem sql.ContributionSemantics) core.Options {
	opts := core.DefaultOptions()
	opts.SchemaName, _ = s.setting("provenance_schema_name")
	switch defaultSem {
	case sql.Copy:
		opts.Semantics = core.CopySemantics
	case sql.CopyComplete:
		opts.Semantics = core.CopyCompleteSemantics
	case sql.Influence:
		opts.Semantics = core.InfluenceSemantics
	default:
		contribution, _ := s.setting("provenance_contribution")
		switch contribution {
		case "copy":
			opts.Semantics = core.CopySemantics
		case "copycomplete":
			opts.Semantics = core.CopyCompleteSemantics
		}
	}
	if strategy, _ := s.setting("provenance_strategy"); strategy == "cost" {
		opts.Mode = core.ModeCost
		pl := planner.New(store.Catalog())
		opts.Estimator = func(op algebra.Op) float64 { return pl.EstimateRows(op) }
	}
	aggStrategy, _ := s.setting("provenance_agg_strategy")
	switch aggStrategy {
	case "joingroup":
		opts.Agg, opts.AggForced = core.AggJoinGroup, true
	case "crossfilter":
		opts.Agg, opts.AggForced = core.AggCrossFilter, true
	}
	setStrategy, _ := s.setting("provenance_set_strategy")
	switch setStrategy {
	case "pad":
		opts.Set, opts.SetForced = core.SetPad, true
	case "join":
		opts.Set, opts.SetForced = core.SetJoin, true
	}
	distinctStrategy, _ := s.setting("provenance_distinct_strategy")
	switch distinctStrategy {
	case "pass":
		opts.Distinct, opts.DistinctForced = core.DistinctPass, true
	case "join":
		opts.Distinct, opts.DistinctForced = core.DistinctJoin, true
	}
	return opts
}

// Analyze resolves a query to an executable plan, running the provenance
// rewriter for SELECT PROVENANCE blocks. It returns the plan, the rewrite
// decisions, and the time spent in the rewriter.
func (s *Session) Analyze(sel *sql.SelectStmt) (algebra.Op, []string, time.Duration, error) {
	return s.analyzeOn(s.db.Store(), sel, nil)
}

// analyzeOn is Analyze pinned to one store: every statement resolves names,
// plans and executes against a single store snapshot, so a replica
// re-bootstrap (DB.SwapStore) landing mid-statement cannot pair an
// old-catalog plan with a new store's heaps. params carries the kinds of
// the statement's bound `?` arguments.
func (s *Session) analyzeOn(store *storage.Store, sel *sql.SelectStmt, params []value.Kind) (algebra.Op, []string, time.Duration, error) {
	an := analyzer.New(store.Catalog())
	an.Params = params
	var decisions []string
	var rewriteDur time.Duration
	an.Rewrite = func(req analyzer.ProvRequest) (algebra.Op, error) {
		t0 := time.Now()
		rw := core.NewRewriter(s.rewriterOptions(store, req.Contribution))
		out, err := rw.Rewrite(req.Input)
		rewriteDur += time.Since(t0)
		decisions = append(decisions, rw.Decisions...)
		return out, err
	}
	plan, err := an.AnalyzeSelect(sel)
	if err != nil {
		return nil, nil, 0, err
	}
	return plan, decisions, rewriteDur, nil
}

// AnalyzeOriginal resolves a query ignoring SELECT PROVENANCE markers (the
// browser's "original algebra tree" pane).
func (s *Session) AnalyzeOriginal(sel *sql.SelectStmt) (algebra.Op, error) {
	return s.analyzeOriginalOn(s.db.Store(), sel)
}

func (s *Session) analyzeOriginalOn(store *storage.Store, sel *sql.SelectStmt) (algebra.Op, error) {
	an := analyzer.New(store.Catalog())
	an.StripProvenance = true
	return an.AnalyzeSelect(sel)
}

// Plan optimizes a resolved plan per the session's optimizer setting.
func (s *Session) Plan(op algebra.Op) algebra.Op {
	return s.planOn(s.db.Store(), op)
}

func (s *Session) planOn(store *storage.Store, op algebra.Op) algebra.Op {
	if opt, _ := s.setting("optimizer"); opt == "off" {
		return op
	}
	return planner.New(store.Catalog()).Optimize(op)
}

func (s *Session) runSelect(sel *sql.SelectStmt, args []value.Value) (*Result, error) {
	rows, _, err := s.openSelect(sel, s.db.Store(), args)
	if err != nil {
		return nil, err
	}
	return rows.DrainResult()
}

func (s *Session) runCreateTable(ct *sql.CreateTableStmt, args []value.Value) (*Result, error) {
	s.db.ddlMu.Lock()
	defer s.db.ddlMu.Unlock()
	if ct.AsSelect != nil {
		// Eager provenance: CREATE TABLE p AS SELECT PROVENANCE ... stores
		// the provenance relation for later querying.
		sub, err := s.runSelect(ct.AsSelect, args)
		if err != nil {
			return nil, err
		}
		def := &catalog.TableDef{Name: ct.Name}
		used := map[string]int{}
		for _, col := range sub.Schema {
			name := strings.ToLower(col.Name)
			if name == "" {
				name = "column"
			}
			if n := used[name]; n > 0 {
				used[name] = n + 1
				name = fmt.Sprintf("%s_%d", name, n)
			} else {
				used[name] = 1
			}
			typ := col.Type
			if typ == value.KindNull {
				typ = value.KindString
			}
			def.Columns = append(def.Columns, catalog.Column{Name: name, Type: typ})
		}
		table, err := s.db.Store().CreateTable(def)
		if err != nil {
			return nil, err
		}
		if _, err := table.InsertBatch(sub.Rows); err != nil {
			_ = s.db.Store().DropTable(ct.Name)
			return nil, err
		}
		s.db.Catalog().SetRowCount(ct.Name, len(sub.Rows))
		return &Result{Tag: fmt.Sprintf("SELECT %d", len(sub.Rows)), Timings: sub.Timings}, nil
	}
	def := &catalog.TableDef{Name: ct.Name}
	for _, c := range ct.Columns {
		kind, err := value.KindFromTypeName(c.TypeName)
		if err != nil {
			return nil, err
		}
		def.Columns = append(def.Columns, catalog.Column{Name: c.Name, Type: kind, NotNull: c.NotNull})
	}
	if _, err := s.db.Store().CreateTable(def); err != nil {
		return nil, err
	}
	return &Result{Tag: "CREATE TABLE"}, nil
}

func (s *Session) runCreateView(cv *sql.CreateViewStmt) (*Result, error) {
	s.db.ddlMu.Lock()
	defer s.db.ddlMu.Unlock()
	// Validate the defining query now (including provenance blocks).
	plan, _, _, err := s.Analyze(cv.Select)
	if err != nil {
		return nil, fmt.Errorf("invalid view definition: %v", err)
	}
	var cols []catalog.Column
	for _, c := range plan.Schema() {
		cols = append(cols, catalog.Column{Name: c.Name, Type: c.Type})
	}
	// Through the store, not the catalog directly, so the view lands in the
	// change log for replication followers.
	err = s.db.Store().CreateView(&catalog.ViewDef{Name: cv.Name, Text: cv.Text, Columns: cols})
	if err != nil {
		return nil, err
	}
	return &Result{Tag: "CREATE VIEW"}, nil
}

func (s *Session) runDrop(d *sql.DropStmt) (*Result, error) {
	s.db.ddlMu.Lock()
	defer s.db.ddlMu.Unlock()
	var err error
	if d.View {
		err = s.db.Store().DropView(d.Name)
	} else {
		err = s.db.Store().DropTable(d.Name)
	}
	if err != nil {
		if d.IfExists {
			return &Result{Tag: "DROP"}, nil
		}
		return nil, err
	}
	return &Result{Tag: "DROP"}, nil
}

func (s *Session) runInsert(ins *sql.InsertStmt, args []value.Value) (*Result, error) {
	store := s.db.Store()
	table := store.Table(ins.Table)
	if table == nil {
		return nil, fmt.Errorf("table %q does not exist", ins.Table)
	}
	txn, err := s.txnFor(store)
	if err != nil {
		return nil, err
	}
	def := table.Def()
	// Map the column list.
	target := make([]int, 0, len(def.Columns))
	if len(ins.Columns) == 0 {
		for i := range def.Columns {
			target = append(target, i)
		}
	} else {
		for _, name := range ins.Columns {
			idx := def.ColumnIndex(name)
			if idx < 0 {
				return nil, fmt.Errorf("column %q of table %q does not exist", name, ins.Table)
			}
			target = append(target, idx)
		}
	}

	var rows []value.Row
	if ins.Select != nil {
		sub, err := s.runSelect(ins.Select, args)
		if err != nil {
			return nil, err
		}
		if len(sub.Schema) != len(target) {
			return nil, fmt.Errorf("INSERT expects %d columns, query returns %d", len(target), len(sub.Schema))
		}
		rows = sub.Rows
	} else {
		an := analyzer.New(store.Catalog())
		an.Params = paramKinds(args)
		ctx := s.execContextOn(store)
		defer ctx.Release()
		ctx.Params = args
		for i, exprRow := range ins.Rows {
			if len(exprRow) != len(target) {
				return nil, fmt.Errorf("row %d has %d values, expected %d", i+1, len(exprRow), len(target))
			}
			row := make(value.Row, len(exprRow))
			for j, e := range exprRow {
				re, err := an.AnalyzeExpr(e, algebra.Schema{})
				if err != nil {
					return nil, err
				}
				v, err := executor.Eval(re, nil, ctx)
				if err != nil {
					return nil, err
				}
				row[j] = v
			}
			rows = append(rows, row)
		}
	}

	// Scatter into full-width rows.
	full := make([]value.Row, len(rows))
	for i, r := range rows {
		fr := value.NullRow(len(def.Columns))
		for j, t := range target {
			fr[t] = r[j]
		}
		full[i] = fr
	}
	if txn != nil {
		// Buffered until COMMIT: no row-count refresh here — the commit
		// mirrors it once the rows are actually visible.
		n, err := txn.Insert(table, full)
		if err != nil {
			return nil, err
		}
		return &Result{Tag: fmt.Sprintf("INSERT %d", n)}, nil
	}
	n, err := table.InsertBatch(full)
	if err != nil {
		return nil, err
	}
	store.Catalog().SetRowCount(ins.Table, table.RowCount())
	return &Result{Tag: fmt.Sprintf("INSERT %d", n)}, nil
}

// compilePredicate resolves a WHERE clause against a table for DELETE/UPDATE
// and lowers it to a compiled evaluator, so full-heap scans pay the
// expression-tree dispatch once instead of per row. The evaluator closes over
// ctx (the statement's context, so subqueries in the WHERE clause read at the
// statement's snapshot — and through its transaction, when one is open).
func (s *Session) compilePredicate(ctx *executor.Context, where sql.Expr, def *catalog.TableDef, args []value.Value) (func(value.Row) (bool, error), error) {
	if where == nil {
		return nil, nil
	}
	sch := make(algebra.Schema, len(def.Columns))
	for i, c := range def.Columns {
		sch[i] = algebra.Column{Name: c.Name, Table: def.Name, Type: c.Type}
	}
	an := analyzer.New(ctx.Store.Catalog())
	an.Params = paramKinds(args)
	cond, err := an.AnalyzeExpr(where, sch)
	if err != nil {
		return nil, err
	}
	pred := executor.CompilePredicate(cond)
	return func(row value.Row) (bool, error) {
		return pred(row, ctx)
	}, nil
}

func (s *Session) runDelete(del *sql.DeleteStmt, args []value.Value) (*Result, error) {
	store := s.db.Store()
	table := store.Table(del.Table)
	if table == nil {
		return nil, fmt.Errorf("table %q does not exist", del.Table)
	}
	txn, err := s.txnFor(store)
	if err != nil {
		return nil, err
	}
	ctx := s.execContextOn(store)
	defer ctx.Release()
	ctx.Params = args
	pred, err := s.compilePredicate(ctx, del.Where, table.Def(), args)
	if err != nil {
		return nil, err
	}
	if txn != nil {
		n, err := txn.Delete(table, pred)
		if err != nil {
			return nil, err
		}
		return &Result{Tag: fmt.Sprintf("DELETE %d", n)}, nil
	}
	n, err := table.Delete(pred)
	if err != nil {
		return nil, err
	}
	store.Catalog().SetRowCount(del.Table, table.RowCount())
	return &Result{Tag: fmt.Sprintf("DELETE %d", n)}, nil
}

func (s *Session) runUpdate(up *sql.UpdateStmt, args []value.Value) (*Result, error) {
	store := s.db.Store()
	table := store.Table(up.Table)
	if table == nil {
		return nil, fmt.Errorf("table %q does not exist", up.Table)
	}
	txn, err := s.txnFor(store)
	if err != nil {
		return nil, err
	}
	def := table.Def()
	ctx := s.execContextOn(store)
	defer ctx.Release()
	ctx.Params = args
	pred, err := s.compilePredicate(ctx, up.Where, def, args)
	if err != nil {
		return nil, err
	}
	sch := make(algebra.Schema, len(def.Columns))
	for i, c := range def.Columns {
		sch[i] = algebra.Column{Name: c.Name, Table: def.Name, Type: c.Type}
	}
	an := analyzer.New(store.Catalog())
	an.Params = paramKinds(args)
	type setter struct {
		idx  int
		expr func(value.Row, *executor.Context) (value.Value, error)
	}
	var setters []setter
	for _, set := range up.Sets {
		idx := def.ColumnIndex(set.Column)
		if idx < 0 {
			return nil, fmt.Errorf("column %q of table %q does not exist", set.Column, up.Table)
		}
		e, err := an.AnalyzeExpr(set.Expr, sch)
		if err != nil {
			return nil, err
		}
		setters = append(setters, setter{idx: idx, expr: executor.CompileExpr(e)})
	}
	apply := func(row value.Row) (value.Row, error) {
		// Poll for cancellation here too: with no WHERE clause there is no
		// ticking predicate, and this loop visits every row.
		if err := ctx.Tick(); err != nil {
			return nil, err
		}
		out := row.Clone()
		for _, st := range setters {
			v, err := st.expr(row, ctx)
			if err != nil {
				return nil, err
			}
			out[st.idx] = v
		}
		return out, nil
	}
	var n int
	if txn != nil {
		n, err = txn.Update(table, pred, apply)
	} else {
		n, err = table.Update(pred, apply)
	}
	if err != nil {
		return nil, err
	}
	return &Result{Tag: fmt.Sprintf("UPDATE %d", n)}, nil
}

func (s *Session) runSet(st *sql.SetStmt) (*Result, error) {
	name := strings.ToLower(st.Name)
	val := strings.ToLower(st.Value)
	if name == "wal_sync" {
		// Database-scoped, not a session setting: it reconfigures the shared
		// write-ahead log, so it never enters the session fingerprint.
		ctl := s.db.walController()
		if ctl == nil {
			return nil, fmt.Errorf("no write-ahead log: server runs without a data directory")
		}
		if err := ctl.SetSyncPolicy(val); err != nil {
			return nil, err
		}
		return &Result{Tag: "SET"}, nil
	}
	valid := map[string][]string{
		"provenance_contribution":      {"influence", "copy", "copycomplete"},
		"provenance_strategy":          {"heuristic", "cost"},
		"provenance_agg_strategy":      {"auto", "joingroup", "crossfilter"},
		"provenance_set_strategy":      {"auto", "pad", "join"},
		"provenance_distinct_strategy": {"auto", "pass", "join"},
		"optimizer":                    {"on", "off"},
		"plan_cache":                   {"on", "off"},
		"provenance_schema_name":       nil, // free-form
		"work_mem":                     nil, // validated below (byte count)
		"trace":                        {"on", "off"},
		"slow_query_ms":                nil, // validated below (ms, -1 = off)
		"parallelism":                  nil, // validated below (workers; 0 = GOMAXPROCS)
	}
	allowed, ok := valid[name]
	if !ok {
		return nil, fmt.Errorf("unknown setting %q", st.Name)
	}
	if allowed != nil {
		found := false
		for _, a := range allowed {
			if val == a {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("invalid value %q for %s (valid: %s)", st.Value, name, strings.Join(allowed, ", "))
		}
	}
	if name == "work_mem" {
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid value %q for work_mem (bytes, >= 0; 0 = unlimited)", st.Value)
		}
		s.mem.SetBudget(n)
		val = strconv.FormatInt(n, 10)
	}
	if name == "trace" {
		s.traceFlag.Store(val == "on")
	}
	if name == "slow_query_ms" {
		// The grammar has no negative literals, so "off" is the way to
		// disable from SQL (it normalizes to the sentinel -1).
		n := int64(-1)
		if val != "off" {
			var err error
			n, err = strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("invalid value %q for slow_query_ms (ms; 0 = log all, off = disable)", st.Value)
			}
		}
		s.slowMs.Store(n)
		val = strconv.FormatInt(n, 10)
	}
	if name == "parallelism" {
		n, err := strconv.ParseInt(val, 10, 32)
		if err != nil || n < 0 || n > maxParallelism {
			return nil, fmt.Errorf("invalid value %q for parallelism (workers, 0-%d; 0 = GOMAXPROCS, 1 = serial)", st.Value, maxParallelism)
		}
		s.parDeg.Store(int32(n))
		val = strconv.FormatInt(n, 10)
	}
	s.settingsMu.Lock()
	s.settings[name] = val
	s.fingerprint = s.computeFingerprint()
	s.settingsMu.Unlock()
	return &Result{Tag: "SET"}, nil
}

func (s *Session) runShow(st *sql.ShowStmt) (*Result, error) {
	name := strings.ToLower(st.Name)
	if name == "replication_status" {
		rs := s.db.ReplicationStatus()
		return &Result{
			Columns: []string{"role", "connected", "epoch", "applied_lsn", "primary_lsn", "lag", "staleness_ms", "last_error"},
			Schema: algebra.Schema{
				{Name: "role", Type: value.KindString},
				{Name: "connected", Type: value.KindBool},
				{Name: "epoch", Type: value.KindInt},
				{Name: "applied_lsn", Type: value.KindInt},
				{Name: "primary_lsn", Type: value.KindInt},
				{Name: "lag", Type: value.KindInt},
				{Name: "staleness_ms", Type: value.KindInt},
				{Name: "last_error", Type: value.KindString},
			},
			Rows: []value.Row{{
				value.NewString(rs.Role),
				value.NewBool(rs.Connected),
				value.NewInt(int64(rs.Epoch)),
				value.NewInt(int64(rs.AppliedLSN)),
				value.NewInt(int64(rs.PrimaryLSN)),
				value.NewInt(int64(rs.Lag())),
				value.NewInt(rs.Staleness.Milliseconds()),
				value.NewString(rs.LastError),
			}},
			Tag: "SHOW",
		}, nil
	}
	if name == "wal_status" {
		ws := s.db.WALStatus()
		return &Result{
			Columns: []string{"sync_mode", "last_lsn", "durable_lsn", "checkpoint_lsn", "checkpoints", "segments", "wal_bytes", "last_error"},
			Schema: algebra.Schema{
				{Name: "sync_mode", Type: value.KindString},
				{Name: "last_lsn", Type: value.KindInt},
				{Name: "durable_lsn", Type: value.KindInt},
				{Name: "checkpoint_lsn", Type: value.KindInt},
				{Name: "checkpoints", Type: value.KindInt},
				{Name: "segments", Type: value.KindInt},
				{Name: "wal_bytes", Type: value.KindInt},
				{Name: "last_error", Type: value.KindString},
			},
			Rows: []value.Row{{
				value.NewString(ws.Mode),
				value.NewInt(int64(ws.LastLSN)),
				value.NewInt(int64(ws.DurableLSN)),
				value.NewInt(int64(ws.CheckpointLSN)),
				value.NewInt(int64(ws.Checkpoints)),
				value.NewInt(int64(ws.Segments)),
				value.NewInt(ws.WALBytes),
				value.NewString(ws.Err),
			}},
			Tag: "SHOW",
		}, nil
	}
	if name == "wal_sync" {
		return &Result{
			Columns: []string{"wal_sync"},
			Schema:  algebra.Schema{{Name: "wal_sync", Type: value.KindString}},
			Rows:    []value.Row{{value.NewString(s.db.WALStatus().Mode)}},
			Tag:     "SHOW",
		}, nil
	}
	if name == "memory_status" {
		ms := s.MemStatus()
		tempDir := ms.TempDir
		if tempDir == "" {
			tempDir = "(os default)"
		}
		return &Result{
			Columns: []string{"work_mem", "tracked", "peak", "spill_files", "spill_bytes", "temp_dir"},
			Schema: algebra.Schema{
				{Name: "work_mem", Type: value.KindInt},
				{Name: "tracked", Type: value.KindInt},
				{Name: "peak", Type: value.KindInt},
				{Name: "spill_files", Type: value.KindInt},
				{Name: "spill_bytes", Type: value.KindInt},
				{Name: "temp_dir", Type: value.KindString},
			},
			Rows: []value.Row{{
				value.NewInt(ms.WorkMem),
				value.NewInt(ms.Tracked),
				value.NewInt(ms.Peak),
				value.NewInt(ms.SpillFiles),
				value.NewInt(ms.SpillBytes),
				value.NewString(tempDir),
			}},
			Tag: "SHOW",
		}, nil
	}
	if name == "last_trace" {
		tr := s.LastTrace()
		if tr == nil {
			return nil, fmt.Errorf("no trace recorded: SET trace = on, then run a query")
		}
		t := tr.Timings
		drain := t.Execute - tr.Open
		if drain < 0 {
			drain = 0
		}
		return &Result{
			Columns: []string{"sql", "cache_hit", "parse_us", "analyze_us", "rewrite_us", "plan_us", "open_us", "drain_us", "total_us", "rows", "mem_peak", "spill_files", "spill_bytes", "subplan_hits", "subplan_misses", "parallel_ops", "parallel_workers"},
			Schema: algebra.Schema{
				{Name: "sql", Type: value.KindString},
				{Name: "cache_hit", Type: value.KindBool},
				{Name: "parse_us", Type: value.KindInt},
				{Name: "analyze_us", Type: value.KindInt},
				{Name: "rewrite_us", Type: value.KindInt},
				{Name: "plan_us", Type: value.KindInt},
				{Name: "open_us", Type: value.KindInt},
				{Name: "drain_us", Type: value.KindInt},
				{Name: "total_us", Type: value.KindInt},
				{Name: "rows", Type: value.KindInt},
				{Name: "mem_peak", Type: value.KindInt},
				{Name: "spill_files", Type: value.KindInt},
				{Name: "spill_bytes", Type: value.KindInt},
				{Name: "subplan_hits", Type: value.KindInt},
				{Name: "subplan_misses", Type: value.KindInt},
				{Name: "parallel_ops", Type: value.KindInt},
				{Name: "parallel_workers", Type: value.KindInt},
			},
			Rows: []value.Row{{
				value.NewString(tr.SQL),
				value.NewBool(tr.CacheHit),
				value.NewInt(t.Parse.Microseconds()),
				value.NewInt(t.Analyze.Microseconds()),
				value.NewInt(t.Rewrite.Microseconds()),
				value.NewInt(t.Plan.Microseconds()),
				value.NewInt(tr.Open.Microseconds()),
				value.NewInt(drain.Microseconds()),
				value.NewInt(t.Total().Microseconds()),
				value.NewInt(tr.Rows),
				value.NewInt(tr.MemPeak),
				value.NewInt(tr.SpillFiles),
				value.NewInt(tr.SpillBytes),
				value.NewInt(tr.SubplanHits),
				value.NewInt(tr.SubplanMisses),
				value.NewInt(tr.ParallelOps),
				value.NewInt(tr.ParallelWorkers),
			}},
			Tag: "SHOW",
		}, nil
	}
	if name == "mvcc_status" {
		ms := s.db.Store().MVCCStatus()
		return &Result{
			Columns: []string{"visible_lsn", "horizon_lsn", "pins", "slots", "versions", "vacuum_runs", "versions_removed", "write_conflicts"},
			Schema: algebra.Schema{
				{Name: "visible_lsn", Type: value.KindInt},
				{Name: "horizon_lsn", Type: value.KindInt},
				{Name: "pins", Type: value.KindInt},
				{Name: "slots", Type: value.KindInt},
				{Name: "versions", Type: value.KindInt},
				{Name: "vacuum_runs", Type: value.KindInt},
				{Name: "versions_removed", Type: value.KindInt},
				{Name: "write_conflicts", Type: value.KindInt},
			},
			Rows: []value.Row{{
				value.NewInt(int64(ms.VisibleLSN)),
				value.NewInt(int64(ms.HorizonLSN)),
				value.NewInt(int64(ms.Pins)),
				value.NewInt(int64(ms.Slots)),
				value.NewInt(int64(ms.Versions)),
				value.NewInt(int64(ms.VacuumRuns)),
				value.NewInt(int64(ms.VacuumRemoved)),
				value.NewInt(int64(ms.WriteConflicts)),
			}},
			Tag: "SHOW",
		}, nil
	}
	if name == "engine_stats" {
		stats := metrics.Default.Snapshot()
		rows := make([]value.Row, len(stats))
		for i, st := range stats {
			rows[i] = value.Row{value.NewString(st.Name), value.NewString(st.Value)}
		}
		return &Result{
			Columns: []string{"metric", "value"},
			Schema: algebra.Schema{
				{Name: "metric", Type: value.KindString},
				{Name: "value", Type: value.KindString},
			},
			Rows: rows,
			Tag:  "SHOW",
		}, nil
	}
	if name == "plan_cache_stats" {
		hits, misses, size := s.cache.stats()
		return &Result{
			Columns: []string{"hits", "misses", "entries"},
			Schema: algebra.Schema{
				{Name: "hits", Type: value.KindInt},
				{Name: "misses", Type: value.KindInt},
				{Name: "entries", Type: value.KindInt},
			},
			Rows: []value.Row{{
				value.NewInt(int64(hits)),
				value.NewInt(int64(misses)),
				value.NewInt(int64(size)),
			}},
			Tag: "SHOW",
		}, nil
	}
	val, ok := s.setting(name)
	if !ok {
		return nil, fmt.Errorf("unknown setting %q", st.Name)
	}
	return &Result{
		Columns: []string{name},
		Schema:  algebra.Schema{{Name: name, Type: value.KindString}},
		Rows:    []value.Row{{value.NewString(val)}},
		Tag:     "SHOW",
	}, nil
}

// Setting reads a session variable (tools).
func (s *Session) Setting(name string) string {
	v, _ := s.setting(strings.ToLower(name))
	return v
}
