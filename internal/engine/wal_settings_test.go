package engine

import (
	"errors"
	"strings"
	"testing"
)

// stubWALCtl records SetSyncPolicy calls and serves a fixed status, standing
// in for the server's wal.Manager adapter.
type stubWALCtl struct {
	mode   string
	setErr error
}

func (c *stubWALCtl) SetSyncPolicy(policy string) error {
	if c.setErr != nil {
		return c.setErr
	}
	c.mode = policy
	return nil
}

func (c *stubWALCtl) WALStatus() WALStatus {
	return WALStatus{Mode: c.mode, LastLSN: 42, DurableLSN: 41, CheckpointLSN: 30,
		Checkpoints: 3, Segments: 2, WALBytes: 4096, Err: "boom"}
}

func TestWALSettings(t *testing.T) {
	db := NewDB()
	s := db.NewSession()
	defer s.Close()

	// Without a WAL: SET fails with a clear error, SHOW reports disabled.
	if _, err := s.Execute(`SET wal_sync = always`); err == nil || !strings.Contains(err.Error(), "no write-ahead log") {
		t.Fatalf("SET wal_sync without WAL: %v", err)
	}
	res, err := s.Execute(`SHOW wal_sync`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].S; got != "disabled" {
		t.Fatalf("SHOW wal_sync without WAL = %q, want disabled", got)
	}
	res, err = s.Execute(`SHOW wal_status`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].S; got != "disabled" {
		t.Fatalf("SHOW wal_status sync_mode without WAL = %q, want disabled", got)
	}

	// With a controller installed: SET reaches it, SHOW reflects it.
	ctl := &stubWALCtl{mode: "always"}
	db.SetWALController(ctl)
	if _, err := s.Execute(`SET wal_sync = 'group(5)'`); err != nil {
		t.Fatal(err)
	}
	if ctl.mode != "group(5)" {
		t.Fatalf("controller saw policy %q, want group(5)", ctl.mode)
	}
	res, err = s.Execute(`SHOW wal_sync`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].S; got != "group(5)" {
		t.Fatalf("SHOW wal_sync = %q, want group(5)", got)
	}
	res, err = s.Execute(`SHOW wal_status`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[1].I != 42 || row[2].I != 41 || row[3].I != 30 || row[4].I != 3 ||
		row[5].I != 2 || row[6].I != 4096 || row[7].S != "boom" {
		t.Fatalf("SHOW wal_status row = %v", row)
	}

	// A rejected policy surfaces the controller's error.
	ctl.setErr = errors.New("bad policy")
	if _, err := s.Execute(`SET wal_sync = off`); err == nil || !strings.Contains(err.Error(), "bad policy") {
		t.Fatalf("SET wal_sync error not surfaced: %v", err)
	}

	// Removing the controller restores the disabled behavior.
	db.SetWALController(nil)
	if _, err := s.Execute(`SET wal_sync = always`); err == nil {
		t.Fatal("SET wal_sync succeeded after controller removal")
	}
}
