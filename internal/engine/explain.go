package engine

import (
	"fmt"
	"strings"
	"time"

	"perm/internal/algebra"
	"perm/internal/executor"
	"perm/internal/planner"
	"perm/internal/sql"
	"perm/internal/value"
)

// Explanation carries the artifacts the Perm browser shows for one query
// (Figure 4): the original SQL, the rewritten SQL, ASCII algebra trees for
// the original and rewritten query, the rewrite decisions, and — with
// EXPLAIN ANALYZE — the per-stage timings of Figure 3.
type Explanation struct {
	OriginalSQL   string
	RewrittenSQL  string
	OriginalTree  string
	RewrittenTree string
	OptimizedTree string
	Decisions     []string
	Timings       Timings
	RowCount      int
	Analyzed      bool
}

// Explain produces the browser artifacts for a query without running it.
func (s *Session) Explain(sel *sql.SelectStmt) (*Explanation, error) {
	return s.explain(sel, false)
}

// ExplainAnalyze additionally executes the query and reports stage timings.
func (s *Session) ExplainAnalyze(sel *sql.SelectStmt) (*Explanation, error) {
	return s.explain(sel, true)
}

func (s *Session) explain(sel *sql.SelectStmt, analyze bool) (*Explanation, error) {
	ex := &Explanation{OriginalSQL: sql.FormatStatement(sel), Analyzed: analyze}

	// One store pins resolution, costing and execution (see analyzeOn).
	store := s.db.Store()
	orig, err := s.analyzeOriginalOn(store, sel)
	if err != nil {
		return nil, err
	}
	ex.OriginalTree = algebra.Tree(orig)

	t0 := time.Now()
	plan, decisions, rewriteDur, err := s.analyzeOn(store, sel, nil)
	if err != nil {
		return nil, err
	}
	ex.Timings.Analyze = time.Since(t0)
	ex.Timings.Rewrite = rewriteDur
	ex.Decisions = decisions
	ex.RewrittenTree = algebra.Tree(plan)
	ex.RewrittenSQL = algebra.ToSQL(plan)

	t1 := time.Now()
	opt := s.planOn(store, plan)
	ex.Timings.Plan = time.Since(t1)
	pl := planner.New(store.Catalog())
	ex.OptimizedTree = algebra.AnnotatedTree(opt, func(op algebra.Op) string {
		return fmt.Sprintf("(rows≈%.0f)", pl.EstimateRows(op))
	})

	if analyze {
		t2 := time.Now()
		out, err := executor.Run(s.execContextOn(store), opt)
		if err != nil {
			return nil, err
		}
		ex.Timings.Execute = time.Since(t2)
		ex.RowCount = len(out.Rows)
	}
	return ex, nil
}

// runExplain renders an Explanation as a one-column result, the way EXPLAIN
// output comes back from a SQL interface.
func (s *Session) runExplain(st *sql.ExplainStmt) (*Result, error) {
	ex, err := s.explain(st.Target, st.Analyze)
	if err != nil {
		return nil, err
	}
	var lines []string
	add := func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	add("Original query: %s", ex.OriginalSQL)
	add("Original algebra tree:")
	lines = append(lines, strings.Split(strings.TrimRight(ex.OriginalTree, "\n"), "\n")...)
	if len(ex.Decisions) > 0 {
		add("Provenance rewrite decisions:")
		for _, d := range ex.Decisions {
			add("  %s", d)
		}
	}
	add("Rewritten algebra tree:")
	lines = append(lines, strings.Split(strings.TrimRight(ex.RewrittenTree, "\n"), "\n")...)
	add("Rewritten SQL: %s", ex.RewrittenSQL)
	add("Optimized plan:")
	lines = append(lines, strings.Split(strings.TrimRight(ex.OptimizedTree, "\n"), "\n")...)
	if ex.Analyzed {
		add("Stage timings: analyze=%v (rewrite=%v) plan=%v execute=%v",
			ex.Timings.Analyze, ex.Timings.Rewrite, ex.Timings.Plan, ex.Timings.Execute)
		add("Rows: %d", ex.RowCount)
	}
	rows := make([]value.Row, len(lines))
	for i, l := range lines {
		rows[i] = value.Row{value.NewString(l)}
	}
	return &Result{
		Columns: []string{"QUERY PLAN"},
		Schema:  algebra.Schema{{Name: "QUERY PLAN", Type: value.KindString}},
		Rows:    rows,
		Tag:     "EXPLAIN",
	}, nil
}
