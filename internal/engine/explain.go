package engine

import (
	"fmt"
	"strings"
	"time"

	"perm/internal/algebra"
	"perm/internal/executor"
	"perm/internal/planner"
	"perm/internal/sql"
	"perm/internal/value"
)

// Explanation carries the artifacts the Perm browser shows for one query
// (Figure 4): the original SQL, the rewritten SQL, ASCII algebra trees for
// the original and rewritten query, the rewrite decisions, and — with
// EXPLAIN ANALYZE — the per-stage timings of Figure 3.
type Explanation struct {
	OriginalSQL   string
	RewrittenSQL  string
	OriginalTree  string
	RewrittenTree string
	OptimizedTree string
	Decisions     []string
	Timings       Timings
	RowCount      int
	Analyzed      bool
	// EXPLAIN ANALYZE extras: the optimized tree annotated with measured
	// per-operator counters, the stats tree itself (tests and tools read
	// the raw numbers), and statement-level totals.
	AnalyzedTree               string
	Stats                      *executor.OpStats
	SpillFiles, SpillBytes     int64
	SubplanHits, SubplanMisses int64
	// OpenDur is the executor-open slice of Execute (blocking operators'
	// up-front work); the drain phase is Execute - OpenDur.
	OpenDur time.Duration
}

// Explain produces the browser artifacts for a query without running it.
func (s *Session) Explain(sel *sql.SelectStmt) (*Explanation, error) {
	return s.explain(sel, false)
}

// ExplainAnalyze additionally executes the query and reports stage timings.
func (s *Session) ExplainAnalyze(sel *sql.SelectStmt) (*Explanation, error) {
	return s.explain(sel, true)
}

func (s *Session) explain(sel *sql.SelectStmt, analyze bool) (*Explanation, error) {
	ex := &Explanation{OriginalSQL: sql.FormatStatement(sel), Analyzed: analyze}

	// One store pins resolution, costing and execution (see analyzeOn).
	store := s.db.Store()
	orig, err := s.analyzeOriginalOn(store, sel)
	if err != nil {
		return nil, err
	}
	ex.OriginalTree = algebra.Tree(orig)

	t0 := time.Now()
	plan, decisions, rewriteDur, err := s.analyzeOn(store, sel, nil)
	if err != nil {
		return nil, err
	}
	ex.Timings.Analyze = time.Since(t0)
	ex.Timings.Rewrite = rewriteDur
	ex.Decisions = decisions
	ex.RewrittenTree = algebra.Tree(plan)
	ex.RewrittenSQL = algebra.ToSQL(plan)

	t1 := time.Now()
	opt := s.planOn(store, plan)
	ex.Timings.Plan = time.Since(t1)
	pl := planner.New(store.Catalog())
	ex.OptimizedTree = algebra.AnnotatedTree(opt, func(op algebra.Op) string {
		return fmt.Sprintf("(rows≈%.0f)", pl.EstimateRows(op))
	})

	if analyze {
		ctx := s.execContextOn(store)
		defer ctx.Release()
		t2 := time.Now()
		stream, root, err := executor.OpenInstrumented(ctx, opt)
		if err != nil {
			return nil, err
		}
		ex.OpenDur = time.Since(t2)
		rows, err := stream.Drain()
		if err != nil {
			stream.Close()
			return nil, err
		}
		ex.Timings.Execute = time.Since(t2)
		ex.RowCount = len(rows)
		ex.Stats = root
		ex.SpillFiles, ex.SpillBytes = root.SpillFiles, root.SpillBytes
		ex.SubplanHits, ex.SubplanMisses = int64(ctx.SubplanHits), int64(ctx.SubplanMisses)
		ex.AnalyzedTree = analyzedTree(opt, root)
	}
	return ex, nil
}

// analyzedTree renders the optimized plan annotated with the measured
// per-operator counters — the EXPLAIN ANALYZE payload. Stats nodes are
// matched to plan nodes by operator identity; pass-through nodes (BaseRel,
// ProvDone) executed no iterator and carry no annotation.
func analyzedTree(plan algebra.Op, root *executor.OpStats) string {
	byOp := map[algebra.Op]*executor.OpStats{}
	root.Walk(func(n *executor.OpStats) { byOp[n.Op] = n })
	return algebra.AnnotatedTree(plan, func(op algebra.Op) string {
		n := byOp[op]
		if n == nil {
			return ""
		}
		if n.Opens == 0 {
			return "(never executed)"
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "(rows=%d", n.Rows)
		if n.Opens > 1 {
			fmt.Fprintf(&sb, " loops=%d", n.Opens)
		}
		fmt.Fprintf(&sb, " time=%s open=%s",
			time.Duration(n.TotalNs()).Round(time.Microsecond),
			time.Duration(n.OpenNs).Round(time.Microsecond))
		if n.MemPeak > 0 {
			fmt.Fprintf(&sb, " mem=%s", fmtBytes(n.MemPeak))
		}
		if n.SpillFiles > 0 {
			fmt.Fprintf(&sb, " spill=%d/%s", n.SpillFiles, fmtBytes(n.SpillBytes))
		}
		if n.BuildRows > 0 {
			fmt.Fprintf(&sb, " build=%d", n.BuildRows)
		}
		if n.Workers > 0 {
			fmt.Fprintf(&sb, " workers=%d", n.Workers)
			parts := make([]string, 0, len(n.WorkerRows))
			for w := range n.WorkerRows {
				var ns int64
				if w < len(n.WorkerNs) {
					ns = n.WorkerNs[w]
				}
				parts = append(parts, fmt.Sprintf("%d@%s", n.WorkerRows[w],
					time.Duration(ns).Round(time.Microsecond)))
			}
			fmt.Fprintf(&sb, " per-worker=[%s]", strings.Join(parts, " "))
		}
		sb.WriteByte(')')
		return sb.String()
	})
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

// runExplain renders an Explanation as a one-column result, the way EXPLAIN
// output comes back from a SQL interface.
func (s *Session) runExplain(st *sql.ExplainStmt) (*Result, error) {
	ex, err := s.explain(st.Target, st.Analyze)
	if err != nil {
		return nil, err
	}
	var lines []string
	add := func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	add("Original query: %s", ex.OriginalSQL)
	add("Original algebra tree:")
	lines = append(lines, strings.Split(strings.TrimRight(ex.OriginalTree, "\n"), "\n")...)
	if len(ex.Decisions) > 0 {
		add("Provenance rewrite decisions:")
		for _, d := range ex.Decisions {
			add("  %s", d)
		}
	}
	add("Rewritten algebra tree:")
	lines = append(lines, strings.Split(strings.TrimRight(ex.RewrittenTree, "\n"), "\n")...)
	add("Rewritten SQL: %s", ex.RewrittenSQL)
	add("Optimized plan:")
	lines = append(lines, strings.Split(strings.TrimRight(ex.OptimizedTree, "\n"), "\n")...)
	if ex.Analyzed {
		add("Analyzed plan (measured):")
		lines = append(lines, strings.Split(strings.TrimRight(ex.AnalyzedTree, "\n"), "\n")...)
		add("Stage timings: analyze=%v (rewrite=%v) plan=%v open=%v execute=%v",
			ex.Timings.Analyze, ex.Timings.Rewrite, ex.Timings.Plan, ex.OpenDur, ex.Timings.Execute)
		add("Rows: %d", ex.RowCount)
		if ex.SpillFiles > 0 {
			add("Spill: %d file(s), %s", ex.SpillFiles, fmtBytes(ex.SpillBytes))
		}
		if ex.SubplanHits+ex.SubplanMisses > 0 {
			add("Subplan cache: %d hit(s), %d miss(es)", ex.SubplanHits, ex.SubplanMisses)
		}
	}
	rows := make([]value.Row, len(lines))
	for i, l := range lines {
		rows[i] = value.Row{value.NewString(l)}
	}
	return &Result{
		Columns: []string{"QUERY PLAN"},
		Schema:  algebra.Schema{{Name: "QUERY PLAN", Type: value.KindString}},
		Rows:    rows,
		Tag:     "EXPLAIN",
	}, nil
}
