package engine

import (
	"strings"
	"testing"

	"perm/internal/executor"
	"perm/internal/sql"
	"perm/internal/value"
)

// seedObsDB builds a two-table join workload big enough that per-operator
// counters are non-trivial.
func seedObsDB(t *testing.T) *Session {
	t.Helper()
	s := session(t)
	exec(t, s, `CREATE TABLE dept (id int, name text)`)
	exec(t, s, `CREATE TABLE emp (id int, dept int, salary int)`)
	var b strings.Builder
	b.WriteString(`INSERT INTO dept VALUES (1, 'eng'), (2, 'ops'), (3, 'empty')`)
	exec(t, s, b.String())
	b.Reset()
	b.WriteString(`INSERT INTO emp VALUES `)
	for i := 0; i < 200; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		d := i%2 + 1
		b.WriteString("(")
		b.WriteString(itoa(i))
		b.WriteString(", ")
		b.WriteString(itoa(d))
		b.WriteString(", ")
		b.WriteString(itoa(1000 + i))
		b.WriteString(")")
	}
	exec(t, s, b.String())
	return s
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d [20]byte
	i := len(d)
	for n > 0 {
		i--
		d[i] = byte('0' + n%10)
		n /= 10
	}
	return string(d[i:])
}

func parseSelect(t *testing.T, q string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		t.Fatalf("%q is not a select", q)
	}
	return sel
}

// TestExplainAnalyzeCounters checks the measured tree against actual
// execution on a provenance-rewritten join: the root's row count must equal
// the query's result cardinality, and every scan must report the rows it
// actually produced.
func TestExplainAnalyzeCounters(t *testing.T) {
	s := seedObsDB(t)
	q := `SELECT PROVENANCE d.name, e.salary FROM dept d, emp e WHERE d.id = e.dept`

	want := exec(t, s, q)
	ex, err := s.ExplainAnalyze(parseSelect(t, q))
	if err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	if !ex.Analyzed || ex.Stats == nil {
		t.Fatalf("analyzed explanation missing stats: %+v", ex)
	}
	if ex.RowCount != len(want.Rows) {
		t.Fatalf("RowCount = %d, actual rows = %d", ex.RowCount, len(want.Rows))
	}
	if got := ex.Stats.Rows; got != int64(len(want.Rows)) {
		t.Errorf("root operator rows = %d, actual = %d", got, len(want.Rows))
	}

	// Every executed operator produced a sane count, and the tree saw the
	// base tables: 200 emp rows and 3 dept rows enter somewhere.
	var counts []int64
	ex.Stats.Walk(func(n *executor.OpStats) {
		if n.Opens == 0 {
			t.Errorf("operator %T never opened in a fully drained query", n.Op)
		}
		counts = append(counts, n.Rows)
	})
	if len(counts) < 3 {
		t.Fatalf("expected at least scan+scan+join operators, got %d nodes", len(counts))
	}
	saw200, saw3 := false, false
	for _, c := range counts {
		if c == 200 {
			saw200 = true
		}
		if c == 3 {
			saw3 = true
		}
	}
	if !saw200 || !saw3 {
		t.Errorf("scan cardinalities not observed (counts = %v)", counts)
	}

	// The rendered tree carries the measured annotations.
	if !strings.Contains(ex.AnalyzedTree, "rows=") || !strings.Contains(ex.AnalyzedTree, "time=") {
		t.Errorf("analyzed tree missing annotations:\n%s", ex.AnalyzedTree)
	}

	// And the SQL-level EXPLAIN ANALYZE output includes the analyzed section.
	res := exec(t, s, "EXPLAIN ANALYZE "+q)
	var out strings.Builder
	for _, r := range res.Rows {
		out.WriteString(r[0].Str())
		out.WriteByte('\n')
	}
	for _, needle := range []string{"Analyzed plan (measured):", "Stage timings:", "Rows: "} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", needle, out.String())
		}
	}
}

// TestExplainAnalyzeSpillCounters forces spilling with a tiny work_mem and
// checks the statement-level spill totals against the session's pool
// counters (SHOW memory_status), which track the same bytes.
func TestExplainAnalyzeSpillCounters(t *testing.T) {
	s := seedObsDB(t)
	// An external sort needs at least minSortRunRows buffered before it
	// spills; 2000 rows under a 512-byte budget guarantees several runs.
	var b strings.Builder
	b.WriteString(`INSERT INTO emp VALUES `)
	for i := 200; i < 2200; i++ {
		if i > 200 {
			b.WriteString(", ")
		}
		b.WriteString("(" + itoa(i) + ", " + itoa(i%2+1) + ", " + itoa(1000+i) + ")")
	}
	exec(t, s, b.String())
	exec(t, s, `SET work_mem = 512`)

	before := exec(t, s, `SHOW memory_status`)
	bFiles, bBytes := before.Rows[0][3].I, before.Rows[0][4].I

	q := `SELECT id, dept, salary FROM emp ORDER BY salary DESC, id`
	ex, err := s.ExplainAnalyze(parseSelect(t, q))
	if err != nil {
		t.Fatalf("ExplainAnalyze: %v", err)
	}
	after := exec(t, s, `SHOW memory_status`)
	aFiles, aBytes := after.Rows[0][3].I, after.Rows[0][4].I

	if aFiles == bFiles {
		t.Fatalf("expected the sort to spill under work_mem=512 (files %d -> %d)", bFiles, aFiles)
	}
	if ex.SpillFiles != aFiles-bFiles {
		t.Errorf("explanation spill files = %d, memory_status delta = %d", ex.SpillFiles, aFiles-bFiles)
	}
	if ex.SpillBytes != aBytes-bBytes {
		t.Errorf("explanation spill bytes = %d, memory_status delta = %d", ex.SpillBytes, aBytes-bBytes)
	}
	if !strings.Contains(ex.AnalyzedTree, "spill=") {
		t.Errorf("analyzed tree missing spill annotation:\n%s", ex.AnalyzedTree)
	}
}

// TestTraceLifecycle drives SET trace / SHOW last_trace the way a client
// would: no trace before one is recorded, a full stage profile after, and
// the same surface keeps working for the next statement.
func TestTraceLifecycle(t *testing.T) {
	s := seedObsDB(t)

	if _, err := s.Execute(`SHOW last_trace`); err == nil {
		t.Fatal("SHOW last_trace before any trace must fail")
	}
	exec(t, s, `SET trace = on`)

	q := `SELECT name FROM dept ORDER BY name`
	exec(t, s, q)
	res := exec(t, s, `SHOW last_trace`)
	if len(res.Rows) != 1 {
		t.Fatalf("last_trace rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if got := row[0].Str(); got != q {
		t.Errorf("traced sql = %q, want %q", got, q)
	}
	rowsIdx := colIndex(t, res.Columns, "rows")
	if row[rowsIdx].I != 3 {
		t.Errorf("traced rows = %d, want 3", row[rowsIdx].I)
	}
	totalIdx := colIndex(t, res.Columns, "total_us")
	if row[totalIdx].I < 0 {
		t.Errorf("total_us = %d", row[totalIdx].I)
	}
	// Column list, schema and row must agree in arity: generic table
	// renderers size by the column list and index cells by position, so a
	// column added to the schema but not the list panics the client.
	if len(res.Columns) != len(res.Schema) || len(row) != len(res.Columns) {
		t.Fatalf("last_trace arity mismatch: %d columns, %d schema fields, %d row cells",
			len(res.Columns), len(res.Schema), len(row))
	}
	if i := colIndex(t, res.Columns, "parallel_ops"); row[i].I != 0 {
		t.Errorf("serial statement parallel_ops = %d, want 0", row[i].I)
	}
	if i := colIndex(t, res.Columns, "parallel_workers"); row[i].I != 0 {
		t.Errorf("serial statement parallel_workers = %d, want 0", row[i].I)
	}

	// The trace relates to the *traced* statement: SHOW itself is untraced
	// utility output, so the recorded SQL must still be the SELECT.
	res = exec(t, s, `SHOW last_trace`)
	if got := res.Rows[0][0].Str(); got != q {
		t.Errorf("trace overwritten by SHOW: %q", got)
	}

	exec(t, s, `SET trace = off`)
	exec(t, s, `SELECT 1`)
	res = exec(t, s, `SHOW last_trace`)
	if got := res.Rows[0][0].Str(); got != q {
		t.Errorf("trace recorded while off: %q", got)
	}
}

func colIndex(t *testing.T, cols []string, name string) int {
	t.Helper()
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, cols)
	return -1
}

// TestSlowQueryLog checks the threshold and the sink: with slow_query_ms = 0
// every statement is logged (Postgres convention), with it negative nothing
// is, and bind parameters are reported only as a count.
func TestSlowQueryLog(t *testing.T) {
	s := seedObsDB(t)
	var got []SlowQuery
	s.SetSlowQueryLog(func(q SlowQuery) { got = append(got, q) })

	exec(t, s, `SELECT count(*) FROM emp`)
	if len(got) != 0 {
		t.Fatalf("slow log fired while disabled: %+v", got)
	}

	exec(t, s, `SET slow_query_ms = 0`)
	exec(t, s, `SELECT count(*) FROM emp`)
	// The SET itself may have been logged too (threshold 0 logs everything
	// after it takes effect); the SELECT must be the most recent record.
	if len(got) == 0 {
		t.Fatal("slow log did not fire at threshold 0")
	}
	last := got[len(got)-1]
	if last.SQL != `SELECT count(*) FROM emp` {
		t.Errorf("logged sql = %q", last.SQL)
	}
	if last.Rows != 1 {
		t.Errorf("logged rows = %d", last.Rows)
	}

	// Parameterized statements log the parameter count, never the values.
	n := len(got)
	prep, err := s.Prepare(`SELECT count(*) FROM emp WHERE salary > ?`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	rows, err := prep.Query(value.NewInt(1100))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if _, err := rows.DrainResult(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(got) <= n {
		t.Fatal("parameterized query not logged")
	}
	last = got[len(got)-1]
	if last.Params != 1 {
		t.Errorf("logged params = %d, want 1", last.Params)
	}
	if strings.Contains(last.SQL, "1100") {
		t.Errorf("bind value leaked into slow log: %q", last.SQL)
	}

	exec(t, s, `SET slow_query_ms = off`)
	n = len(got)
	exec(t, s, `SELECT 1`)
	if len(got) != n {
		t.Errorf("slow log fired while re-disabled")
	}
}

// TestInstrumentationOffByDefault pins the zero-cost contract: without SET
// trace the streamed path must not build a stats tree at all (the iterator
// tree is unwrapped — EXPLAIN ANALYZE is the only other way to pay for
// counters).
func TestInstrumentationOffByDefault(t *testing.T) {
	s := seedObsDB(t)
	rows, err := s.Query(`SELECT count(*) FROM emp`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.obs != nil {
		t.Error("deep-observation sidecar allocated with trace off")
	}
	if _, err := rows.DrainResult(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	exec(t, s, `SET trace = on`)
	rows, err = s.Query(`SELECT count(*) FROM emp`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.obs == nil || rows.obs.stats == nil {
		t.Error("stats tree missing with trace on")
	}
	if _, err := rows.DrainResult(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestEngineStatsSurface smoke-checks SHOW engine_stats: the process
// counters exist and queries move them.
func TestEngineStatsSurface(t *testing.T) {
	s := seedObsDB(t)
	res := exec(t, s, `SHOW engine_stats`)
	vals := map[string]string{}
	for _, r := range res.Rows {
		vals[r[0].Str()] = r[1].Str()
	}
	for _, name := range []string{
		"perm_engine_queries_total",
		"perm_engine_query_seconds_count",
		"perm_engine_plan_cache_misses_total",
		"perm_spill_files_total",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("engine_stats missing %s", name)
		}
	}
	if vals["perm_engine_queries_total"] == "0" {
		t.Error("queries counter did not move")
	}
}
