package engine

import (
	"testing"
)

// plancache_test.go covers the session plan cache: hits skip the pipeline,
// every schema-changing operation forces a re-plan, SET changes re-plan via
// the settings fingerprint, and sessions are isolated from each other.

func cacheSession(t *testing.T) *Session {
	t.Helper()
	s := session(t)
	exec(t, s, `CREATE TABLE t (a int, b text)`)
	exec(t, s, `INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')`)
	return s
}

func TestPlanCacheHitSkipsStages(t *testing.T) {
	s := cacheSession(t)
	q := `SELECT PROVENANCE a, b FROM t WHERE a >= 2`

	first := exec(t, s, q)
	if first.CacheHit {
		t.Fatal("first execution must be a miss")
	}
	if first.Timings.Analyze <= 0 {
		t.Fatal("miss must run the analyzer")
	}

	second := exec(t, s, q)
	if !second.CacheHit {
		t.Fatal("second identical execution must hit the plan cache")
	}
	if second.Timings.Parse != 0 || second.Timings.Analyze != 0 ||
		second.Timings.Rewrite != 0 || second.Timings.Plan != 0 {
		t.Errorf("hit must skip parse/analyze/rewrite/plan, got %+v", second.Timings)
	}
	if second.Timings.Execute <= 0 {
		t.Error("hit must still execute")
	}
	if len(second.Rows) != len(first.Rows) || len(second.Columns) != len(first.Columns) {
		t.Errorf("cached result differs: %v vs %v", second.Rows, first.Rows)
	}
	for i := range second.Columns {
		if second.Columns[i] != first.Columns[i] {
			t.Errorf("column %d = %q, want %q", i, second.Columns[i], first.Columns[i])
		}
	}
}

func TestPlanCacheSeesNewData(t *testing.T) {
	s := cacheSession(t)
	q := `SELECT count(*) FROM t`
	exec(t, s, q)
	exec(t, s, `INSERT INTO t VALUES (4, 'w')`)
	res := exec(t, s, q)
	if !res.CacheHit {
		t.Fatal("DML must not invalidate the plan cache")
	}
	if res.Rows[0][0].I != 4 {
		t.Errorf("cached plan must read current data, count = %v", res.Rows[0][0])
	}
}

func TestPlanCacheDDLInvalidation(t *testing.T) {
	ddls := []string{
		`CREATE TABLE other (x int)`,
		`DROP TABLE other2`,
		`CREATE VIEW vv AS SELECT a FROM t`,
		`DROP VIEW vv2`,
		`ANALYZE t`,
	}
	for _, ddl := range ddls {
		t.Run(ddl, func(t *testing.T) {
			s := cacheSession(t)
			exec(t, s, `CREATE TABLE other2 (x int)`)
			exec(t, s, `CREATE VIEW vv2 AS SELECT a FROM t`)
			q := `SELECT a FROM t WHERE a = 1`
			exec(t, s, q)
			if res := exec(t, s, q); !res.CacheHit {
				t.Fatal("warm-up execution must hit")
			}
			exec(t, s, ddl)
			res := exec(t, s, q)
			if res.CacheHit {
				t.Errorf("%s must force a re-plan", ddl)
			}
			if res.Timings.Analyze <= 0 {
				t.Error("re-plan must run the analyzer")
			}
			// And the re-planned statement is cached again.
			if res := exec(t, s, q); !res.CacheHit {
				t.Error("statement must be re-cached after invalidation")
			}
		})
	}
}

func TestPlanCacheViewRedefinition(t *testing.T) {
	s := cacheSession(t)
	exec(t, s, `CREATE VIEW v AS SELECT a FROM t WHERE a >= 2`)
	q := `SELECT * FROM v`
	if got := len(exec(t, s, q).Rows); got != 2 {
		t.Fatalf("rows = %d, want 2", got)
	}
	exec(t, s, `DROP VIEW v`)
	exec(t, s, `CREATE VIEW v AS SELECT a FROM t WHERE a >= 1`)
	res := exec(t, s, q)
	if res.CacheHit {
		t.Error("redefined view must not be served from the old plan")
	}
	if got := len(res.Rows); got != 3 {
		t.Errorf("rows = %d, want 3 (stale plan served)", got)
	}
}

func TestPlanCacheSetInvalidation(t *testing.T) {
	settings := []string{
		`SET provenance_contribution = 'copy'`,
		`SET provenance_strategy = 'cost'`,
		`SET provenance_agg_strategy = 'joingroup'`,
		`SET provenance_set_strategy = 'pad'`,
		`SET provenance_distinct_strategy = 'join'`,
		`SET optimizer = 'off'`,
	}
	for _, set := range settings {
		t.Run(set, func(t *testing.T) {
			s := cacheSession(t)
			q := `SELECT PROVENANCE a FROM t`
			exec(t, s, q)
			if res := exec(t, s, q); !res.CacheHit {
				t.Fatal("warm-up execution must hit")
			}
			exec(t, s, set)
			if res := exec(t, s, q); res.CacheHit {
				t.Errorf("%s must force a re-plan", set)
			}
		})
	}
}

func TestPlanCacheCrossSessionIsolation(t *testing.T) {
	db := NewDB()
	s1 := db.NewSession()
	if _, err := s1.ExecuteScript(`CREATE TABLE t (a int); INSERT INTO t VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT a FROM t`
	exec(t, s1, q)
	if res := exec(t, s1, q); !res.CacheHit {
		t.Fatal("same-session repeat must hit")
	}
	s2 := db.NewSession()
	if res := exec(t, s2, q); res.CacheHit {
		t.Error("a fresh session must plan for itself")
	}
	// DDL in one session invalidates cached plans in another.
	exec(t, s2, `CREATE TABLE other (x int)`)
	if res := exec(t, s1, q); res.CacheHit {
		t.Error("DDL from another session must invalidate this session's cache")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	s := cacheSession(t)
	exec(t, s, `SET plan_cache = 'off'`)
	q := `SELECT a FROM t`
	exec(t, s, q)
	if res := exec(t, s, q); res.CacheHit {
		t.Error("plan_cache=off must disable caching")
	}
}

func TestPlanCacheStatsAndShow(t *testing.T) {
	s := cacheSession(t)
	q := `SELECT a FROM t`
	exec(t, s, q)
	exec(t, s, q)
	exec(t, s, q)
	hits, misses, size := s.PlanCacheStats()
	if hits != 2 || misses != 1 || size != 1 {
		t.Errorf("stats = %d hits / %d misses / %d entries, want 2/1/1", hits, misses, size)
	}
	res := exec(t, s, `SHOW plan_cache_stats`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 || res.Rows[0][1].I != 1 || res.Rows[0][2].I != 1 {
		t.Errorf("SHOW plan_cache_stats = %v", res.Rows)
	}
}

func TestPlanCacheOnlySelectsCached(t *testing.T) {
	s := cacheSession(t)
	ins := `INSERT INTO t VALUES (9, 'q')`
	exec(t, s, ins)
	res := exec(t, s, ins)
	if res.CacheHit {
		t.Error("DML must never be served from the plan cache")
	}
	count := exec(t, s, `SELECT count(*) FROM t`)
	if count.Rows[0][0].I != 5 {
		t.Errorf("count = %v, want 5 (both inserts applied)", count.Rows[0][0])
	}
}

func TestPlanCacheWhitespaceNormalization(t *testing.T) {
	s := cacheSession(t)
	exec(t, s, `SELECT a FROM t`)
	if res := exec(t, s, "  SELECT a FROM t ;\n"); !res.CacheHit {
		t.Error("leading/trailing whitespace and semicolons must not defeat the cache")
	}
	// Interior whitespace is significant (it may sit inside a literal).
	if res := exec(t, s, `SELECT  a FROM t`); res.CacheHit {
		t.Error("interior whitespace must produce a distinct key")
	}
}

// TestSharedSessionConcurrentSet hammers one session (the perm.DB implicit
// session pattern) with statements and SETs concurrently. Under -race this
// guards the settings/fingerprint locking that cache keying relies on.
func TestSharedSessionConcurrentSet(t *testing.T) {
	s := cacheSession(t)
	done := make(chan error, 3)
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := s.Execute(`SELECT a FROM t WHERE a >= 1`); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 100; i++ {
			mode := "'off'"
			if i%2 == 0 {
				mode = "'on'"
			}
			if _, err := s.Execute(`SET optimizer = ` + mode); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 100; i++ {
			if _, err := s.Execute(`SHOW plan_cache_stats`); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
