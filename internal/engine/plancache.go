package engine

import (
	"sort"
	"strings"
	"sync"

	"perm/internal/algebra"
	"perm/internal/value"
)

// The session-level plan cache skips the front half of the Figure 3 pipeline
// (parse → analyze → provenance rewrite → plan) for repeated statements — the
// dominant pattern in benchmark loops and figure-regenerating experiments.
//
// Keying: normalized statement text plus a fingerprint of every session
// setting. Normalization is deliberately conservative (whitespace trim and
// trailing-semicolon strip only): anything smarter would have to understand
// string literals, and a false key collision would serve wrong results.
// Because the settings fingerprint is part of the key, any SET — contribution
// semantics, rewrite-strategy toggles, the optimizer switch — immediately
// re-plans without explicit invalidation.
//
// Invalidation: entries are tagged with the catalog schema version captured
// BEFORE planning. DDL (CREATE/DROP TABLE, CREATE/DROP VIEW) and ANALYZE bump
// the version, so a stale entry is detected and dropped on its next lookup,
// even when the DDL ran in a different session. Data changes (INSERT, DELETE,
// UPDATE) do not invalidate: plans read table heaps by name at Open time, so
// a cached plan always sees current data. DML does refresh row-count
// statistics, which cost-based rewrite strategies consult at plan time — a
// deliberate tradeoff: bumping the version on every INSERT would defeat the
// cache for exactly the repeated-statement workloads it targets, so a cached
// plan keeps its original cost decision (always correct, possibly stale)
// until ANALYZE or DDL forces a re-plan, mirroring how production DBMSs
// re-plan on statistics refresh rather than per write.
//
// Each session owns its cache (cross-session isolation); the cache itself is
// mutex-guarded because perm.DB shares its implicit session across goroutines.

// planCacheCap bounds the number of cached plans per session.
const planCacheCap = 256

// planCacheEntry is one cached, fully optimized plan.
type planCacheEntry struct {
	plan      algebra.Op
	columns   []string
	decisions []string
	// schemaVersion is the catalog version the plan was built against.
	schemaVersion uint64
}

// planCache is a per-session statement-text → plan map with hit/miss counters.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*planCacheEntry
	hits    uint64
	misses  uint64
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[string]*planCacheEntry)}
}

// get returns the cached entry for key if it exists and is still valid under
// the current schema version; stale entries are evicted. Only hits are
// counted here: a lookup miss for a statement that never becomes cacheable
// (DDL, DML) is not a cache miss, so put counts the misses instead.
func (c *planCache) get(key string, schemaVersion uint64) *planCacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		return nil
	}
	if e.schemaVersion != schemaVersion {
		delete(c.entries, key)
		return nil
	}
	c.hits++
	return e
}

// put stores a freshly planned statement and records the miss that caused the
// plan to be built. Arbitrary entries are evicted once the cap is reached
// (repeated-statement workloads rarely exceed it; correctness never depends
// on what is evicted).
func (c *planCache) put(key string, e *planCacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses++
	if len(c.entries) >= planCacheCap {
		for k := range c.entries {
			delete(c.entries, k)
			if len(c.entries) < planCacheCap {
				break
			}
		}
	}
	c.entries[key] = e
}

// reset drops every cached plan (session teardown).
func (c *planCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*planCacheEntry)
}

// stats returns the counters and current size.
func (c *planCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// cacheableStatement is a cheap pre-screen run before any key building: only
// statements that can possibly parse as SELECTs (the only statements ever
// stored) pay for a cache key and a locked lookup. DML/DDL/SET/SHOW skip the
// cache path entirely. False positives are harmless (a miss), false
// negatives impossible for this dialect: every query starts with SELECT,
// VALUES or a parenthesized query.
func cacheableStatement(text string) bool {
	t := strings.TrimSpace(text)
	switch {
	case len(t) == 0:
		return false
	case t[0] == '(':
		return true
	case len(t) >= 6 && strings.EqualFold(t[:6], "select"):
		return true
	case len(t) >= 6 && strings.EqualFold(t[:6], "values"):
		return true
	}
	return false
}

// normalizeSQL trims insignificant leading/trailing bytes from a statement.
// It must never merge two statements with different semantics; interior
// whitespace is significant inside string literals and is left untouched.
func normalizeSQL(text string) string {
	return strings.TrimRight(strings.TrimSpace(text), "; \t\n\r")
}

// planNeutralSettings are session settings that never influence what plan
// the pipeline produces — observability toggles bound at executor-open time,
// not plan time. They are excluded from the settings fingerprint so flipping
// them neither invalidates nor forks cached plans (and keeps cache keys
// short).
var planNeutralSettings = map[string]bool{
	"trace":         true,
	"slow_query_ms": true,
}

// computeFingerprint serializes every plan-affecting session setting into
// the key suffix. Callers hold settingsMu (or own the session exclusively,
// as in NewSession); the result is memoized in s.fingerprint so the map is
// only iterated when a setting actually changes, never per statement.
func (s *Session) computeFingerprint() string {
	names := make([]string, 0, len(s.settings))
	for k := range s.settings {
		if !planNeutralSettings[k] {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, k := range names {
		// Serial execution is the unmarked default: eliding parallelism=1
		// keeps the per-statement cache-key string in the same allocation
		// size class it had before the knob existed, while any non-serial
		// degree (including 0 = all cores) still forks the key.
		if k == "parallelism" && s.settings[k] == "1" {
			continue
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.settings[k])
		b.WriteByte(';')
	}
	return b.String()
}

// currentFingerprint reads the memoized settings fingerprint.
func (s *Session) currentFingerprint() string {
	s.settingsMu.RLock()
	defer s.settingsMu.RUnlock()
	return s.fingerprint
}

// cacheKey builds the plan-cache key for a statement under the session's
// current settings, also returning the fingerprint it embedded so callers can
// detect a settings change between key construction and plan storage. Bound
// `?` arguments contribute their kind vector: a prepared statement is planned
// (and cached) once per distinct argument-kind combination, because the
// analyzer types algebra.Param nodes from exactly those kinds. The 0x1f
// separator cannot occur in the fingerprint (setting names and values are
// plain words), so a suffixed key can never collide with an unsuffixed one.
func (s *Session) cacheKey(text string, args []value.Value) (key, fingerprint string) {
	fp := s.currentFingerprint()
	var b strings.Builder
	norm := normalizeSQL(text)
	b.Grow(len(norm) + 2 + len(fp) + len(args))
	b.WriteString(norm)
	b.WriteByte(0x1f)
	b.WriteString(fp)
	if len(args) > 0 {
		b.WriteByte(0x1f)
		for _, a := range args {
			b.WriteByte(byte(a.K))
		}
	}
	return b.String(), fp
}

// planCacheOn reports whether the session has the plan cache enabled.
func (s *Session) planCacheOn() bool {
	v, _ := s.setting("plan_cache")
	return v == "on"
}
