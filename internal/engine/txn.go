package engine

import (
	"fmt"
	"sync"
	"time"

	"perm/internal/sql"
	"perm/internal/storage"
)

// ErrWriteConflict is the typed error a COMMIT fails with when
// first-committer-wins validation found that a concurrent transaction already
// changed a row this one wrote. The transaction is rolled back; the client
// retries it from BEGIN. Re-exported from storage so engine callers (and the
// network server, which maps it to a wire error code) match one sentinel.
var ErrWriteConflict = storage.ErrWriteConflict

// currentTxn returns the session's open explicit transaction, nil in
// autocommit mode.
func (s *Session) currentTxn() *storage.Txn {
	s.txnMu.Lock()
	defer s.txnMu.Unlock()
	return s.txn
}

// InTransaction reports whether an explicit transaction is open (tools and
// the driver's connection-state checks).
func (s *Session) InTransaction() bool { return s.currentTxn() != nil }

// txnFor returns the open transaction when it began on store, nil in
// autocommit. A transaction pinned on a store that has since been swapped out
// (replica re-bootstrap mid-transaction) errors rather than silently reading
// or writing the wrong store's heaps.
func (s *Session) txnFor(store *storage.Store) (*storage.Txn, error) {
	txn := s.currentTxn()
	if txn == nil {
		return nil, nil
	}
	if txn.Store() != store {
		return nil, fmt.Errorf("engine: the store was replaced while the transaction was open; ROLLBACK and retry")
	}
	return txn, nil
}

// runBegin opens an explicit transaction: reads pin the store's current
// snapshot, writes buffer until COMMIT. BEGIN on a read-only replica is
// allowed — it opens a perfectly useful read-only snapshot transaction; DML
// inside it is rejected statement by statement exactly as in autocommit.
func (s *Session) runBegin() (*Result, error) {
	s.txnMu.Lock()
	defer s.txnMu.Unlock()
	if s.txn != nil {
		return nil, fmt.Errorf("engine: a transaction is already in progress")
	}
	s.txn = s.db.Store().Begin()
	return &Result{Tag: "BEGIN"}, nil
}

// runCommit validates and applies the open transaction. On a write conflict
// the error wraps ErrWriteConflict and the transaction is already rolled
// back — either way the session is back in autocommit afterwards.
func (s *Session) runCommit() (*Result, error) {
	s.txnMu.Lock()
	txn := s.txn
	s.txn = nil
	s.txnMu.Unlock()
	if txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	if err := txn.Commit(); err != nil {
		return nil, err
	}
	return &Result{Tag: "COMMIT"}, nil
}

// runRollback discards the open transaction's buffered writes.
func (s *Session) runRollback() (*Result, error) {
	s.txnMu.Lock()
	txn := s.txn
	s.txn = nil
	s.txnMu.Unlock()
	if txn == nil {
		return nil, fmt.Errorf("engine: no transaction in progress")
	}
	txn.Rollback()
	return &Result{Tag: "ROLLBACK"}, nil
}

// rollbackOpenTxn releases a still-open transaction at session close, so an
// abandoned connection cannot hold the vacuum horizon forever.
func (s *Session) rollbackOpenTxn() {
	s.txnMu.Lock()
	txn := s.txn
	s.txn = nil
	s.txnMu.Unlock()
	if txn != nil {
		txn.Rollback()
	}
}

// noDDLInTxn rejects statements that bypass the transaction's write buffer.
// Schema changes and statistics refreshes apply immediately and are not
// rolled back by ROLLBACK, so allowing them inside BEGIN would silently break
// the transaction's atomicity contract.
func (s *Session) noDDLInTxn(st sql.Statement) error {
	if s.currentTxn() == nil {
		return nil
	}
	switch st.(type) {
	case *sql.CreateTableStmt, *sql.CreateViewStmt, *sql.DropStmt, *sql.AnalyzeStmt:
		return fmt.Errorf("engine: %s cannot run inside a transaction", writeVerb(st))
	}
	return nil
}

// StartVacuum runs the version vacuum every interval until the returned stop
// function is called. The vacuum reclaims row versions no pinned snapshot
// can see; its pace only affects memory, never correctness, so one modest
// background cadence per process is enough.
func (db *DB) StartVacuum(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				db.Store().Vacuum()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
