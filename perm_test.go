package perm_test

import (
	"strings"
	"testing"

	"perm"
)

// forumDB loads the paper's Figure 1 example database: an online forum with
// users, messages, imported messages, and approvals.
func forumDB(t testing.TB) *perm.DB {
	t.Helper()
	db := perm.Open()
	db.MustExecScript(`
		CREATE TABLE messages (mId int, text text, uId int);
		CREATE TABLE users (uId int, name text);
		CREATE TABLE imports (mId int, text text, origin text);
		CREATE TABLE approved (uId int, mId int);
		INSERT INTO messages VALUES (1, 'lorem ipsum ...', 3), (4, 'hi there ...', 2);
		INSERT INTO users VALUES (1, 'Bert'), (2, 'Gert'), (3, 'Gertrud');
		INSERT INTO imports VALUES (2, 'hello ...', 'superForum'), (3, 'I don''t ...', 'HiBoard');
		INSERT INTO approved VALUES (2, 2), (1, 4), (2, 4), (3, 4);
		CREATE VIEW v1 AS SELECT mId, text FROM messages UNION SELECT mId, text FROM imports;
	`)
	return db
}

// TestFigure1 runs the paper's example queries q1–q3 and checks their plain
// (non-provenance) results.
func TestFigure1(t *testing.T) {
	db := forumDB(t)

	q1, err := db.Query(`SELECT mId, text FROM messages UNION SELECT mId, text FROM imports ORDER BY mId`)
	if err != nil {
		t.Fatalf("q1: %v", err)
	}
	if len(q1.Rows) != 4 {
		t.Fatalf("q1: want 4 rows, got %d: %v", len(q1.Rows), q1.Rows)
	}
	wantTexts := []string{"lorem ipsum ...", "hello ...", "I don't ...", "hi there ..."}
	for i, row := range q1.Rows {
		if row[0].Int() != int64(i+1) || row[1].Str() != wantTexts[i] {
			t.Errorf("q1 row %d = %v, want mId=%d text=%q", i, row, i+1, wantTexts[i])
		}
	}

	// q2 is the view creation (done in forumDB); q3 aggregates over it.
	q3, err := db.Query(`
		SELECT count(*), text
		FROM v1 JOIN approved a ON (v1.mId = a.mId)
		GROUP BY v1.mId, text ORDER BY v1.mId`)
	if err != nil {
		t.Fatalf("q3: %v", err)
	}
	// mId 2 has 1 approval, mId 4 has 3; mId 1 and 3 have none (omitted).
	if len(q3.Rows) != 2 {
		t.Fatalf("q3: want 2 rows, got %d: %v", len(q3.Rows), q3.Rows)
	}
	if q3.Rows[0][0].Int() != 1 || q3.Rows[0][1].Str() != "hello ..." {
		t.Errorf("q3 row 0 = %v, want (1, hello ...)", q3.Rows[0])
	}
	if q3.Rows[1][0].Int() != 3 || q3.Rows[1][1].Str() != "hi there ..." {
		t.Errorf("q3 row 1 = %v, want (3, hi there ...)", q3.Rows[1])
	}
}

// TestFigure2Golden reproduces Figure 2 of the paper exactly: the provenance
// of q1 — original result columns followed by the provenance attributes of
// messages and imports, NULL-padded per union branch.
func TestFigure2Golden(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`
		SELECT PROVENANCE mId, text FROM messages
		UNION SELECT mId, text FROM imports
		ORDER BY mId`)
	if err != nil {
		t.Fatalf("provenance q1: %v", err)
	}

	wantCols := []string{
		"mid", "text",
		"prov_public_messages_mid", "prov_public_messages_text", "prov_public_messages_uid",
		"prov_public_imports_mid", "prov_public_imports_text", "prov_public_imports_origin",
	}
	if strings.Join(res.Columns, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("columns = %v\nwant %v", res.Columns, wantCols)
	}

	// Figure 2 rows (order by mId): the null blocks alternate by source.
	want := [][]string{
		{"1", "lorem ipsum ...", "1", "lorem ipsum ...", "3", "null", "null", "null"},
		{"2", "hello ...", "null", "null", "null", "2", "hello ...", "superForum"},
		{"3", "I don't ...", "null", "null", "null", "3", "I don't ...", "HiBoard"},
		{"4", "hi there ...", "4", "hi there ...", "2", "null", "null", "null"},
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d: %v", len(res.Rows), len(want), res.Rows)
	}
	for i, row := range res.Rows {
		for j, cell := range row {
			if cell.String() != want[i][j] {
				t.Errorf("row %d col %d (%s) = %q, want %q", i, j, res.Columns[j], cell.String(), want[i][j])
			}
		}
	}

	// Provenance column flags must match the schema split.
	wantProv := []bool{false, false, true, true, true, true, true, true}
	for i, p := range res.ProvenanceColumns {
		if p != wantProv[i] {
			t.Errorf("ProvenanceColumns[%d] = %v, want %v", i, p, wantProv[i])
		}
	}
}

// TestSection24CombinedQuery runs the paper's §2.4 example that mixes
// provenance computation with regular SQL: messages imported from superForum
// that were approved by enough users (threshold lowered to fit the tiny
// example data).
func TestSection24CombinedQuery(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`
		SELECT text, prov_public_imports_origin
		FROM (SELECT PROVENANCE count(*), text
		      FROM v1 JOIN approved a ON v1.mId = a.mId
		      GROUP BY v1.mId, text) AS prov
		WHERE count > 0 AND prov_public_imports_origin = 'superForum'`)
	if err != nil {
		t.Fatalf("combined query: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].Str() != "hello ..." || res.Rows[0][1].Str() != "superForum" {
		t.Errorf("row = %v, want (hello ..., superForum)", res.Rows[0])
	}
}

// TestSection24BaseRelation checks the BASERELATION keyword: the view is
// treated like a base relation, so provenance attributes are the view's own
// columns rather than those of messages/imports.
func TestSection24BaseRelation(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`SELECT PROVENANCE text FROM v1 BASERELATION WHERE mId > 3`)
	if err != nil {
		t.Fatalf("BASERELATION query: %v", err)
	}
	wantCols := []string{"text", "prov_public_v1_mid", "prov_public_v1_text"}
	if strings.Join(res.Columns, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "hi there ..." {
		t.Fatalf("rows = %v, want one 'hi there ...' row", res.Rows)
	}
}

// TestFigure4 reproduces the Figure 4 browser example: two tables public.s
// and public.r joined, with result `i | prov_public_s_i | prov_public_r_i`.
func TestFigure4(t *testing.T) {
	db := perm.Open()
	db.MustExecScript(`
		CREATE TABLE s (i int);
		CREATE TABLE r (i int);
		INSERT INTO s VALUES (1), (2);
		INSERT INTO r VALUES (1), (2);
	`)
	res, err := db.Query(`SELECT PROVENANCE s.i FROM s JOIN r ON s.i = r.i ORDER BY s.i`)
	if err != nil {
		t.Fatalf("figure 4 query: %v", err)
	}
	wantCols := []string{"i", "prov_public_s_i", "prov_public_r_i"}
	if strings.Join(res.Columns, ",") != strings.Join(wantCols, ",") {
		t.Fatalf("columns = %v, want %v", res.Columns, wantCols)
	}
	want := [][]int64{{1, 1, 1}, {2, 2, 2}}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v, want 2", res.Rows)
	}
	for i, row := range res.Rows {
		for j := range want[i] {
			if row[j].Int() != want[i][j] {
				t.Errorf("row %d = %v, want %v", i, row, want[i])
			}
		}
	}
	// The browser also shows the rewritten SQL and both algebra trees.
	ex, err := db.Explain(`SELECT PROVENANCE s.i FROM s JOIN r ON s.i = r.i`)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if !strings.Contains(ex.RewrittenSQL, "prov_public_s_i") {
		t.Errorf("rewritten SQL misses provenance attribute: %s", ex.RewrittenSQL)
	}
	if !strings.Contains(ex.OriginalTree, "Join") || !strings.Contains(ex.RewrittenTree, "Join") {
		t.Errorf("algebra trees missing join:\n%s\n%s", ex.OriginalTree, ex.RewrittenTree)
	}
}

// TestAggregationProvenance checks q3's provenance: each group row is
// replicated once per contributing (v1 ⋈ approved) row with the base tuples
// from messages, imports and approved attached.
func TestAggregationProvenance(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`
		SELECT PROVENANCE count(*), text
		FROM v1 JOIN approved a ON v1.mId = a.mId
		GROUP BY v1.mId, text
		ORDER BY text, prov_public_approved_uid`)
	if err != nil {
		t.Fatalf("q3 provenance: %v", err)
	}
	// Group "hello ..." (count=1) has 1 witness; group "hi there ..."
	// (count=3) has 3 witnesses.
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 witness rows, got %d: %v", len(res.Rows), res.Rows)
	}
	colIdx := func(name string) int {
		for i, c := range res.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("missing column %q in %v", name, res.Columns)
		return -1
	}
	count := colIdx("count")
	text := colIdx("text")
	appUID := colIdx("prov_public_approved_uid")
	wantApprovers := []int64{2, 1, 2, 3}
	for i, row := range res.Rows {
		if i == 0 {
			if row[count].Int() != 1 || row[text].Str() != "hello ..." {
				t.Errorf("row 0 = %v, want count=1 text=hello", row)
			}
		} else {
			if row[count].Int() != 3 || row[text].Str() != "hi there ..." {
				t.Errorf("row %d = %v, want count=3 text=hi there", i, row)
			}
		}
		if row[appUID].Int() != wantApprovers[i] {
			t.Errorf("row %d approver = %v, want %d", i, row[appUID], wantApprovers[i])
		}
	}
}
