package driver

import (
	"testing"

	"perm/internal/sql"
)

// referencePlaceholderCount counts `?` bind markers the way the engine's
// own lexer does: one QMARK token per placeholder. It is the oracle the
// driver's lightweight scanner is fuzzed against — the two must agree on
// every input the lexer accepts, or a statement's client-side arity check
// would diverge from the server's parse.
func referencePlaceholderCount(query string) (int, bool) {
	toks, err := sql.Tokens(query)
	if err != nil {
		// The lexer rejects the input (unterminated literal/comment, stray
		// byte); the server would reject it too, so the scanner's answer is
		// not load-bearing.
		return 0, false
	}
	n := 0
	for _, t := range toks {
		if t.Type == sql.QMARK {
			n++
		}
	}
	return n, true
}

// FuzzPlaceholders pins the driver's placeholder scanner to the engine
// lexer across arbitrary inputs: `?` inside string literals, quoted
// identifiers, and line/block comments must never count; every other `?`
// must.
func FuzzPlaceholders(f *testing.F) {
	for _, seed := range []string{
		``,
		`SELECT * FROM t WHERE a = ? AND b = ?`,
		`SELECT '?' FROM t`,
		`SELECT "?" FROM t`,
		`SELECT '??''?' FROM t WHERE x = ?`,
		"-- ?\nSELECT ?",
		`/* ? /* nested ? */ ? */ SELECT ?`,
		`SELECT 1?2`,
		`SELECT 'unterminated ?`,
		`/* unterminated ?`,
		`SELECT '' '' ? ""`,
		`INSERT INTO t VALUES (?, ?, 'a''?', ?)`,
		`SELECT e? FROM t`,
		`SELECT 1.5e? FROM t`,
		"SELECT ?;\n-- trailing ?",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, query string) {
		got := countPlaceholders(query) // must never panic, whatever the input
		want, ok := referencePlaceholderCount(query)
		if ok && got != want {
			t.Fatalf("scanner counted %d placeholders, lexer %d, in %q", got, want, query)
		}
	})
}
