package driver

import (
	sqldriver "database/sql/driver"
	"testing"
)

// TestPlaceholderPositionsUnit is the unit-level regression net under the
// end-to-end interpolation tests: every lexical context in which a `?` is
// NOT a parameter, exercised directly against the position scanner.
func TestPlaceholderPositionsUnit(t *testing.T) {
	cases := []struct {
		query string
		want  int // number of real placeholders
	}{
		{`SELECT ?`, 1},
		{`SELECT ?, ?, ?`, 3},
		{`SELECT '?'`, 0},
		{`SELECT 'a?b', ?`, 1},
		{`SELECT 'it''s a ?', ?`, 1},                    // doubled-quote escape stays inside the literal
		{`SELECT "a?b", ?`, 1},                          // quoted identifier
		{`SELECT "it""s?", ?`, 1},                       // doubled double-quote
		{`SELECT 1 -- a ? comment`, 0},                  // line comment
		{"SELECT ? -- tail ?", 1},                       // line comment without trailing newline
		{"SELECT 1 -- c ?\n, ?", 1},                     // placeholder after the comment ends
		{`SELECT /* ? */ ?`, 1},                         // block comment
		{`SELECT /* a /* nested ? */ still ? */ ?`, 1},  // nested block comment
		{`SELECT /* unterminated ?`, 0},                 // unterminated block comment
		{`SELECT 'unterminated ?`, 0},                   // unterminated string literal
		{`SELECT '?' || ? || '?'`, 1},                   // literals on both sides
		{`INSERT INTO t VALUES (?, '--?', ?)`, 2},       // comment-start inside a literal
		{`SELECT * FROM t WHERE s = '/*' AND i = ?`, 1}, // block-start inside a literal
		{`SELECT -?-1`, 1},                              // lone minus is not a comment
		{`SELECT 1/?`, 1},                               // lone slash is not a comment
		{``, 0},
	}
	for _, tc := range cases {
		if got := countPlaceholders(tc.query); got != tc.want {
			t.Errorf("countPlaceholders(%q) = %d, want %d", tc.query, got, tc.want)
		}
	}

	// Interpolation substitutes at exactly the scanned positions.
	got, err := interpolate(`SELECT 'a?', ? /* ? */, ?`, []sqldriver.NamedValue{
		{Ordinal: 1, Value: int64(7)},
		{Ordinal: 2, Value: "x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := `SELECT 'a?', 7 /* ? */, 'x'`; got != want {
		t.Errorf("interpolate = %q, want %q", got, want)
	}
}

func TestFirstKeyword(t *testing.T) {
	cases := []struct{ in, want string }{
		{`SELECT 1`, "select"},
		{`  select provenance x FROM t`, "select"},
		{"-- lead comment\nINSERT INTO t VALUES (1)", "insert"},
		{`/* c */ UPDATE t SET i = 1`, "update"},
		{`/* a /* nested */ b */ delete FROM t`, "delete"},
		{`(SELECT 1)`, "("},
		{`  `, ""},
		{`;INSERT INTO t VALUES (1)`, "insert"}, // the parser skips empty statements too
		{`; ; update t set i = 1`, "update"},
		{`;;`, ""},
		{`EXPLAIN SELECT 1`, "explain"},
		{`SET optimizer = 'off'`, "set"},
		{`analyze`, "analyze"},
	}
	for _, tc := range cases {
		if got := firstKeyword(tc.in); got != tc.want {
			t.Errorf("firstKeyword(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
