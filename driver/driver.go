// Package driver registers a database/sql driver named "perm", so any Go
// program can talk to a Perm provenance database through the standard
// library's connection pool:
//
//	import (
//		"database/sql"
//
//		_ "perm/driver"
//	)
//
//	db, err := sql.Open("perm", "tcp://127.0.0.1:5433")
//	rows, err := db.Query(`SELECT PROVENANCE text FROM messages`)
//
// Provenance is plain relational data (the thesis of Glavic & Alonso, SIGMOD
// 2009), so it needs no special client support: SELECT PROVENANCE results
// come back as ordinary rows whose extra prov_<schema>_<relation>_<attr>
// columns scan like any other column.
//
// # Data source names
//
//	tcp://host:port — connect to a cmd/permserver instance over the wire
//	                  protocol; each pooled connection is its own server
//	                  session (settings, plan cache).
//	host:port       — shorthand for tcp://.
//	mem://          — an in-process private database: every sql.DB opened
//	                  with this DSN owns a fresh empty engine; its pooled
//	                  connections share that engine as concurrent sessions.
//	mem://name      — an in-process database shared by every sql.DB in the
//	                  process that opens the same name (cross-package tests,
//	                  embedded tools).
//	perm://h1,h2,h3 — a cluster member set: each pooled connection dials the
//	                  members (in random order) and picks one by role, read
//	                  from the wire handshake. `?readpref=primary` (default)
//	                  demands the writable primary, `?readpref=replica`
//	                  prefers a replica and falls back to the primary,
//	                  `?readpref=any` takes the first member that answers. A
//	                  trailing "/" before options is tolerated:
//	                  perm://h1,h2,h3/?readpref=replica.
//
// Any DSN may carry a `?readonly` suffix (also `?readonly=1|true`), the
// option for pools pointed at replicas: the driver rejects INSERT, UPDATE,
// DELETE, DDL and ANALYZE client-side with ErrReadOnly before anything hits
// the wire, so misdirected writes fail fast instead of costing a round trip.
// Replica servers enforce the same rule server-side either way — writes
// against a replica fail with an error that matches ErrReadOnly under
// errors.Is even without the DSN option.
//
// # Placeholders and prepared statements
//
// `?` placeholders bind as typed parameters server-side: db.Prepare
// registers a real prepared statement on the connection's session (parsed
// once, planned per distinct argument-type vector through the session plan
// cache), and ad-hoc queries with arguments parse + bind + execute in one
// round trip. Argument values never travel as interpolated SQL text.
// Supported argument types are the driver.Value set: nil, bool, int64,
// float64, string, []byte (bound as text) and time.Time (RFC 3339 text).
//
// # Streaming results
//
// Query results stream end-to-end: remote rows arrive through a server-side
// cursor fetched in bounded batches (the server never materializes the
// result either), embedded rows come straight off the engine's executor
// iterators. rows.Next therefore has constant memory cost however large the
// provenance result — drain or close every *sql.Rows promptly, since an
// open result set pins its connection's server portal.
//
// # Transactions
//
// db.Begin / db.BeginTx open a real server-side transaction (BEGIN on the
// connection's session): statements inside it read one MVCC snapshot, buffer
// their writes, and Commit publishes them atomically under first-committer-
// wins validation — a losing Commit fails with ErrWriteConflict and the
// transaction is already rolled back, so retry from Begin. Snapshot isolation
// is the strongest level offered; BeginTx refuses sql.LevelSerializable and
// above rather than silently weakening it. Statements outside a transaction
// execute with autocommit.
//
// # Semantics and limits
//
//   - Result.LastInsertId is not supported; RowsAffected comes from the
//     command tag.
//   - Session settings (SET provenance_contribution = 'copy', …) work per
//     connection; use a single-connection pool (db.SetMaxOpenConns(1)) or
//     conn-pinned sql.Conn when you depend on them.
package driver

import (
	"database/sql"
	sqldriver "database/sql/driver"
	"fmt"
	"strings"
	"sync"

	"perm/internal/engine"
)

func init() {
	sql.Register("perm", &Driver{})
}

// ErrReadOnly is the typed error writes fail with on a read-only replica —
// whether rejected client-side (a `?readonly` DSN) or by the replica server
// (the wire error carries a read-only code the driver maps back). Match it
// with errors.Is.
var ErrReadOnly = engine.ErrReadOnly

// ErrStaleEpoch is the typed error a clustered server answers with when a
// request ran under a fencing epoch older than the cluster's current one — a
// write acknowledged by a since-deposed primary, or any statement routed to
// a fenced member mid-failover. It is retryable: reconnecting (or the next
// statement through a perm:// multi-host pool) lands on the current primary.
// Match it with errors.Is.
var ErrStaleEpoch = engine.ErrStaleEpoch

// ErrWriteConflict is the typed error a transaction's Commit fails with when
// first-committer-wins validation found a concurrent committed writer on a
// row this transaction also wrote. The transaction is already rolled back;
// retry it from Begin. Match it with errors.Is — it works identically for
// embedded and remote connections (the wire error carries a typed code).
var ErrWriteConflict = engine.ErrWriteConflict

// Driver is the database/sql driver for Perm.
type Driver struct{}

// Open implements driver.Driver.
func (d *Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.(*connector).connect()
}

// OpenConnector implements driver.DriverContext: the DSN is parsed once and
// each pool connection reuses the result.
func (d *Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	target, opts, err := splitOptions(dsn)
	if err != nil {
		return nil, err
	}
	switch {
	case strings.HasPrefix(target, "mem://"):
		name := strings.TrimPrefix(target, "mem://")
		return &connector{drv: d, mem: memDB(name), readOnly: opts.readOnly}, nil
	case strings.HasPrefix(target, "tcp://"):
		addr := strings.TrimPrefix(target, "tcp://")
		if addr == "" {
			return nil, fmt.Errorf("perm driver: empty address in DSN %q", dsn)
		}
		return &connector{drv: d, addr: addr, readOnly: opts.readOnly}, nil
	case strings.HasPrefix(target, "perm://"):
		hosts, err := splitHosts(strings.TrimPrefix(target, "perm://"), dsn)
		if err != nil {
			return nil, err
		}
		return &connector{drv: d, hosts: hosts, readPref: opts.readPref, readOnly: opts.readOnly}, nil
	case strings.Contains(target, "://"):
		return nil, fmt.Errorf("perm driver: unsupported scheme in DSN %q (want tcp://, perm:// or mem://)", dsn)
	case target == "":
		return nil, fmt.Errorf("perm driver: empty DSN")
	default:
		// Bare host:port.
		return &connector{drv: d, addr: target, readOnly: opts.readOnly}, nil
	}
}

// dsnOptions are the parsed ?option suffix values.
type dsnOptions struct {
	readOnly bool
	readPref string // "primary" (default), "replica" or "any"
}

// splitOptions strips and parses the DSN's ?option suffix.
func splitOptions(dsn string) (target string, opts dsnOptions, err error) {
	target, rawOpts, found := strings.Cut(dsn, "?")
	if !found {
		return target, opts, nil
	}
	for _, opt := range strings.Split(rawOpts, "&") {
		name, val, _ := strings.Cut(opt, "=")
		switch name {
		case "readonly":
			switch val {
			case "", "1", "true":
				opts.readOnly = true
			case "0", "false":
			default:
				return "", opts, fmt.Errorf("perm driver: bad value %q for readonly in DSN %q", val, dsn)
			}
		case "readpref":
			switch val {
			case "primary", "replica", "any":
				opts.readPref = val
			default:
				return "", opts, fmt.Errorf("perm driver: bad value %q for readpref in DSN %q (want primary, replica or any)", val, dsn)
			}
		default:
			return "", opts, fmt.Errorf("perm driver: unknown DSN option %q in %q", name, dsn)
		}
	}
	return target, opts, nil
}

// splitHosts parses a perm:// DSN's comma-separated member list (an optional
// trailing "/" before the options is tolerated: perm://h1,h2/?readpref=…).
func splitHosts(list, dsn string) ([]string, error) {
	list = strings.TrimSuffix(list, "/")
	var hosts []string
	for _, h := range strings.Split(list, ",") {
		if h = strings.TrimSpace(h); h != "" {
			hosts = append(hosts, h)
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("perm driver: no member addresses in DSN %q", dsn)
	}
	return hosts, nil
}

// memRegistry holds the process-wide named in-memory databases.
var memRegistry = struct {
	mu  sync.Mutex
	dbs map[string]*engine.DB
}{dbs: make(map[string]*engine.DB)}

// memDB resolves a mem:// DSN to its engine. Named databases are shared
// across the process; the empty name is always a fresh private engine.
func memDB(name string) *engine.DB {
	if name == "" {
		return engine.NewDB()
	}
	memRegistry.mu.Lock()
	defer memRegistry.mu.Unlock()
	db := memRegistry.dbs[name]
	if db == nil {
		db = engine.NewDB()
		memRegistry.dbs[name] = db
	}
	return db
}
