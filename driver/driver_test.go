package driver_test

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"perm"
	"perm/internal/engine"
	"perm/internal/server"

	permdriver "perm/driver"
)

// startServer serves db on a loopback listener and returns the address.
func startServer(t *testing.T, db *engine.DB, cfg server.Config) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := server.New(db, cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	})
	return l.Addr().String()
}

// the paper's Figure 1 forum schema, the script both engines run in the
// end-to-end comparison.
var setupScript = []string{
	`CREATE TABLE messages (mId int, text text, uId int)`,
	`CREATE TABLE users (uId int, name text)`,
	`INSERT INTO messages VALUES (1, 'lorem ipsum', 3), (4, 'hi there', 2)`,
	`INSERT INTO users VALUES (2, 'gert'), (3, 'peter')`,
}

const provQuery = `SELECT PROVENANCE m.text, u.name FROM messages m, users u WHERE m.uId = u.uId ORDER BY m.mId`

// readAll scans every row into printable strings.
func readAll(t *testing.T, rows *sql.Rows) (cols []string, data [][]string) {
	t.Helper()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatalf("columns: %v", err)
	}
	for rows.Next() {
		raw := make([]any, len(cols))
		for i := range raw {
			raw[i] = new(sql.NullString)
		}
		if err := rows.Scan(raw...); err != nil {
			t.Fatalf("scan: %v", err)
		}
		row := make([]string, len(cols))
		for i, c := range raw {
			ns := c.(*sql.NullString)
			if ns.Valid {
				row[i] = ns.String
			} else {
				row[i] = "<null>"
			}
		}
		data = append(data, row)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	return cols, data
}

// TestEndToEndMatchesEmbedded is the acceptance path: a live server on a
// loopback listener, database/sql through the perm driver, DDL + SELECT
// PROVENANCE, and results identical to the embedded engine.
func TestEndToEndMatchesEmbedded(t *testing.T) {
	addr := startServer(t, engine.NewDB(), server.Config{})
	db, err := sql.Open("perm", "tcp://"+addr)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	for _, stmt := range setupScript {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatalf("exec %q: %v", stmt, err)
		}
	}
	rows, err := db.Query(provQuery)
	if err != nil {
		t.Fatalf("provenance query: %v", err)
	}
	gotCols, gotRows := readAll(t, rows)
	rows.Close()

	// The same script on the embedded engine.
	emb := perm.Open()
	for _, stmt := range setupScript {
		emb.MustExec(stmt)
	}
	want, err := emb.Query(provQuery)
	if err != nil {
		t.Fatalf("embedded query: %v", err)
	}
	if len(gotCols) != len(want.Columns) {
		t.Fatalf("columns %v, embedded %v", gotCols, want.Columns)
	}
	for i := range gotCols {
		if gotCols[i] != want.Columns[i] {
			t.Fatalf("column %d: %q != %q", i, gotCols[i], want.Columns[i])
		}
	}
	if len(gotRows) != len(want.Rows) {
		t.Fatalf("%d rows, embedded %d", len(gotRows), len(want.Rows))
	}
	for i, wr := range want.Rows {
		for j, wv := range wr {
			wantCell := wv.String()
			if wv.IsNull() {
				wantCell = "<null>"
			}
			if gotRows[i][j] != wantCell {
				t.Fatalf("row %d col %d: %q != embedded %q", i, j, gotRows[i][j], wantCell)
			}
		}
	}
	// Sanity: provenance columns actually arrived.
	if !strings.HasPrefix(gotCols[2], "prov_") {
		t.Fatalf("expected provenance columns, got %v", gotCols)
	}
}

// TestFiftyConcurrentConnections is the second acceptance bullet: 50 driver
// connections against one live server, all querying provenance, under -race.
func TestFiftyConcurrentConnections(t *testing.T) {
	edb := engine.NewDB()
	s := edb.NewSession()
	for _, stmt := range setupScript {
		if _, err := s.Execute(stmt); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	addr := startServer(t, edb, server.Config{})

	db, err := sql.Open("perm", "tcp://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 50
	db.SetMaxOpenConns(n)
	db.SetMaxIdleConns(n)

	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				rows, err := db.Query(provQuery)
				if err != nil {
					errCh <- fmt.Errorf("conn %d: %v", id, err)
					return
				}
				count := 0
				for rows.Next() {
					count++
				}
				cerr := rows.Err()
				rows.Close()
				if cerr != nil {
					errCh <- fmt.Errorf("conn %d: %v", id, cerr)
					return
				}
				if count != 2 {
					errCh <- fmt.Errorf("conn %d: %d rows, want 2", id, count)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentMixedTraffic stress-tests mixed DDL/DML/provenance traffic
// and cross-session plan-cache invalidation over a live server.
func TestConcurrentMixedTraffic(t *testing.T) {
	edb := engine.NewDB()
	s := edb.NewSession()
	if _, err := s.Execute(`CREATE TABLE shared (w int, tag text)`); err != nil {
		t.Fatal(err)
	}
	s.Close()
	addr := startServer(t, edb, server.Config{})

	db, err := sql.Open("perm", "tcp://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const workers = 8
	db.SetMaxOpenConns(workers)

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fail := func(err error) { errCh <- fmt.Errorf("worker %d: %v", id, err) }
			for iter := 0; iter < 15; iter++ {
				// DML on the shared table.
				if _, err := db.Exec(`INSERT INTO shared VALUES (?, ?)`, id*1000+iter, fmt.Sprintf("w%d", id)); err != nil {
					fail(err)
					return
				}
				// The identical SELECT text from every worker: sessions cache
				// the plan, and the DDL below (from other workers) forces
				// cross-session invalidation through the catalog version.
				shRows, err := db.Query(`SELECT PROVENANCE count(*) FROM shared GROUP BY tag`)
				if err != nil {
					fail(err)
					return
				}
				for shRows.Next() {
				}
				shErr := shRows.Err()
				shRows.Close()
				if shErr != nil {
					fail(shErr)
					return
				}
				// Private DDL churn: create, fill, provenance-query, drop.
				tbl := fmt.Sprintf("t_%d", id)
				if _, err := db.Exec(`CREATE TABLE ` + tbl + ` (x int)`); err != nil {
					fail(err)
					return
				}
				if _, err := db.Exec(`INSERT INTO `+tbl+` VALUES (?), (?)`, iter, iter+1); err != nil {
					fail(err)
					return
				}
				rows, err := db.Query(`SELECT PROVENANCE x FROM ` + tbl)
				if err != nil {
					fail(err)
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				cerr := rows.Err()
				rows.Close()
				if cerr != nil {
					fail(cerr)
					return
				}
				if n != 2 {
					fail(fmt.Errorf("private table had %d rows, want 2", n))
					return
				}
				if _, err := db.Exec(`DROP TABLE ` + tbl); err != nil {
					fail(err)
					return
				}
				// Occasionally delete to exercise the write gate against
				// concurrent scans.
				if iter%5 == 4 {
					if _, err := db.Exec(`DELETE FROM shared WHERE w = ?`, id*1000+iter); err != nil {
						fail(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The shared table must reflect every surviving insert exactly.
	var total int
	if err := db.QueryRow(`SELECT count(*) FROM shared`).Scan(&total); err != nil {
		t.Fatal(err)
	}
	want := workers*15 - workers*3 // 15 inserts, 3 deletes per worker
	if total != want {
		t.Fatalf("shared table has %d rows, want %d", total, want)
	}
}

func TestMemModeSharedAndPrivate(t *testing.T) {
	// Private: two sql.DBs on mem:// never see each other.
	db1, err := sql.Open("perm", "mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer db1.Close()
	db2, err := sql.Open("perm", "mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db1.Exec(`CREATE TABLE t (x int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec(`CREATE TABLE t (x int)`); err != nil {
		t.Fatalf("mem:// databases leaked into each other: %v", err)
	}

	// Named: the same name is the same database; pooled connections are
	// separate sessions over it.
	a, err := sql.Open("perm", "mem://stress")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := sql.Open("perm", "mem://stress")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := a.Exec(`CREATE TABLE s (x int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Exec(`INSERT INTO s VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := b.QueryRow(`SELECT count(*) FROM s`).Scan(&n); err != nil {
		t.Fatalf("shared mem db not visible: %v", err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

func TestPlaceholderInterpolation(t *testing.T) {
	db, err := sql.Open("perm", "mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec := func(q string, args ...any) {
		t.Helper()
		if _, err := db.Exec(q, args...); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE TABLE t (i int, f float, s text, b bool)`)
	mustExec(`INSERT INTO t VALUES (?, ?, ?, ?)`, 42, 2.5, "it's ok?", true)
	mustExec(`INSERT INTO t VALUES (?, ?, ?, ?)`, nil, nil, nil, nil)

	var (
		i sql.NullInt64
		f sql.NullFloat64
		s sql.NullString
		b sql.NullBool
	)
	// A ? inside a string literal is not a placeholder.
	err = db.QueryRow(`SELECT i, f, s, b FROM t WHERE s = ? AND s != 'not a ? marker'`, "it's ok?").Scan(&i, &f, &s, &b)
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if i.Int64 != 42 || f.Float64 != 2.5 || s.String != "it's ok?" || !b.Bool {
		t.Fatalf("got %v %v %q %v", i.Int64, f.Float64, s.String, b.Bool)
	}
	var nulls int
	if err := db.QueryRow(`SELECT count(*) FROM t WHERE i IS NULL`).Scan(&nulls); err != nil {
		t.Fatal(err)
	}
	if nulls != 1 {
		t.Fatalf("null rows = %d", nulls)
	}

	// Arity mismatches are driver errors, not engine errors.
	if _, err := db.Exec(`INSERT INTO t VALUES (?, ?, ?, ?)`, 1); err == nil {
		t.Fatal("too few args accepted")
	}
	if _, err := db.Exec(`INSERT INTO t (i) VALUES (?)`, 1, 2); err == nil {
		t.Fatal("too many args accepted")
	}

	// Comments — including ones containing apostrophes or ? — must not
	// confuse placeholder detection. Block comments nest, like the lexer's.
	var got int64
	err = db.QueryRow("SELECT i FROM t -- it's a comment with a ? mark\nWHERE i = ? /* isn't it? */ /* a /* nested ? */ comment */", 42).Scan(&got)
	if err != nil {
		t.Fatalf("commented query: %v", err)
	}
	if got != 42 {
		t.Fatalf("commented query returned %d", got)
	}
}

func TestExecResultAndColumnTypes(t *testing.T) {
	db, err := sql.Open("perm", "mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (i int, s text)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res.RowsAffected(); err != nil || n != 3 {
		t.Fatalf("rows affected = %d, %v", n, err)
	}
	res, err = db.Exec(`DELETE FROM t WHERE i > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Fatalf("delete affected %d", n)
	}

	rows, err := db.Query(`SELECT i, s FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	types, err := rows.ColumnTypes()
	if err != nil {
		t.Fatal(err)
	}
	if types[0].DatabaseTypeName() != "INTEGER" || types[1].DatabaseTypeName() != "TEXT" {
		t.Fatalf("types = %s, %s", types[0].DatabaseTypeName(), types[1].DatabaseTypeName())
	}
}

func TestTransactions(t *testing.T) {
	db, err := sql.Open("perm", "mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE acct (id int, bal int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO acct VALUES (1, 100), (2, 50)`); err != nil {
		t.Fatal(err)
	}

	// Committed transaction: both effects land atomically.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE acct SET bal = bal - 30 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE acct SET bal = bal + 30 WHERE id = 2`); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes inside the transaction.
	var bal int
	if err := tx.QueryRow(`SELECT bal FROM acct WHERE id = 2`).Scan(&bal); err != nil {
		t.Fatal(err)
	}
	if bal != 80 {
		t.Fatalf("in-transaction read: bal = %d, want 80", bal)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var total int
	if err := db.QueryRow(`SELECT sum(bal) FROM acct`).Scan(&total); err != nil {
		t.Fatal(err)
	}
	if total != 150 {
		t.Fatalf("after commit: sum = %d, want 150", total)
	}

	// Rolled-back transaction: no effect survives.
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`DELETE FROM acct`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := db.QueryRow(`SELECT count(*) FROM acct`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("after rollback: %d rows, want 2", n)
	}

	// SERIALIZABLE would over-promise under snapshot isolation; refused.
	if _, err := db.BeginTx(context.Background(), &sql.TxOptions{Isolation: sql.LevelSerializable}); err == nil {
		t.Fatal("BeginTx(serializable) succeeded; snapshot isolation cannot honor it")
	}
}

func TestContextCancellationLocal(t *testing.T) {
	db, err := sql.Open("perm", "mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE big (n int)`); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(`INSERT INTO big VALUES (0)`)
	for i := 1; i < 300; i++ {
		fmt.Fprintf(&b, ", (%d)", i)
	}
	if _, err := db.Exec(b.String()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = db.QueryContext(ctx, `SELECT count(*) FROM big a, big b, big c WHERE a.n <= b.n`)
	if err == nil {
		t.Fatal("runaway local query not canceled by context")
	}
	// The connection survives.
	var n int
	if err := db.QueryRow(`SELECT count(*) FROM big`).Scan(&n); err != nil || n != 300 {
		t.Fatalf("connection unusable after cancel: %d, %v", n, err)
	}
}

// TestContextCancellationRemote: a context deadline must unblock a driver
// call that is waiting on the server without waiting for the server to give
// up. The server's own timeout here is a 100×-larger backstop (so the
// orphaned query doesn't outlive the test); the assertion is that the
// client returns at its own deadline, sacrificing the connection, and the
// pool recovers.
func TestContextCancellationRemote(t *testing.T) {
	edb := engine.NewDB()
	s := edb.NewSession()
	if _, err := s.Execute(`CREATE TABLE big (n int)`); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(`INSERT INTO big VALUES (0)`)
	for i := 1; i < 400; i++ {
		fmt.Fprintf(&b, ", (%d)", i)
	}
	if _, err := s.Execute(b.String()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	addr := startServer(t, edb, server.Config{QueryTimeout: 2 * time.Second})

	db, err := sql.Open("perm", "tcp://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = db.QueryContext(ctx, `SELECT count(*) FROM big a, big b, big c WHERE a.n <= b.n`)
	if err == nil {
		t.Fatal("remote query ignored context deadline")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("error = %v, want context deadline", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("cancellation took %s; the driver waited for the server instead of the context", waited)
	}
	// The pool recovers with a fresh connection.
	var n int
	if err := db.QueryRow(`SELECT count(*) FROM big`).Scan(&n); err != nil || n != 400 {
		t.Fatalf("pool did not recover: %d, %v", n, err)
	}
}

func TestBadDSN(t *testing.T) {
	for _, dsn := range []string{"", "http://x", "tcp://"} {
		db, err := sql.Open("perm", dsn)
		if err == nil {
			// sql.Open defers dialing; the error surfaces on first use.
			err = db.Ping()
			db.Close()
		}
		if err == nil {
			t.Fatalf("DSN %q accepted", dsn)
		}
	}
}

// TestReadOnlyDSNLocal verifies the `?readonly` option rejects writes
// client-side on an embedded connection, with the typed error.
func TestReadOnlyDSNLocal(t *testing.T) {
	rw, err := sql.Open("perm", "mem://roshared")
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if _, err := rw.Exec(`CREATE TABLE t (i int)`); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Exec(`INSERT INTO t VALUES (1), (2)`); err != nil {
		t.Fatal(err)
	}

	ro, err := sql.Open("perm", "mem://roshared?readonly")
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	var n int
	if err := ro.QueryRow(`SELECT count(*) FROM t`).Scan(&n); err != nil || n != 2 {
		t.Fatalf("read on readonly pool: %d, %v", n, err)
	}
	for _, stmt := range []string{
		`INSERT INTO t VALUES (3)`,
		`UPDATE t SET i = 9`,
		`DELETE FROM t`,
		`DROP TABLE t`,
		`CREATE TABLE u (i int)`,
		`ANALYZE`,
	} {
		if _, err := ro.Exec(stmt); !errors.Is(err, permdriver.ErrReadOnly) {
			t.Fatalf("%s on readonly pool: err = %v, want ErrReadOnly", stmt, err)
		}
	}
	// SET and EXPLAIN remain usable (session-local / read-only).
	if _, err := ro.Exec(`SET optimizer = 'off'`); err != nil {
		t.Fatalf("SET on readonly pool: %v", err)
	}
	rows, err := ro.Query(`EXPLAIN SELECT i FROM t`)
	if err != nil {
		t.Fatalf("EXPLAIN on readonly pool: %v", err)
	}
	rows.Close()

	// Bad option values are rejected at Open/first use.
	bad, err := sql.Open("perm", "mem://x?readonly=maybe")
	if err == nil {
		if err = bad.Ping(); err == nil {
			t.Fatal("bad readonly value accepted")
		}
		bad.Close()
	}
}

// TestReadOnlyReplicaRemoteTyped points a pool at a replica server WITHOUT
// the readonly DSN option: the server's rejection must come back as the same
// typed error through the wire error code.
func TestReadOnlyReplicaRemoteTyped(t *testing.T) {
	edb := engine.NewDB()
	if _, err := edb.NewSession().Execute(`CREATE TABLE t (i int)`); err != nil {
		t.Fatal(err)
	}
	edb.SetReadOnly(true)
	addr := startServer(t, edb, server.Config{})

	db, err := sql.Open("perm", "tcp://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`INSERT INTO t VALUES (1)`); !errors.Is(err, permdriver.ErrReadOnly) {
		t.Fatalf("remote write to replica: err = %v, want ErrReadOnly", err)
	}
	var n int
	if err := db.QueryRow(`SELECT count(*) FROM t`).Scan(&n); err != nil {
		t.Fatalf("remote read from replica: %v", err)
	}
}
