package driver

import (
	"context"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"perm/internal/engine"
	"perm/internal/value"
	"perm/internal/wire"
)

// connector dials (or embeds) one database; the sql.DB pool calls Connect
// for every pooled connection.
type connector struct {
	drv      *Driver
	addr     string     // remote mode when non-empty
	mem      *engine.DB // in-process mode otherwise
	readOnly bool       // `?readonly` DSN option: reject writes client-side
}

// Connect implements driver.Connector. Dialing and the wire handshake both
// observe ctx, so a short query deadline also bounds establishing the pooled
// connection it needs.
func (c *connector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.addr != "" {
		client, err := wire.DialContext(ctx, c.addr)
		if err != nil {
			return nil, err
		}
		return &conn{remote: client, readOnly: c.readOnly}, nil
	}
	return &conn{local: c.mem.NewSession(), readOnly: c.readOnly}, nil
}

func (c *connector) connect() (sqldriver.Conn, error) {
	return c.Connect(context.Background())
}

// Driver implements driver.Connector.
func (c *connector) Driver() sqldriver.Driver { return c.drv }

// conn is one pooled connection: a wire client (remote) or an engine session
// (in-process). Exactly one of the two is set.
type conn struct {
	remote   *wire.Client
	local    *engine.Session
	readOnly bool
}

var _ sqldriver.Conn = (*conn)(nil)
var _ sqldriver.QueryerContext = (*conn)(nil)
var _ sqldriver.ExecerContext = (*conn)(nil)
var _ sqldriver.Pinger = (*conn)(nil)
var _ sqldriver.Validator = (*conn)(nil)

// Prepare implements driver.Conn. Statements are prepared client-side (the
// engine has no server-side prepare): the text is kept and placeholders are
// interpolated at execution.
func (c *conn) Prepare(query string) (sqldriver.Stmt, error) {
	return &stmt{c: c, query: query, numInput: countPlaceholders(query)}, nil
}

// Close implements driver.Conn.
func (c *conn) Close() error {
	if c.remote != nil {
		return c.remote.Close()
	}
	return c.local.Close()
}

// Begin implements driver.Conn. The engine executes with autocommit only.
func (c *conn) Begin() (sqldriver.Tx, error) {
	return nil, fmt.Errorf("perm driver: transactions are not supported")
}

// IsValid implements driver.Validator, so the pool retires connections whose
// wire protocol state broke.
func (c *conn) IsValid() bool {
	return c.remote == nil || c.remote.Broken() == nil
}

// Ping implements driver.Pinger.
func (c *conn) Ping(ctx context.Context) error {
	rows, err := c.QueryContext(ctx, "SELECT 1", nil)
	if err != nil {
		return err
	}
	return rows.Close()
}

// QueryContext implements driver.QueryerContext.
func (c *conn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	sqlText, err := interpolate(query, args)
	if err != nil {
		return nil, err
	}
	if err := c.checkReadOnly(sqlText); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.remote != nil {
		stop := c.watchContext(ctx)
		wr, err := c.remote.Query(sqlText)
		if err != nil {
			stop()
			return nil, ctxOr(ctx, remoteErr(err))
		}
		// The watcher stays armed for the whole row stream; remoteRows.Close
		// disarms it.
		return &remoteRows{rows: wr, ctx: ctx, stop: stop}, nil
	}
	res, err := c.execLocal(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	return newLocalRows(res), nil
}

// ExecContext implements driver.ExecerContext.
func (c *conn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	sqlText, err := interpolate(query, args)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.checkReadOnly(sqlText); err != nil {
		return nil, err
	}
	var tag string
	if c.remote != nil {
		stop := c.watchContext(ctx)
		done, err := c.remote.Exec(sqlText)
		stop()
		if err != nil {
			return nil, ctxOr(ctx, remoteErr(err))
		}
		tag = done.Tag
	} else {
		res, err := c.execLocal(ctx, sqlText)
		if err != nil {
			return nil, err
		}
		tag = res.Tag
	}
	return result{tag: tag}, nil
}

// watchContext arms context cancellation for a remote request: if ctx ends
// while the wire client is blocked on the server, Abort unblocks it (the
// connection is sacrificed — the wire protocol has no cancel message — and
// the pool retires it through IsValid). The returned func disarms the
// watcher and must be called exactly once; wire.WatchCancel joins the
// watcher goroutine, after which the deadline is cleared so a fired (or
// too-late) Abort cannot bleed into the connection's next request. An abort
// that already broke this request keeps its effect — the failed read marked
// the client Broken before the disarm runs.
func (c *conn) watchContext(ctx context.Context) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	stop := wire.WatchCancel(ctx, c.remote.Abort)
	return func() {
		stop()
		c.remote.ResetDeadline()
	}
}

// ctxOr prefers the context's error over the transport error it caused.
func ctxOr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// remoteErr maps typed wire error codes back onto the driver's sentinel
// errors, so errors.Is(err, ErrReadOnly) works identically for remote and
// embedded connections.
func remoteErr(err error) error {
	var serr *wire.ServerError
	if errors.As(err, &serr) && serr.Code == wire.ErrCodeReadOnly {
		return fmt.Errorf("%w (%s)", ErrReadOnly, serr.Message)
	}
	return err
}

// checkReadOnly enforces the `?readonly` DSN option client-side: write
// statements fail with ErrReadOnly before anything is sent.
func (c *conn) checkReadOnly(sqlText string) error {
	if !c.readOnly {
		return nil
	}
	switch firstKeyword(sqlText) {
	case "select", "values", "explain", "show", "set", "(", "":
		// Reads and session-local statements. SET stays allowed: session
		// settings (contribution semantics, rewrite strategies) shape how
		// reads are answered and mutate nothing.
		return nil
	}
	return fmt.Errorf("%w (readonly connection)", ErrReadOnly)
}

// firstKeyword returns the statement's leading keyword, lowercased, skipping
// whitespace, comments and empty statements — the engine's parser skips
// leading semicolons too, so ";INSERT …" must classify as "insert", not as
// empty ("(" for a parenthesized query, "" for a genuinely empty statement).
func firstKeyword(s string) string {
	i := 0
	for i < len(s) {
		switch {
		case s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r' || s[i] == ';':
			i++
		case s[i] == '-' && i+1 < len(s) && s[i+1] == '-':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case s[i] == '/' && i+1 < len(s) && s[i+1] == '*':
			depth := 1
			i += 2
			for i < len(s) && depth > 0 {
				switch {
				case i+1 < len(s) && s[i] == '/' && s[i+1] == '*':
					depth++
					i += 2
				case i+1 < len(s) && s[i] == '*' && s[i+1] == '/':
					depth--
					i += 2
				default:
					i++
				}
			}
		case s[i] == '(':
			return "("
		default:
			j := i
			for j < len(s) && (s[j] == '_' || 'a' <= s[j]|0x20 && s[j]|0x20 <= 'z') {
				j++
			}
			return strings.ToLower(s[i:j])
		}
	}
	return ""
}

// execLocal runs a statement on the embedded session with the caller's
// context cancellation armed as the engine interrupt.
func (c *conn) execLocal(ctx context.Context, sqlText string) (*engine.Result, error) {
	if done := ctx.Done(); done != nil {
		c.local.SetInterrupt(done)
		defer c.local.SetInterrupt(nil)
	}
	res, err := c.local.Execute(sqlText)
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return res, err
}

// --- statements ----------------------------------------------------------------

type stmt struct {
	c        *conn
	query    string
	numInput int
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return s.numInput }
func (s *stmt) namedValues(args []sqldriver.Value) []sqldriver.NamedValue {
	out := make([]sqldriver.NamedValue, len(args))
	for i, a := range args {
		out[i] = sqldriver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return out
}

func (s *stmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	return s.c.ExecContext(context.Background(), s.query, s.namedValues(args))
}

func (s *stmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	return s.c.QueryContext(context.Background(), s.query, s.namedValues(args))
}

// ExecContext implements driver.StmtExecContext, so prepared statements get
// the same cancellation behavior as conn-level Exec.
func (s *stmt) ExecContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	return s.c.ExecContext(ctx, s.query, args)
}

// QueryContext implements driver.StmtQueryContext.
func (s *stmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	return s.c.QueryContext(ctx, s.query, args)
}

// --- results -------------------------------------------------------------------

// result derives RowsAffected from the command tag ("INSERT 2", "DELETE 1").
type result struct{ tag string }

func (result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("perm driver: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) {
	fields := strings.Fields(r.tag)
	if len(fields) == 0 {
		return 0, nil
	}
	n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		return 0, nil // DDL tags ("CREATE TABLE") affect no rows
	}
	return n, nil
}

// --- rows ----------------------------------------------------------------------

// remoteRows streams a wire result set. The connection's context watcher
// stays armed until Close (database/sql always calls it), so cancellation
// can unblock a stalled stream.
type remoteRows struct {
	rows *wire.Rows
	ctx  context.Context
	stop func()
}

func (r *remoteRows) Columns() []string { return r.rows.Desc.Names }

func (r *remoteRows) Close() error {
	err := r.rows.Close()
	if r.stop != nil {
		r.stop()
		r.stop = nil
	}
	if err != nil && r.ctx != nil {
		return ctxOr(r.ctx, err)
	}
	return err
}

func (r *remoteRows) Next(dest []sqldriver.Value) error {
	row, err := r.rows.Next()
	if err != nil {
		if r.ctx != nil {
			return ctxOr(r.ctx, err)
		}
		return err
	}
	if row == nil {
		return io.EOF
	}
	for i := range dest {
		if i < len(row) {
			dest[i] = toDriverValue(row[i])
		} else {
			dest[i] = nil
		}
	}
	return nil
}

// ColumnTypeDatabaseTypeName reports the engine type name ("INTEGER",
// "TEXT", …) for database/sql's ColumnTypes.
func (r *remoteRows) ColumnTypeDatabaseTypeName(index int) string {
	return typeNameOf(r.rows.Desc.Kinds[index])
}

// localRows iterates a materialized embedded result.
type localRows struct {
	cols  []string
	kinds []value.Kind
	rows  []value.Row
	pos   int
}

func newLocalRows(res *engine.Result) *localRows {
	lr := &localRows{cols: res.Columns, rows: res.Rows}
	lr.kinds = make([]value.Kind, len(res.Columns))
	for i := 0; i < len(lr.kinds) && i < len(res.Schema); i++ {
		lr.kinds[i] = res.Schema[i].Type
	}
	return lr
}

func (r *localRows) Columns() []string { return r.cols }
func (r *localRows) Close() error      { r.rows = nil; return nil }

func (r *localRows) Next(dest []sqldriver.Value) error {
	if r.pos >= len(r.rows) {
		return io.EOF
	}
	row := r.rows[r.pos]
	r.pos++
	for i := range dest {
		if i < len(row) {
			dest[i] = toDriverValue(row[i])
		} else {
			dest[i] = nil
		}
	}
	return nil
}

func (r *localRows) ColumnTypeDatabaseTypeName(index int) string {
	return typeNameOf(r.kinds[index])
}

func typeNameOf(k value.Kind) string {
	switch k {
	case value.KindBool:
		return "BOOLEAN"
	case value.KindInt:
		return "INTEGER"
	case value.KindFloat:
		return "FLOAT"
	case value.KindString:
		return "TEXT"
	}
	return ""
}

func toDriverValue(v value.Value) sqldriver.Value {
	switch v.K {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.B
	case value.KindInt:
		return v.I
	case value.KindFloat:
		return v.F
	case value.KindString:
		return v.S
	}
	return nil
}

// --- placeholder interpolation -------------------------------------------------

// placeholderPositions returns the byte offsets of `?` markers that are
// outside single-quoted string literals, double-quoted identifiers, and
// `--` / `/* */` comments — the lexical contexts of the SQL dialect in
// which a ? is not a placeholder.
func placeholderPositions(query string) []int {
	var pos []int
	for i := 0; i < len(query); i++ {
		switch query[i] {
		case '\'':
			i = skipQuoted(query, i, '\'')
		case '"':
			i = skipQuoted(query, i, '"')
		case '-':
			if i+1 < len(query) && query[i+1] == '-' {
				for i < len(query) && query[i] != '\n' {
					i++
				}
			}
		case '/':
			if i+1 < len(query) && query[i+1] == '*' {
				// Block comments nest, matching the SQL lexer.
				depth := 1
				i += 2
				for i < len(query) && depth > 0 {
					switch {
					case i+1 < len(query) && query[i] == '/' && query[i+1] == '*':
						depth++
						i += 2
					case i+1 < len(query) && query[i] == '*' && query[i+1] == '/':
						depth--
						i += 2
					default:
						i++
					}
				}
				i-- // outer loop increments past the comment's last byte
			}
		case '?':
			pos = append(pos, i)
		}
	}
	return pos
}

// skipQuoted returns the index of the closing quote of the quoted region
// starting at start (a doubled quote escapes itself), or the end of the
// string when unterminated.
func skipQuoted(s string, start int, q byte) int {
	for i := start + 1; i < len(s); i++ {
		if s[i] == q {
			if i+1 < len(s) && s[i+1] == q {
				i++ // escaped quote, stay inside
				continue
			}
			return i
		}
	}
	return len(s)
}

// countPlaceholders reports how many `?` placeholders a statement binds.
func countPlaceholders(query string) int { return len(placeholderPositions(query)) }

// interpolate substitutes `?` placeholders with SQL literals. The engine has
// no parameter protocol, so this is the driver's binding step; literal
// rendering goes through value.SQLLiteral and quotes/escapes strings.
func interpolate(query string, args []sqldriver.NamedValue) (string, error) {
	pos := placeholderPositions(query)
	if len(pos) != len(args) {
		return "", fmt.Errorf("perm driver: %d arguments for %d placeholders", len(args), len(pos))
	}
	if len(args) == 0 {
		return query, nil
	}
	var b strings.Builder
	b.Grow(len(query) + 16*len(args))
	last := 0
	for k, p := range pos {
		b.WriteString(query[last:p])
		lit, err := literal(args[k].Value)
		if err != nil {
			return "", err
		}
		b.WriteString(lit)
		last = p + 1
	}
	b.WriteString(query[last:])
	return b.String(), nil
}

// literal renders one bound argument as a SQL literal.
func literal(v sqldriver.Value) (string, error) {
	switch x := v.(type) {
	case nil:
		return "NULL", nil
	case bool:
		return value.NewBool(x).SQLLiteral(), nil
	case int64:
		return value.NewInt(x).SQLLiteral(), nil
	case float64:
		// The SQL dialect has no literal form for non-finite floats; reject
		// them here rather than emitting tokens the parser misreads.
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return "", fmt.Errorf("perm driver: cannot bind non-finite float %v", x)
		}
		return value.NewFloat(x).SQLLiteral(), nil
	case string:
		return value.NewString(x).SQLLiteral(), nil
	case []byte:
		if x == nil {
			return "NULL", nil // database/sql convention: nil []byte is NULL
		}
		return value.NewString(string(x)).SQLLiteral(), nil
	case time.Time:
		return value.NewString(x.Format(time.RFC3339Nano)).SQLLiteral(), nil
	}
	return "", fmt.Errorf("perm driver: unsupported argument type %T", v)
}
