package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"strconv"
	"strings"
	"time"

	"perm/internal/cluster"
	"perm/internal/engine"
	"perm/internal/value"
	"perm/internal/wire"
)

// connector dials (or embeds) one database; the sql.DB pool calls Connect
// for every pooled connection.
type connector struct {
	drv      *Driver
	addr     string     // remote mode when non-empty
	hosts    []string   // perm:// multi-host mode when non-empty
	readPref string     // perm:// role preference: "" ("primary"), "replica", "any"
	mem      *engine.DB // in-process mode otherwise
	readOnly bool       // `?readonly` DSN option: reject writes client-side
}

// Connect implements driver.Connector. Dialing and the wire handshake both
// observe ctx, so a short query deadline also bounds establishing the pooled
// connection it needs.
func (c *connector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(c.hosts) > 0 {
		return c.connectMulti(ctx)
	}
	if c.addr != "" {
		client, err := wire.DialContext(ctx, c.addr)
		if err != nil {
			return nil, err
		}
		return &conn{remote: client, readOnly: c.readOnly}, nil
	}
	return &conn{local: c.mem.NewSession(), readOnly: c.readOnly}, nil
}

// connectMulti dials a perm:// member set: each candidate's handshake
// reports its role and fencing epoch, so the connector classifies members
// without issuing a single query. readpref=primary (the default) demands the
// writable primary; readpref=replica prefers a replica but falls back to the
// primary (a degraded cluster still answers reads); readpref=any takes the
// first member that answers. Hosts are tried in random order so a pool's
// replica connections spread across the member set.
func (c *connector) connectMulti(ctx context.Context) (sqldriver.Conn, error) {
	hosts := c.hosts
	if len(hosts) > 1 {
		hosts = append([]string(nil), hosts...)
		rand.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	}
	var fallback *wire.Client
	var attempts []string
	for _, h := range hosts {
		client, err := wire.DialContext(ctx, h)
		if err != nil {
			attempts = append(attempts, fmt.Sprintf("%s: %v", h, err))
			continue
		}
		role := client.Server().Role
		switch c.readPref {
		case "any":
			return &conn{remote: client, readOnly: c.readOnly}, nil
		case "replica":
			if role == "replica" {
				return &conn{remote: client, readOnly: c.readOnly}, nil
			}
			// Remember one non-replica as the fallback; keep probing for a
			// real replica.
			if fallback == nil {
				fallback = client
			} else {
				client.Close()
			}
			attempts = append(attempts, h+": role "+role)
		default: // "primary"
			// Pre-cluster servers report no role; treat them as writable
			// rather than unusable.
			if role != "replica" {
				return &conn{remote: client, readOnly: c.readOnly}, nil
			}
			client.Close()
			attempts = append(attempts, h+": role replica")
		}
	}
	if fallback != nil {
		return &conn{remote: fallback, readOnly: c.readOnly}, nil
	}
	pref := c.readPref
	if pref == "" {
		pref = "primary"
	}
	return nil, fmt.Errorf("perm driver: no member matched readpref=%s (%s)",
		pref, strings.Join(attempts, "; "))
}

func (c *connector) connect() (sqldriver.Conn, error) {
	return c.Connect(context.Background())
}

// Driver implements driver.Connector.
func (c *connector) Driver() sqldriver.Driver { return c.drv }

// conn is one pooled connection: a wire client (remote) or an engine session
// (in-process). Exactly one of the two is set.
type conn struct {
	remote   *wire.Client
	local    *engine.Session
	readOnly bool
	// stmtSeq names this connection's server-side prepared statements.
	stmtSeq int
}

var _ sqldriver.Conn = (*conn)(nil)
var _ sqldriver.ConnPrepareContext = (*conn)(nil)
var _ sqldriver.QueryerContext = (*conn)(nil)
var _ sqldriver.ExecerContext = (*conn)(nil)
var _ sqldriver.Pinger = (*conn)(nil)
var _ sqldriver.Validator = (*conn)(nil)
var _ sqldriver.ConnBeginTx = (*conn)(nil)

// defaultFetchSize is the cursor batch the driver requests per round trip
// when streaming a query result: large enough to amortize the request
// latency, small enough that client and server memory stay bounded on huge
// provenance results.
const defaultFetchSize = 512

// Prepare implements driver.Conn: statements prepare server-side (an engine
// prepared statement for embedded connections, a wire Parse for remote
// ones), and `?` placeholders bind as typed parameters at execution —
// argument values never travel as interpolated SQL text.
func (c *conn) Prepare(query string) (sqldriver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext implements driver.ConnPrepareContext.
func (c *conn) PrepareContext(ctx context.Context, query string) (sqldriver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.remote != nil {
		c.stmtSeq++
		name := "s" + strconv.Itoa(c.stmtSeq)
		stop := c.watchContext(ctx)
		n, err := c.remote.Prepare(name, query)
		stop()
		if err != nil {
			return nil, ctxOr(ctx, remoteErr(err))
		}
		return &stmt{c: c, query: query, name: name, numInput: n}, nil
	}
	prep, err := c.local.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{c: c, query: query, prepared: prep, numInput: prep.NumParams()}, nil
}

// Close implements driver.Conn.
func (c *conn) Close() error {
	if c.remote != nil {
		return c.remote.Close()
	}
	return c.local.Close()
}

// Begin implements driver.Conn.
func (c *conn) Begin() (sqldriver.Tx, error) {
	return c.BeginTx(context.Background(), sqldriver.TxOptions{})
}

// BeginTx implements driver.ConnBeginTx: BEGIN opens a snapshot-isolation
// transaction on this connection's session; Commit/Rollback send COMMIT and
// ROLLBACK through the same path as any statement. Snapshot isolation covers
// every isolation level up to repeatable read (each is weaker); SERIALIZABLE
// would over-promise — first-committer-wins admits write skew — so it is
// refused rather than silently downgraded.
func (c *conn) BeginTx(ctx context.Context, opts sqldriver.TxOptions) (sqldriver.Tx, error) {
	switch sql.IsolationLevel(opts.Isolation) {
	case sql.LevelDefault, sql.LevelReadUncommitted, sql.LevelReadCommitted,
		sql.LevelRepeatableRead, sql.LevelSnapshot:
	default:
		return nil, fmt.Errorf("perm driver: isolation level %s is not supported (snapshot isolation is the strongest offered)",
			sql.IsolationLevel(opts.Isolation))
	}
	if _, err := c.exec(ctx, "BEGIN", "", nil); err != nil {
		return nil, err
	}
	return &tx{c: c}, nil
}

// tx finishes an open transaction. database/sql serializes it against the
// connection's statements, exactly like the engine's session contract wants.
type tx struct{ c *conn }

func (t *tx) Commit() error {
	_, err := t.c.exec(context.Background(), "COMMIT", "", nil)
	return err
}

func (t *tx) Rollback() error {
	_, err := t.c.exec(context.Background(), "ROLLBACK", "", nil)
	return err
}

// IsValid implements driver.Validator, so the pool retires connections whose
// wire protocol state broke.
func (c *conn) IsValid() bool {
	return c.remote == nil || c.remote.Broken() == nil
}

// Ping implements driver.Pinger.
func (c *conn) Ping(ctx context.Context) error {
	rows, err := c.QueryContext(ctx, "SELECT 1", nil)
	if err != nil {
		return err
	}
	return rows.Close()
}

// QueryContext implements driver.QueryerContext: `?` arguments travel as
// typed wire parameters (a one-shot server-side bind — parse + bind +
// execute in one round trip), never as interpolated SQL text, and results
// stream — a cursor with batched fetches remotely, the live executor
// iterator tree embedded.
func (c *conn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	return c.query(ctx, query, "", args)
}

// query runs a statement by text (name empty) or by prepared-statement name.
func (c *conn) query(ctx context.Context, sqlText, name string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	if name == "" {
		if err := c.bindCheck(sqlText, args); err != nil {
			return nil, err
		}
	}
	if err := c.checkReadOnly(sqlText); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.remote != nil {
		stop := c.watchContext(ctx)
		if name == "" && len(args) == 0 {
			wr, err := c.remote.Query(sqlText)
			if err != nil {
				stop()
				return nil, ctxOr(ctx, remoteErr(err))
			}
			// The watcher stays armed for the whole row stream;
			// remoteRows.Close disarms it.
			return &remoteRows{rows: wr, ctx: ctx, stop: stop}, nil
		}
		vals, err := toEngineValues(args)
		if err != nil {
			stop()
			return nil, err
		}
		cur, err := c.remote.Execute(name, sqlText, vals, defaultFetchSize)
		if err != nil {
			stop()
			return nil, ctxOr(ctx, remoteErr(err))
		}
		return &cursorRows{cur: cur, ctx: ctx, stop: stop}, nil
	}
	vals, err := toEngineValues(args)
	if err != nil {
		return nil, err
	}
	return c.queryLocal(ctx, func() (*engine.Rows, error) {
		if len(vals) == 0 {
			return c.local.Query(sqlText)
		}
		prep, err := c.local.Prepare(sqlText)
		if err != nil {
			return nil, err
		}
		return prep.Query(vals...)
	})
}

// ExecContext implements driver.ExecerContext; arguments bind server-side
// exactly as in QueryContext.
func (c *conn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	return c.exec(ctx, query, "", args)
}

func (c *conn) exec(ctx context.Context, sqlText, name string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	if name == "" {
		if err := c.bindCheck(sqlText, args); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.checkReadOnly(sqlText); err != nil {
		return nil, err
	}
	var tag string
	if c.remote != nil {
		stop := c.watchContext(ctx)
		var done wire.Complete
		var err error
		if name == "" && len(args) == 0 {
			done, err = c.remote.Exec(sqlText)
		} else {
			var vals []value.Value
			vals, err = toEngineValues(args)
			if err != nil {
				stop()
				return nil, err
			}
			done, err = c.remote.ExecuteDrain(name, sqlText, vals)
		}
		stop()
		if err != nil {
			return nil, ctxOr(ctx, remoteErr(err))
		}
		tag = done.Tag
	} else {
		vals, err := toEngineValues(args)
		if err != nil {
			return nil, err
		}
		res, err := c.execLocal(ctx, func() (*engine.Result, error) {
			if len(vals) == 0 {
				return c.local.Execute(sqlText)
			}
			prep, err := c.local.Prepare(sqlText)
			if err != nil {
				return nil, err
			}
			return prep.Exec(vals...)
		})
		if err != nil {
			return nil, err
		}
		tag = res.Tag
	}
	return result{tag: tag}, nil
}

// bindCheck verifies the argument count against the driver's placeholder
// scanner before anything hits the wire — the server re-checks
// authoritatively with its parser; the differential and fuzz suites pin the
// two scanners to agree.
func (c *conn) bindCheck(query string, args []sqldriver.NamedValue) error {
	if n := countPlaceholders(query); n != len(args) {
		return fmt.Errorf("perm driver: %d arguments for %d placeholders", len(args), n)
	}
	return nil
}

// watchContext arms context cancellation for a remote request: if ctx ends
// while the wire client is blocked on the server, Abort unblocks it (the
// connection is sacrificed — the wire protocol has no cancel message — and
// the pool retires it through IsValid). The returned func disarms the
// watcher and must be called exactly once; wire.WatchCancel joins the
// watcher goroutine, after which the deadline is cleared so a fired (or
// too-late) Abort cannot bleed into the connection's next request. An abort
// that already broke this request keeps its effect — the failed read marked
// the client Broken before the disarm runs.
func (c *conn) watchContext(ctx context.Context) func() {
	if ctx.Done() == nil {
		return func() {}
	}
	stop := wire.WatchCancel(ctx, c.remote.Abort)
	return func() {
		stop()
		c.remote.ResetDeadline()
	}
}

// ctxOr prefers the context's error over the transport error it caused.
func ctxOr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// remoteErr maps typed wire error codes back onto the driver's sentinel
// errors, so errors.Is(err, ErrReadOnly) and errors.Is(err, ErrStaleEpoch)
// work identically for remote and embedded connections.
func remoteErr(err error) error {
	var serr *wire.ServerError
	if errors.As(err, &serr) {
		switch serr.Code {
		case wire.ErrCodeReadOnly:
			return fmt.Errorf("%w (%s)", ErrReadOnly, serr.Message)
		case wire.ErrCodeStaleEpoch:
			return fmt.Errorf("%w (%s)", ErrStaleEpoch, serr.Message)
		case wire.ErrCodeWriteConflict:
			return fmt.Errorf("%w (%s)", ErrWriteConflict, serr.Message)
		}
	}
	return err
}

// checkReadOnly enforces the `?readonly` DSN option client-side: write
// statements fail with ErrReadOnly before anything is sent.
func (c *conn) checkReadOnly(sqlText string) error {
	if !c.readOnly {
		return nil
	}
	switch firstKeyword(sqlText) {
	case "select", "values", "explain", "show", "set", "(", "":
		// Reads and session-local statements. SET stays allowed: session
		// settings (contribution semantics, rewrite strategies) shape how
		// reads are answered and mutate nothing.
		return nil
	case "begin", "start", "commit", "end", "rollback", "abort":
		// Transaction control is allowed: a read-only snapshot transaction is
		// perfectly useful on a replica, and any write inside it is rejected
		// statement by statement anyway.
		return nil
	}
	return fmt.Errorf("%w (readonly connection)", ErrReadOnly)
}

// firstKeyword returns the statement's leading keyword, lowercased, skipping
// whitespace, comments and empty statements. The implementation lives in
// internal/cluster (the routing proxy classifies statements with the same
// scanner, and the two must never disagree on what counts as a read).
func firstKeyword(s string) string { return cluster.FirstKeyword(s) }

// execLocal runs one materialized statement on the embedded session with
// the caller's context cancellation armed as the engine interrupt — the
// single home of the arm/disarm/relabel sequence for every local Exec path.
func (c *conn) execLocal(ctx context.Context, run func() (*engine.Result, error)) (*engine.Result, error) {
	if done := ctx.Done(); done != nil {
		c.local.SetInterrupt(done)
		defer c.local.SetInterrupt(nil)
	}
	res, err := run()
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return res, err
}

// queryLocal opens a streaming statement on the embedded session. The
// engine interrupt stays armed for the whole stream — a canceled context
// unwinds a half-read result — and is disarmed when the rows close.
func (c *conn) queryLocal(ctx context.Context, open func() (*engine.Rows, error)) (sqldriver.Rows, error) {
	disarm := func() {}
	if done := ctx.Done(); done != nil {
		c.local.SetInterrupt(done)
		disarm = func() { c.local.SetInterrupt(nil) }
	}
	rows, err := open()
	if err != nil {
		disarm()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	return newLocalRows(rows, ctx, disarm), nil
}

// --- statements ----------------------------------------------------------------

// stmt is a prepared statement: a server-side named statement on remote
// connections (name set), an engine prepared statement embedded (prepared
// set). Execution always binds arguments as typed parameters.
type stmt struct {
	c        *conn
	query    string
	numInput int
	name     string           // remote: wire statement name
	prepared *engine.Prepared // embedded: engine prepared statement
	closed   bool
}

// Close deallocates the server-side statement.
func (s *stmt) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.c.remote != nil && s.c.remote.Broken() == nil {
		if err := s.c.remote.CloseStmt(s.name); err != nil {
			return remoteErr(err)
		}
	}
	return nil
}

func (s *stmt) NumInput() int { return s.numInput }
func (s *stmt) namedValues(args []sqldriver.Value) []sqldriver.NamedValue {
	out := make([]sqldriver.NamedValue, len(args))
	for i, a := range args {
		out[i] = sqldriver.NamedValue{Ordinal: i + 1, Value: a}
	}
	return out
}

func (s *stmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	return s.ExecContext(context.Background(), s.namedValues(args))
}

func (s *stmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	return s.QueryContext(context.Background(), s.namedValues(args))
}

// ExecContext implements driver.StmtExecContext, so prepared statements get
// the same cancellation behavior as conn-level Exec.
func (s *stmt) ExecContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	if s.prepared != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.c.checkReadOnly(s.query); err != nil {
			return nil, err
		}
		vals, err := toEngineValues(args)
		if err != nil {
			return nil, err
		}
		res, err := s.c.execLocal(ctx, func() (*engine.Result, error) {
			return s.prepared.Exec(vals...)
		})
		if err != nil {
			return nil, err
		}
		return result{tag: res.Tag}, nil
	}
	return s.c.exec(ctx, s.query, s.name, args)
}

// QueryContext implements driver.StmtQueryContext.
func (s *stmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	if s.prepared != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.c.checkReadOnly(s.query); err != nil {
			return nil, err
		}
		vals, err := toEngineValues(args)
		if err != nil {
			return nil, err
		}
		return s.c.queryLocal(ctx, func() (*engine.Rows, error) {
			return s.prepared.Query(vals...)
		})
	}
	return s.c.query(ctx, s.query, s.name, args)
}

// --- results -------------------------------------------------------------------

// result derives RowsAffected from the command tag ("INSERT 2", "DELETE 1").
type result struct{ tag string }

func (result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("perm driver: LastInsertId is not supported")
}

func (r result) RowsAffected() (int64, error) {
	fields := strings.Fields(r.tag)
	if len(fields) == 0 {
		return 0, nil
	}
	n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		return 0, nil // DDL tags ("CREATE TABLE") affect no rows
	}
	return n, nil
}

// --- rows ----------------------------------------------------------------------

// remoteRows streams a wire result set. The connection's context watcher
// stays armed until Close (database/sql always calls it), so cancellation
// can unblock a stalled stream.
type remoteRows struct {
	rows *wire.Rows
	ctx  context.Context
	stop func()
}

func (r *remoteRows) Columns() []string { return r.rows.Desc.Names }

func (r *remoteRows) Close() error {
	err := r.rows.Close()
	if r.stop != nil {
		r.stop()
		r.stop = nil
	}
	if err != nil && r.ctx != nil {
		return ctxOr(r.ctx, err)
	}
	return err
}

func (r *remoteRows) Next(dest []sqldriver.Value) error {
	row, err := r.rows.Next()
	if err != nil {
		if r.ctx != nil {
			return ctxOr(r.ctx, err)
		}
		return err
	}
	if row == nil {
		return io.EOF
	}
	for i := range dest {
		if i < len(row) {
			dest[i] = toDriverValue(row[i])
		} else {
			dest[i] = nil
		}
	}
	return nil
}

// ColumnTypeDatabaseTypeName reports the engine type name ("INTEGER",
// "TEXT", …) for database/sql's ColumnTypes.
func (r *remoteRows) ColumnTypeDatabaseTypeName(index int) string {
	return typeNameOf(r.rows.Desc.Kinds[index])
}

// cursorRows streams a server-side portal: rows arrive in batches, fetched
// on demand, so neither side materializes the result. The connection's
// context watcher stays armed until Close (fetch round trips block on the
// server too).
type cursorRows struct {
	cur  *wire.Cursor
	ctx  context.Context
	stop func()
}

func (r *cursorRows) Columns() []string { return r.cur.Desc.Names }

func (r *cursorRows) Close() error {
	err := r.cur.Close()
	if r.stop != nil {
		r.stop()
		r.stop = nil
	}
	if err != nil && r.ctx != nil {
		return ctxOr(r.ctx, remoteErr(err))
	}
	if err != nil {
		return remoteErr(err)
	}
	return nil
}

func (r *cursorRows) Next(dest []sqldriver.Value) error {
	row, err := r.cur.Next()
	if err != nil {
		if r.ctx != nil {
			return ctxOr(r.ctx, remoteErr(err))
		}
		return remoteErr(err)
	}
	if row == nil {
		return io.EOF
	}
	for i := range dest {
		if i < len(row) {
			dest[i] = toDriverValue(row[i])
		} else {
			dest[i] = nil
		}
	}
	return nil
}

func (r *cursorRows) ColumnTypeDatabaseTypeName(index int) string {
	return typeNameOf(r.cur.Desc.Kinds[index])
}

// localRows streams an embedded result: the engine's live iterator tree,
// pulled one row per Next — embedded huge provenance results stay
// un-materialized exactly like remote ones.
type localRows struct {
	rows   *engine.Rows
	kinds  []value.Kind
	ctx    context.Context
	disarm func()
}

func newLocalRows(rows *engine.Rows, ctx context.Context, disarm func()) *localRows {
	lr := &localRows{rows: rows, ctx: ctx, disarm: disarm}
	lr.kinds = make([]value.Kind, len(rows.Columns))
	for i := 0; i < len(lr.kinds) && i < len(rows.Schema); i++ {
		lr.kinds[i] = rows.Schema[i].Type
	}
	return lr
}

func (r *localRows) Columns() []string { return r.rows.Columns }

func (r *localRows) Close() error {
	err := r.rows.Close()
	if r.disarm != nil {
		r.disarm()
		r.disarm = nil
	}
	return err
}

func (r *localRows) Next(dest []sqldriver.Value) error {
	row, err := r.rows.Next()
	if err != nil {
		if r.ctx != nil {
			if cerr := r.ctx.Err(); cerr != nil {
				return cerr
			}
		}
		return err
	}
	if row == nil {
		return io.EOF
	}
	for i := range dest {
		if i < len(row) {
			dest[i] = toDriverValue(row[i])
		} else {
			dest[i] = nil
		}
	}
	return nil
}

func (r *localRows) ColumnTypeDatabaseTypeName(index int) string {
	return typeNameOf(r.kinds[index])
}

func typeNameOf(k value.Kind) string {
	switch k {
	case value.KindBool:
		return "BOOLEAN"
	case value.KindInt:
		return "INTEGER"
	case value.KindFloat:
		return "FLOAT"
	case value.KindString:
		return "TEXT"
	}
	return ""
}

// toEngineValues converts bound database/sql arguments into engine values —
// the typed-bind analog of the literal renderer: same supported types, same
// text forms for []byte and time.Time, but no SQL-text round trip.
func toEngineValues(args []sqldriver.NamedValue) ([]value.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]value.Value, len(args))
	for i, a := range args {
		v, err := toEngineValue(a.Value)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func toEngineValue(v sqldriver.Value) (value.Value, error) {
	switch x := v.(type) {
	case nil:
		return value.Null, nil
	case bool:
		return value.NewBool(x), nil
	case int64:
		return value.NewInt(x), nil
	case float64:
		// The engine's value domain has no non-finite floats (comparisons,
		// keys and literals all assume finiteness), so binds reject them
		// exactly as the literal renderer always has.
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return value.Value{}, fmt.Errorf("perm driver: cannot bind non-finite float %v", x)
		}
		return value.NewFloat(x), nil
	case string:
		return value.NewString(x), nil
	case []byte:
		if x == nil {
			return value.Null, nil // database/sql convention: nil []byte is NULL
		}
		return value.NewString(string(x)), nil
	case time.Time:
		return value.NewString(x.Format(time.RFC3339Nano)), nil
	}
	return value.Value{}, fmt.Errorf("perm driver: unsupported argument type %T", v)
}

func toDriverValue(v value.Value) sqldriver.Value {
	switch v.K {
	case value.KindNull:
		return nil
	case value.KindBool:
		return v.B
	case value.KindInt:
		return v.I
	case value.KindFloat:
		return v.F
	case value.KindString:
		return v.S
	}
	return nil
}

// --- placeholder interpolation -------------------------------------------------

// placeholderPositions returns the byte offsets of `?` markers that are
// outside single-quoted string literals, double-quoted identifiers, and
// `--` / `/* */` comments — the lexical contexts of the SQL dialect in
// which a ? is not a placeholder.
func placeholderPositions(query string) []int {
	var pos []int
	for i := 0; i < len(query); i++ {
		switch query[i] {
		case '\'':
			i = skipQuoted(query, i, '\'')
		case '"':
			i = skipQuoted(query, i, '"')
		case '-':
			if i+1 < len(query) && query[i+1] == '-' {
				for i < len(query) && query[i] != '\n' {
					i++
				}
			}
		case '/':
			if i+1 < len(query) && query[i+1] == '*' {
				// Block comments nest, matching the SQL lexer.
				depth := 1
				i += 2
				for i < len(query) && depth > 0 {
					switch {
					case i+1 < len(query) && query[i] == '/' && query[i+1] == '*':
						depth++
						i += 2
					case i+1 < len(query) && query[i] == '*' && query[i+1] == '/':
						depth--
						i += 2
					default:
						i++
					}
				}
				i-- // outer loop increments past the comment's last byte
			}
		case '?':
			pos = append(pos, i)
		}
	}
	return pos
}

// skipQuoted returns the index of the closing quote of the quoted region
// starting at start (a doubled quote escapes itself), or the end of the
// string when unterminated.
func skipQuoted(s string, start int, q byte) int {
	for i := start + 1; i < len(s); i++ {
		if s[i] == q {
			if i+1 < len(s) && s[i+1] == q {
				i++ // escaped quote, stay inside
				continue
			}
			return i
		}
	}
	return len(s)
}

// countPlaceholders reports how many `?` placeholders a statement binds.
// The count is the driver's fast pre-flight check (and the fuzz target
// pinning this scanner to the engine lexer); the server's parser is the
// authority at execution time.
func countPlaceholders(query string) int { return len(placeholderPositions(query)) }

// interpolate substitutes `?` placeholders with SQL literals. It is no
// longer on any execution path — parameters travel as typed wire binds —
// but remains as the reference for the literal forms binds must match
// (interpolate_test pins them, the differential suite compares all three
// paths).
func interpolate(query string, args []sqldriver.NamedValue) (string, error) {
	pos := placeholderPositions(query)
	if len(pos) != len(args) {
		return "", fmt.Errorf("perm driver: %d arguments for %d placeholders", len(args), len(pos))
	}
	if len(args) == 0 {
		return query, nil
	}
	var b strings.Builder
	b.Grow(len(query) + 16*len(args))
	last := 0
	for k, p := range pos {
		b.WriteString(query[last:p])
		lit, err := literal(args[k].Value)
		if err != nil {
			return "", err
		}
		b.WriteString(lit)
		last = p + 1
	}
	b.WriteString(query[last:])
	return b.String(), nil
}

// literal renders one bound argument as a SQL literal.
func literal(v sqldriver.Value) (string, error) {
	switch x := v.(type) {
	case nil:
		return "NULL", nil
	case bool:
		return value.NewBool(x).SQLLiteral(), nil
	case int64:
		return value.NewInt(x).SQLLiteral(), nil
	case float64:
		// The SQL dialect has no literal form for non-finite floats; reject
		// them here rather than emitting tokens the parser misreads.
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return "", fmt.Errorf("perm driver: cannot bind non-finite float %v", x)
		}
		return value.NewFloat(x).SQLLiteral(), nil
	case string:
		return value.NewString(x).SQLLiteral(), nil
	case []byte:
		if x == nil {
			return "NULL", nil // database/sql convention: nil []byte is NULL
		}
		return value.NewString(string(x)).SQLLiteral(), nil
	case time.Time:
		return value.NewString(x.Format(time.RFC3339Nano)).SQLLiteral(), nil
	}
	return "", fmt.Errorf("perm driver: unsupported argument type %T", v)
}
