package driver_test

// Multi-host perm:// DSNs: connect-time member selection by role, read
// preferences, and the typed stale-epoch error mapping.

import (
	"database/sql"
	"errors"
	"strings"
	"testing"

	"perm/internal/engine"
	"perm/internal/server"

	permdriver "perm/driver"
)

// TestMultiHostDSNErrors pins the parse failures: they must surface at pool
// use, naming the offending DSN.
func TestMultiHostDSNErrors(t *testing.T) {
	cases := []struct{ dsn, want string }{
		{"perm://", "no member addresses"},
		{"perm:///?readpref=replica", "no member addresses"},
		{"perm://h1,h2/?readpref=nearest", "bad value"},
		{"perm://h1/?readpref=", "bad value"},
	}
	for _, c := range cases {
		db, err := sql.Open("perm", c.dsn)
		if err == nil {
			err = db.Ping()
			db.Close()
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("DSN %q: error %v, want mention of %q", c.dsn, err, c.want)
		}
	}
}

// multiHostCluster is one writable primary and one read-only replica server,
// both over independent engines so the answering member is identifiable.
func multiHostCluster(t *testing.T) (primaryAddr, replicaAddr string) {
	t.Helper()
	pdb := engine.NewDB()
	mustExecute(t, pdb, `CREATE TABLE t (v string)`)
	mustExecute(t, pdb, `INSERT INTO t VALUES ('on-primary')`)
	pdb.SetEpoch(1)

	rdb := engine.NewDB()
	mustExecute(t, rdb, `CREATE TABLE t (v string)`)
	mustExecute(t, rdb, `INSERT INTO t VALUES ('on-replica')`)
	rdb.SetEpoch(1)
	rdb.SetReadOnly(true)

	return startServer(t, pdb, server.Config{}), startServer(t, rdb, server.Config{})
}

func mustExecute(t *testing.T, db *engine.DB, sqlText string) {
	t.Helper()
	s := db.NewSession()
	defer s.Close()
	if _, err := s.Execute(sqlText); err != nil {
		t.Fatalf("%s: %v", sqlText, err)
	}
}

func queryOne(t *testing.T, db *sql.DB, q string) string {
	t.Helper()
	var v string
	if err := db.QueryRow(q).Scan(&v); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return v
}

func TestMultiHostReadPref(t *testing.T) {
	primary, replica := multiHostCluster(t)
	hosts := primary + "," + replica

	// Default (primary): every connection must land on the writable member,
	// whatever the host order.
	for _, dsn := range []string{
		"perm://" + hosts,
		"perm://" + replica + "," + primary,
		"perm://" + hosts + "/?readpref=primary",
	} {
		db, err := sql.Open("perm", dsn)
		if err != nil {
			t.Fatalf("%s: %v", dsn, err)
		}
		for i := 0; i < 4; i++ {
			if got := queryOne(t, db, `SELECT v FROM t`); got != "on-primary" {
				t.Fatalf("%s routed a connection to %q", dsn, got)
			}
		}
		if _, err := db.Exec(`INSERT INTO t VALUES ('w')`); err != nil {
			t.Fatalf("%s: write on primary-pref pool: %v", dsn, err)
		}
		db.Close()
	}

	// readpref=replica: reads come from the replica, and the pool works even
	// though the replica rejects writes (that is what the pref is for).
	rdb, err := sql.Open("perm", "perm://"+hosts+"/?readpref=replica")
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	for i := 0; i < 4; i++ {
		if got := queryOne(t, rdb, `SELECT v FROM t`); got != "on-replica" {
			t.Fatalf("replica-pref connection answered %q", got)
		}
	}
	if _, err := rdb.Exec(`INSERT INTO t VALUES ('w')`); !errors.Is(err, permdriver.ErrReadOnly) {
		t.Fatalf("write on replica-pref pool: %v, want ErrReadOnly", err)
	}

	// readpref=replica falls back to the primary when no replica answers.
	fdb, err := sql.Open("perm", "perm://"+primary+"/?readpref=replica")
	if err != nil {
		t.Fatal(err)
	}
	defer fdb.Close()
	if got := queryOne(t, fdb, `SELECT v FROM t`); got != "on-primary" {
		t.Fatalf("replica-pref fallback answered %q", got)
	}

	// readpref=any with only dead members reports every attempt.
	dead, err := sql.Open("perm", "perm://127.0.0.1:1/?readpref=any")
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	if err := dead.Ping(); err == nil || !strings.Contains(err.Error(), "127.0.0.1:1") {
		t.Fatalf("all-dead pool: %v, want the attempted address in the error", err)
	}
}

// TestMultiHostReadOnlyOption: ?readonly composes with multi-host DSNs —
// writes are refused client-side before any dial.
func TestMultiHostReadOnlyOption(t *testing.T) {
	primary, replica := multiHostCluster(t)
	db, err := sql.Open("perm", "perm://"+primary+","+replica+"/?readpref=replica&readonly")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`DELETE FROM t`); !errors.Is(err, permdriver.ErrReadOnly) {
		t.Fatalf("write on readonly multi-host pool: %v", err)
	}
	if got := queryOne(t, db, `SELECT v FROM t`); got != "on-replica" {
		t.Fatalf("readonly pool read answered %q", got)
	}
}
