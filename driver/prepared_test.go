package driver_test

import (
	"database/sql"
	"fmt"
	"reflect"
	"testing"

	"perm/internal/engine"
	"perm/internal/server"
)

// TestPreparedStatementsBothModes proves db.Prepare is a real server-side
// prepared statement on both transports: `?` arguments bind as typed
// parameters (never interpolated SQL text) and results match ad-hoc
// literal queries exactly.
func TestPreparedStatementsBothModes(t *testing.T) {
	addr := startServer(t, engine.NewDB(), server.Config{CursorBatchRows: 2})
	for name, dsn := range map[string]string{
		"remote":   "tcp://" + addr,
		"embedded": "mem://",
	} {
		t.Run(name, func(t *testing.T) {
			db, err := sql.Open("perm", dsn)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			for _, stmt := range setupScript {
				if _, err := db.Exec(stmt); err != nil {
					t.Fatalf("%s: %v", stmt, err)
				}
			}

			ins, err := db.Prepare(`INSERT INTO messages VALUES (?, ?, ?)`)
			if err != nil {
				t.Fatalf("prepare insert: %v", err)
			}
			defer ins.Close()
			for i := 10; i < 13; i++ {
				res, err := ins.Exec(int64(i), fmt.Sprintf("msg %d", i), int64(2))
				if err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
				if n, _ := res.RowsAffected(); n != 1 {
					t.Fatalf("insert %d affected %d rows", i, n)
				}
			}
			// A value that interpolation would have to escape — binds must
			// carry it verbatim.
			if _, err := ins.Exec(int64(13), `it's a '; DROP TABLE messages; -- quote`, int64(3)); err != nil {
				t.Fatalf("insert quoted: %v", err)
			}

			sel, err := db.Prepare(`SELECT text FROM messages WHERE uId = ? AND mId >= ? ORDER BY mId`)
			if err != nil {
				t.Fatalf("prepare select: %v", err)
			}
			defer sel.Close()

			// Executed repeatedly with different binds; compared against the
			// equivalent literal query each time.
			for _, tc := range []struct {
				uid, min int64
				literal  string
			}{
				{2, 0, `SELECT text FROM messages WHERE uId = 2 AND mId >= 0 ORDER BY mId`},
				{2, 11, `SELECT text FROM messages WHERE uId = 2 AND mId >= 11 ORDER BY mId`},
				{3, 5, `SELECT text FROM messages WHERE uId = 3 AND mId >= 5 ORDER BY mId`},
			} {
				prows, err := sel.Query(tc.uid, tc.min)
				if err != nil {
					t.Fatalf("prepared query: %v", err)
				}
				_, pdata := readAll(t, prows)
				prows.Close()
				lrows, err := db.Query(tc.literal)
				if err != nil {
					t.Fatalf("literal query: %v", err)
				}
				_, ldata := readAll(t, lrows)
				lrows.Close()
				if !reflect.DeepEqual(pdata, ldata) {
					t.Fatalf("uid=%d min=%d: prepared %v, literal %v", tc.uid, tc.min, pdata, ldata)
				}
			}

			// The quoted string round-tripped byte-exactly.
			var got string
			err = db.QueryRow(`SELECT text FROM messages WHERE mId = ?`, int64(13)).Scan(&got)
			if err != nil || got != `it's a '; DROP TABLE messages; -- quote` {
				t.Fatalf("quoted round trip: %q %v", got, err)
			}

			// Arity mismatches fail fast.
			if _, err := sel.Query(int64(1)); err == nil {
				t.Fatal("wrong arity accepted")
			}
			// `?` inside literals and comments is not a placeholder.
			var s string
			if err := db.QueryRow(`SELECT '?' /* ? */ -- ?
				FROM messages WHERE mId = ?`, int64(1)).Scan(&s); err != nil || s != "?" {
				t.Fatalf("quoted placeholder: %q %v", s, err)
			}
		})
	}
}

// TestAdHocArgsStreamLargeResult runs a parameterized ad-hoc query whose
// result spans many cursor batches, verifying the one-shot bind path
// streams correctly end-to-end.
func TestAdHocArgsStreamLargeResult(t *testing.T) {
	edb := engine.NewDB()
	s := edb.NewSession()
	if _, err := s.Execute(`CREATE TABLE n (i int)`); err != nil {
		t.Fatal(err)
	}
	insert := `INSERT INTO n VALUES (0)`
	for i := 1; i < 400; i++ {
		insert += fmt.Sprintf(", (%d)", i)
	}
	if _, err := s.Execute(insert); err != nil {
		t.Fatal(err)
	}
	s.Close()
	addr := startServer(t, edb, server.Config{CursorBatchRows: 16})

	db, err := sql.Open("perm", "tcp://"+addr)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rows, err := db.Query(`SELECT a.i FROM n a, n b WHERE b.i < ? AND a.i >= ? ORDER BY a.i`, int64(5), int64(100))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	last := int64(-1)
	for rows.Next() {
		var v int64
		if err := rows.Scan(&v); err != nil {
			t.Fatal(err)
		}
		if v < last {
			t.Fatalf("out of order: %d after %d", v, last)
		}
		last = v
		count++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if count != 300*5 {
		t.Fatalf("streamed %d rows, want 1500", count)
	}
}
