package perm_test

import (
	"fmt"
	"strings"
	"testing"

	"perm"

	"perm/internal/engine"
)

// BenchmarkSpill measures the blocking operators' in-memory path against the
// forced-spill path (work_mem far below the input) at two input scales, for
// external sort and grace hash aggregation. The interesting readings are the
// allocation profiles: the spill path trades heap residency for sequential
// temp-file I/O, so B/op for the spilling run stays near the budget while
// the in-memory run scales with the input. PERFORMANCE.md §7 tracks the
// numbers.
func BenchmarkSpill(b *testing.B) {
	for _, rows := range []int{10_000, 100_000} {
		db := mustSpillDB(b, rows)
		queries := map[string]string{
			"sort": `SELECT k, v, s FROM big ORDER BY v DESC, k`,
			"agg":  `SELECT k, count(*), sum(v), count(DISTINCT s) FROM big GROUP BY k`,
		}
		modes := []struct {
			name    string
			workMem int64
		}{
			{"mem", 0},           // unlimited: the historical in-memory path
			{"spill", 128 << 10}, // far below input size: every operator spills
		}
		for _, mode := range modes {
			for _, opName := range []string{"sort", "agg"} {
				q := queries[opName]
				b.Run(fmt.Sprintf("%s/rows=%d/%s", opName, rows, mode.name), func(b *testing.B) {
					sess := db.Engine().NewSession()
					defer sess.Close()
					sess.SetWorkMem(mode.workMem)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := sess.Execute(q)
						if err != nil {
							b.Fatal(err)
						}
						if len(res.Rows) == 0 {
							b.Fatal("empty result")
						}
					}
					b.StopTimer()
					ms := sess.MemStatus()
					if mode.workMem > 0 && ms.SpillFiles == 0 {
						b.Fatalf("forced-spill run never spilled: %+v", ms)
					}
					b.ReportMetric(float64(ms.Peak), "peak-bytes")
				})
			}
		}
	}
}

// mustSpillDB seeds the benchmark table: duplicate-heavy keys, distinct
// payloads, enough bytes that a 128 KiB budget forces disk.
func mustSpillDB(b *testing.B, rows int) *perm.DB {
	b.Helper()
	db := perm.Open()
	sess := db.Engine().NewSession()
	defer sess.Close()
	mustExecEngine(b, sess, `CREATE TABLE big (k int, v int, s text)`)
	var sb strings.Builder
	for off := 0; off < rows; off += 1000 {
		sb.Reset()
		sb.WriteString(`INSERT INTO big VALUES `)
		n := rows - off
		if n > 1000 {
			n = 1000
		}
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, 'payload row %d')", (off+i)%500, off+i, (off+i)%173)
		}
		mustExecEngine(b, sess, sb.String())
	}
	return db
}

func mustExecEngine(b *testing.B, sess *engine.Session, q string) {
	b.Helper()
	if _, err := sess.Execute(q); err != nil {
		b.Fatal(err)
	}
}
