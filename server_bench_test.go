package perm_test

import (
	"context"
	"database/sql"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"perm"
	"perm/internal/engine"
	"perm/internal/server"
	"perm/internal/wire"

	_ "perm/driver"
)

// BenchmarkServerQuery measures the network round trip of the wire protocol
// against the embedded engine baseline: the same provenance aggregation over
// the same database, through (a) the engine directly, (b) a raw wire.Client
// on a loopback TCP connection, (c) database/sql with the perm driver, and
// (d) 8-way concurrent driver connections (server throughput rather than
// single-connection latency). Tracked in PERFORMANCE.md §4.
func BenchmarkServerQuery(b *testing.B) {
	const query = `SELECT PROVENANCE s, count(*) FROM r GROUP BY s`

	setup := func(b *testing.B) *perm.DB {
		db := perm.Open()
		db.MustExec(`CREATE TABLE r (i int, s text)`)
		for c := 0; c < 4; c++ {
			stmt := fmt.Sprintf(`INSERT INTO r VALUES (%d, 'g%d')`, c, c%4)
			for i := 1; i < 64; i++ {
				stmt += fmt.Sprintf(", (%d, 'g%d')", c*64+i, (c*64+i)%4)
			}
			db.MustExec(stmt)
		}
		return db
	}

	start := func(b *testing.B, db *perm.DB) string {
		b.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(db.Engine(), server.Config{})
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-done
		})
		return l.Addr().String()
	}

	b.Run("embedded", func(b *testing.B) {
		db := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(query); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("wire", func(b *testing.B) {
		db := setup(b)
		addr := start(b, db)
		c, err := wire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Exec(query); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("driver", func(b *testing.B) {
		db := setup(b)
		addr := start(b, db)
		sdb, err := sql.Open("perm", "tcp://"+addr)
		if err != nil {
			b.Fatal(err)
		}
		defer sdb.Close()
		sdb.SetMaxOpenConns(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := sdb.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			for rows.Next() {
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
			rows.Close()
		}
	})

	b.Run("driver-parallel-8", func(b *testing.B) {
		db := setup(b)
		addr := start(b, db)
		sdb, err := sql.Open("perm", "tcp://"+addr)
		if err != nil {
			b.Fatal(err)
		}
		defer sdb.Close()
		sdb.SetMaxOpenConns(8)
		sdb.SetMaxIdleConns(8)
		b.ReportAllocs()
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rows, err := sdb.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					b.Fatal(err)
				}
				rows.Close()
			}
		})
	})
}

// BenchmarkReplicaRead measures read scale-out — the point of the
// replication subsystem for a workload whose provenance queries are
// rewritten reads: the same provenance aggregation through 8 concurrent
// clients against (a) the primary alone, (b) a caught-up replica alone, and
// (c) the pool split across primary + replica. Tracked in PERFORMANCE.md §5.
func BenchmarkReplicaRead(b *testing.B) {
	const query = `SELECT PROVENANCE s, count(*) FROM r GROUP BY s`

	setup := func(b *testing.B) *perm.DB {
		db := perm.Open()
		db.MustExec(`CREATE TABLE r (i int, s text)`)
		for c := 0; c < 4; c++ {
			stmt := fmt.Sprintf(`INSERT INTO r VALUES (%d, 'g%d')`, c, c%4)
			for i := 1; i < 64; i++ {
				stmt += fmt.Sprintf(", (%d, 'g%d')", c*64+i, (c*64+i)%4)
			}
			db.MustExec(stmt)
		}
		return db
	}

	start := func(b *testing.B, edb *engine.DB, cfg server.Config) string {
		b.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(edb, cfg)
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-done
		})
		return l.Addr().String()
	}

	// One primary, one caught-up replica.
	db := setup(b)
	primaryAddr := start(b, db.Engine(), server.Config{HeartbeatInterval: 50 * time.Millisecond})
	replica := engine.NewDB()
	f := server.StartFollower(replica, server.FollowerConfig{PrimaryAddr: primaryAddr})
	b.Cleanup(f.Stop)
	target := db.Engine().Store().Log().LastLSN()
	for deadline := time.Now().Add(10 * time.Second); f.Status().AppliedLSN < target; {
		if time.Now().After(deadline) {
			b.Fatalf("replica stuck at %d, want %d", f.Status().AppliedLSN, target)
		}
		time.Sleep(time.Millisecond)
	}
	replicaAddr := start(b, replica, server.Config{})

	pool := func(b *testing.B, dsn string, conns int) *sql.DB {
		b.Helper()
		sdb, err := sql.Open("perm", dsn)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { sdb.Close() })
		sdb.SetMaxOpenConns(conns)
		sdb.SetMaxIdleConns(conns)
		return sdb
	}
	runPool := func(b *testing.B, dbs ...*sql.DB) {
		var n atomic.Uint64
		b.ReportAllocs()
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				sdb := dbs[int(n.Add(1))%len(dbs)]
				rows, err := sdb.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				for rows.Next() {
				}
				if err := rows.Err(); err != nil {
					b.Fatal(err)
				}
				rows.Close()
			}
		})
	}

	b.Run("primary-only-8", func(b *testing.B) {
		runPool(b, pool(b, "tcp://"+primaryAddr, 8))
	})
	b.Run("replica-only-8", func(b *testing.B) {
		runPool(b, pool(b, "tcp://"+replicaAddr+"?readonly", 8))
	})
	b.Run("primary-plus-replica-8", func(b *testing.B) {
		runPool(b,
			pool(b, "tcp://"+primaryAddr, 4),
			pool(b, "tcp://"+replicaAddr+"?readonly", 4))
	})
}
