package perm_test

import (
	"strings"
	"testing"
)

// TestQuantifiedAnyAll covers expr op ANY|ALL (subquery) end to end,
// including SQL NULL semantics and the provenance de-correlation of the
// positive ANY form.
func TestQuantifiedAnyAll(t *testing.T) {
	db := forumDB(t)

	// messages mIds {1,4}; approved mIds {2,4,4,4}.
	res, err := db.Query(`SELECT mId FROM messages WHERE mId > ANY (SELECT mId FROM approved) ORDER BY mId`)
	if err != nil {
		t.Fatal(err)
	}
	// 1 > any(2,4,4,4)? no. 4 > any? 4>2 yes.
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 4 {
		t.Errorf("> ANY rows = %v", res.Rows)
	}

	res, err = db.Query(`SELECT mId FROM messages WHERE mId <= ALL (SELECT mId FROM approved) ORDER BY mId`)
	if err != nil {
		t.Fatal(err)
	}
	// 1 <= all(2,4,4,4) yes; 4 <= all? 4<=2 no.
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("<= ALL rows = %v", res.Rows)
	}

	// = ANY is IN.
	res, err = db.Query(`SELECT mId FROM messages WHERE mId = ANY (SELECT mId FROM approved)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 4 {
		t.Errorf("= ANY rows = %v", res.Rows)
	}

	// <> ALL is NOT IN.
	res, err = db.Query(`SELECT mId FROM messages WHERE mId <> ALL (SELECT mId FROM approved)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("<> ALL rows = %v", res.Rows)
	}

	// ALL over an empty subquery is vacuously true.
	res, err = db.Query(`SELECT mId FROM messages WHERE mId < ALL (SELECT mId FROM approved WHERE mId > 99)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("ALL over empty = %v", res.Rows)
	}

	// ANY over an empty subquery is false.
	res, err = db.Query(`SELECT mId FROM messages WHERE mId < ANY (SELECT mId FROM approved WHERE mId > 99)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("ANY over empty = %v", res.Rows)
	}
}

// TestQuantifiedNullSemantics: NULLs in the subquery make an unmatched ANY
// (or unfailed ALL) evaluate to NULL, which WHERE rejects.
func TestQuantifiedNullSemantics(t *testing.T) {
	db := forumDB(t)
	db.MustExecScript(`
		CREATE TABLE qn (v int);
		INSERT INTO qn VALUES (10), (NULL);
	`)
	// 4 > ANY (10, NULL): 4>10 false, 4>NULL null → NULL → filtered.
	res, err := db.Query(`SELECT mId FROM messages WHERE mId > ANY (SELECT v FROM qn)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("> ANY with NULL = %v", res.Rows)
	}
	// 4 < ALL (10, NULL): 4<10 true, 4<NULL null → NULL → filtered.
	res, err = db.Query(`SELECT mId FROM messages WHERE mId < ALL (SELECT v FROM qn)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("< ALL with NULL = %v", res.Rows)
	}
}

// TestQuantifiedProvenance: the positive ANY form contributes subquery
// witnesses; ALL contributes none (PI-CS negation shape).
func TestQuantifiedProvenance(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`SELECT PROVENANCE mId FROM messages WHERE mId > ANY (SELECT mId FROM approved)`)
	if err != nil {
		t.Fatal(err)
	}
	// mId=4 with witnesses approved.mId=2 (the only one 4 > x holds for...
	// 4>2 yes, 4>4 no ×3) → exactly 1 witness row.
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v (cols %v)", res.Rows, res.Columns)
	}
	joined := strings.Join(res.Columns, ",")
	if !strings.Contains(joined, "prov_public_approved_mid") {
		t.Errorf("columns = %v", res.Columns)
	}

	res, err = db.Query(`SELECT PROVENANCE mId FROM messages WHERE mId <= ALL (SELECT mId FROM approved)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("ALL rows = %v", res.Rows)
	}
	if strings.Contains(strings.Join(res.Columns, ","), "approved") {
		t.Errorf("ALL must not contribute subquery provenance: %v", res.Columns)
	}
}

// TestCopyCompleteEndToEnd: the COPY COMPLETE keyword path through SQL-PLE.
func TestCopyCompleteEndToEnd(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) mId, text FROM messages
		UNION SELECT mId, text FROM imports ORDER BY mId`)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-branch copies are incomplete: every created provenance value is
	// masked (rows remain — the witnesses still exist).
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, c := range res.Columns {
		if !strings.HasPrefix(c, "prov_") {
			continue
		}
		for _, r := range res.Rows {
			if !r[i].IsNull() {
				t.Errorf("COPY COMPLETE must mask %s, got %v", c, r[i])
			}
		}
	}
	// Without a union, COMPLETE behaves like PARTIAL.
	res, err = db.Query(`SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) mId FROM messages`)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Columns {
		if c == "prov_public_messages_mid" && res.Rows[0][i].IsNull() {
			t.Error("single-path copy must survive COPY COMPLETE")
		}
	}
}
