package perm_test

import (
	"fmt"
	"strings"
	"testing"

	"perm"
	"perm/internal/workload"
)

// This file holds one benchmark per experiment of DESIGN.md §4 — the
// regenerating targets for every figure of the paper (E1–E4) and for the
// performance-shaped experiments (E5–E8). cmd/permbench prints the same
// measurements as tables; these benches integrate them with `go test -bench`.

// mustForum returns a DB loaded with the scaled forum workload.
func mustForum(b *testing.B, n int) *perm.DB {
	b.Helper()
	db := perm.Open()
	if err := workload.LoadForum(db.Engine(), workload.DefaultForum(n)); err != nil {
		b.Fatal(err)
	}
	return db
}

// mustPaperDB returns the exact Figure 1 database.
func mustPaperDB(b *testing.B) *perm.DB {
	b.Helper()
	db := perm.Open()
	if err := workload.LoadPaperExample(db.Engine()); err != nil {
		b.Fatal(err)
	}
	return db
}

func runQuery(b *testing.B, db *perm.DB, q string) {
	b.Helper()
	if _, err := db.Exec(q); err != nil {
		b.Fatalf("%v\nquery: %s", err, q)
	}
}

// BenchmarkFigure1QueryExecution (E1): the paper's example queries q1 and q3
// on the Figure 1 database.
func BenchmarkFigure1QueryExecution(b *testing.B) {
	db := mustPaperDB(b)
	b.Run("q1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runQuery(b, db, `SELECT mId, text FROM messages UNION SELECT mId, text FROM imports`)
		}
	})
	b.Run("q3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runQuery(b, db, `SELECT count(*), text FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId, text`)
		}
	})
}

// BenchmarkFigure2Provenance (E2): computing the Figure 2 provenance table.
func BenchmarkFigure2Provenance(b *testing.B) {
	db := mustPaperDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runQuery(b, db, `SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports`)
	}
}

// BenchmarkFigure3Stages (E3): the pipeline of the architecture diagram —
// parse, analyze (with provenance rewrite), plan, execute — measured end to
// end for the provenance aggregation query, in two modes:
//
//   - pipeline: plan cache off, every iteration pays every stage. This is the
//     variant that regression-guards the rewriter — with caching on,
//     rewrite-ns/op would read ~0 and a rewriter slowdown would be invisible.
//   - cached: the default session behavior, where iterations after the first
//     hit the plan cache and only execution remains (the steady-state cost of
//     a repeated provenance statement).
func BenchmarkFigure3Stages(b *testing.B) {
	db := mustPaperDB(b)
	q := `SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId, text`
	run := func(b *testing.B, sess *perm.Session) {
		b.ReportAllocs()
		b.ResetTimer()
		var rewrite, execute int64
		for i := 0; i < b.N; i++ {
			res, err := sess.Exec(q)
			if err != nil {
				b.Fatal(err)
			}
			rewrite += res.RewriteTime.Nanoseconds()
			execute += res.ExecuteTime.Nanoseconds()
		}
		b.ReportMetric(float64(rewrite)/float64(b.N), "rewrite-ns/op")
		b.ReportMetric(float64(execute)/float64(b.N), "execute-ns/op")
	}
	b.Run("pipeline", func(b *testing.B) {
		sess := db.NewSession()
		if _, err := sess.Exec(`SET plan_cache = 'off'`); err != nil {
			b.Fatal(err)
		}
		run(b, sess)
	})
	b.Run("cached", func(b *testing.B) {
		run(b, db.NewSession())
	})
}

// BenchmarkFigure4Browser (E4): producing the Perm-browser artifacts
// (original tree, rewritten tree, rewritten SQL).
func BenchmarkFigure4Browser(b *testing.B) {
	db := perm.Open()
	db.MustExecScript(`
		CREATE TABLE s (i int); CREATE TABLE r (i int);
		INSERT INTO s VALUES (1), (2); INSERT INTO r VALUES (1), (2);`)
	q := `SELECT PROVENANCE * FROM s JOIN r ON s.i = r.i`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := db.Explain(q)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(ex.RewrittenSQL, "prov_public_s_i") {
			b.Fatal("missing provenance attribute")
		}
	}
}

// BenchmarkProvenanceOverhead (E5): plain vs provenance per query class and
// dataset size. The interesting output is the plain/prov ratio per class.
func BenchmarkProvenanceOverhead(b *testing.B) {
	classes := []struct {
		name  string
		plain string
		prov  string
	}{
		{"SPJ",
			`SELECT m.mid, u.name FROM messages m JOIN users u ON m.uid = u.uid WHERE m.mid % 10 = 0`,
			`SELECT PROVENANCE m.mid, u.name FROM messages m JOIN users u ON m.uid = u.uid WHERE m.mid % 10 = 0`},
		{"AGG",
			`SELECT count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`,
			`SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`},
		{"UNION",
			`SELECT mid, text FROM messages UNION SELECT mid, text FROM imports`,
			`SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM imports`},
		{"NESTED",
			`SELECT mid FROM messages WHERE mid IN (SELECT mid FROM approved)`,
			`SELECT PROVENANCE mid FROM messages WHERE mid IN (SELECT mid FROM approved)`},
	}
	for _, n := range []int{100, 1000} {
		db := mustForum(b, n)
		for _, c := range classes {
			b.Run(fmt.Sprintf("%s/n=%d/plain", c.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runQuery(b, db, c.plain)
				}
			})
			b.Run(fmt.Sprintf("%s/n=%d/prov", c.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					runQuery(b, db, c.prov)
				}
			})
		}
	}
}

// BenchmarkStrategy (E6): the rewrite-strategy ablation.
func BenchmarkStrategy(b *testing.B) {
	db := mustForum(b, 1000)
	unionQ := `SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM imports`
	aggQ := `SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`
	cases := []struct {
		name    string
		setting string
		query   string
	}{
		{"SetPad", "SET provenance_set_strategy = 'pad'", unionQ},
		{"SetJoin", "SET provenance_set_strategy = 'join'", unionQ},
		{"AggJoinGroup", "SET provenance_agg_strategy = 'joingroup'", aggQ},
		{"AggCrossFilter", "SET provenance_agg_strategy = 'crossfilter'", aggQ},
		{"CostBased", "SET provenance_strategy = 'cost'", aggQ},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			sess := db.NewSession()
			if _, err := sess.Exec(c.setting); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Exec(c.query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLazyVsEager (E7): recompute provenance per use vs query the
// materialized provenance table.
func BenchmarkLazyVsEager(b *testing.B) {
	db := mustForum(b, 1000)
	db.MustExec(`CREATE TABLE provmat AS
		SELECT PROVENANCE count(*), text
		FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`)
	lazy := `SELECT text, prov_public_imports_origin
		FROM (SELECT PROVENANCE count(*), text
		      FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text) AS p
		WHERE count > 1 AND prov_public_imports_origin IS NOT NULL`
	eager := `SELECT text, prov_public_imports_origin FROM provmat
		WHERE count > 1 AND prov_public_imports_origin IS NOT NULL`
	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runQuery(b, db, lazy)
		}
	})
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runQuery(b, db, eager)
		}
	})
}

// BenchmarkIncremental (E8): full rewrite vs BASERELATION stop vs external
// provenance reuse.
func BenchmarkIncremental(b *testing.B) {
	db := mustForum(b, 1000)
	db.MustExec(`CREATE VIEW v2 AS
		SELECT v1.mid AS mid, text, count(*) AS cnt
		FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`)
	db.MustExec(`CREATE TABLE v2prov AS SELECT PROVENANCE mid, text, cnt FROM v2`)
	var provCols []string
	for _, c := range db.Engine().Catalog().Table("v2prov").Columns {
		if strings.HasPrefix(c.Name, "prov_") {
			provCols = append(provCols, c.Name)
		}
	}
	external := `SELECT PROVENANCE mid, cnt FROM v2prov PROVENANCE (` +
		strings.Join(provCols, ", ") + `) WHERE cnt > 1`
	cases := []struct{ name, q string }{
		{"full", `SELECT PROVENANCE mid, cnt FROM v2 WHERE cnt > 1`},
		{"baserelation", `SELECT PROVENANCE mid, cnt FROM v2 BASERELATION WHERE cnt > 1`},
		{"external", external},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runQuery(b, db, c.q)
			}
		})
	}
}

// BenchmarkOptimizerAblation measures the planner's contribution on a
// provenance query (DESIGN.md S8): the same rewritten plan with and without
// the logical optimizer (predicate pushdown, filter merging, projection
// collapsing).
func BenchmarkOptimizerAblation(b *testing.B) {
	db := mustForum(b, 1000)
	q := `SELECT text, prov_public_imports_origin
		FROM (SELECT PROVENANCE count(*), text
		      FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text) AS p
		WHERE count > 1 AND prov_public_imports_origin IS NOT NULL`
	for _, mode := range []string{"on", "off"} {
		b.Run("optimizer="+mode, func(b *testing.B) {
			sess := db.NewSession()
			if _, err := sess.Exec(`SET optimizer = '` + mode + `'`); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRewriteOnly isolates the provenance rewriter itself (analysis +
// rewrite, no execution) — the cost Perm adds in front of the host DBMS's
// optimizer in Figure 3.
func BenchmarkRewriteOnly(b *testing.B) {
	db := mustForum(b, 100)
	q := `SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledEval regression-guards the compiled expression path: a
// filter + projection dense with arithmetic, CASE, functions, LIKE and IN,
// where nearly all of the work is per-row expression evaluation.
func BenchmarkCompiledEval(b *testing.B) {
	db := mustForum(b, 1000)
	q := `SELECT mid, length(text) + abs(mid - 500) * 2,
	             CASE WHEN mid % 2 = 0 THEN upper(text) ELSE lower(text) END
	      FROM messages
	      WHERE ((mid * 7 + 3) % 11 < 8 AND text LIKE '%5%') OR mid IN (1, 2, 3)`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runQuery(b, db, q)
	}
}

// BenchmarkPlanCacheHit regression-guards the session plan cache: the same
// provenance query executed with the cache off (full pipeline each time) and
// on (parse/analyze/rewrite/plan skipped after the first execution).
func BenchmarkPlanCacheHit(b *testing.B) {
	db := mustForum(b, 100)
	q := `SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`
	b.Run("miss", func(b *testing.B) {
		sess := db.NewSession()
		if _, err := sess.Exec(`SET plan_cache = 'off'`); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		sess := db.NewSession()
		if _, err := sess.Exec(q); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Exec(q)
			if err != nil {
				b.Fatal(err)
			}
			if !res.CacheHit {
				b.Fatal("expected a plan-cache hit")
			}
		}
	})
}

// BenchmarkObservabilityOverhead measures what each observability tier adds
// to the Figure 2 provenance query (PERFORMANCE.md §10):
//
//   - off: the default session — instrumentation compiled in but disabled,
//     the path every production query takes. Must stay within noise of the
//     pre-observability engine.
//   - armed: a slow-query threshold is set (high enough never to fire), so
//     each statement carries the deep-observation sidecar (pool baselines,
//     SQL retention) but executes uninstrumented iterators.
//   - traced: SET trace = on — every operator wrapped with counters and
//     timers, the full per-operator profile built after each statement.
func BenchmarkObservabilityOverhead(b *testing.B) {
	q := `SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports`
	cases := []struct{ name, setup string }{
		{"off", ""},
		{"armed", `SET slow_query_ms = 3600000`},
		{"traced", `SET trace = on`},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			db := mustPaperDB(b)
			sess := db.NewSession()
			if c.setup != "" {
				if _, err := sess.Exec(c.setup); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScratchKeys regression-guards the remaining scratch-key reuse
// paths: DISTINCT aggregates (seen-set lookups through a reusable buffer)
// and uncorrelated IN-subquery probes (hash membership without a key string
// per outer row).
func BenchmarkScratchKeys(b *testing.B) {
	db := mustForum(b, 2000)
	b.Run("distinct-agg", func(b *testing.B) {
		q := `SELECT count(DISTINCT uid), count(DISTINCT text) FROM messages`
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runQuery(b, db, q)
		}
	})
	b.Run("in-probe", func(b *testing.B) {
		q := `SELECT count(*) FROM messages WHERE mid IN (SELECT mid FROM approved)`
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runQuery(b, db, q)
		}
	})
}

// BenchmarkParallelQuery (E9): intra-query parallelism on a 100k-row
// provenance join + aggregation, across worker degrees. parallelism=1 is the
// classic single-goroutine executor (the zero-overhead baseline); higher
// degrees exercise the partition-wise parallel join under the serial
// aggregation. Speedup tracks physical core count — on a single-core host the
// curve is flat and measures exchange overhead instead.
func BenchmarkParallelQuery(b *testing.B) {
	db := perm.Open()
	seed := db.NewSession()
	if _, err := seed.Exec(`CREATE TABLE fact (k int, v int, s text)`); err != nil {
		b.Fatal(err)
	}
	if _, err := seed.Exec(`CREATE TABLE dim (k int, d text)`); err != nil {
		b.Fatal(err)
	}
	var sb strings.Builder
	for off := 0; off < 100000; off += 1000 {
		sb.Reset()
		sb.WriteString(`INSERT INTO fact VALUES `)
		for i := 0; i < 1000; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, 'r%d')", (off+i)%512, off+i, (off+i)%89)
		}
		if _, err := seed.Exec(sb.String()); err != nil {
			b.Fatal(err)
		}
	}
	sb.Reset()
	sb.WriteString(`INSERT INTO dim VALUES `)
	for i := 0; i < 512; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'd%d')", i, i)
	}
	if _, err := seed.Exec(sb.String()); err != nil {
		b.Fatal(err)
	}
	seed.Close()

	q := `SELECT PROVENANCE f.k % 64, count(*), sum(f.v), max(d.d) FROM fact f JOIN dim d ON f.k = d.k GROUP BY f.k % 64`
	for _, deg := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", deg), func(b *testing.B) {
			sess := db.NewSession()
			defer sess.Close()
			if _, err := sess.Exec(fmt.Sprintf(`SET parallelism = %d`, deg)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Exec(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
