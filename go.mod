module perm

go 1.22
