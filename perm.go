// Package perm is a from-scratch Go implementation of the Perm provenance
// management system (Glavic & Alonso, SIGMOD 2009 / ICDE 2009): a relational
// engine that computes tuple-level data provenance by query rewriting.
//
// A Perm database speaks a PostgreSQL-flavored SQL dialect extended with
// SQL-PLE, the provenance language extension of the paper:
//
//	SELECT PROVENANCE ... — compute provenance alongside the result
//	SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE | COPY) ... — pick semantics
//	FROM v BASERELATION — treat a view/subquery like a base relation
//	FROM t PROVENANCE (a, b) — declare existing columns as external provenance
//
// Provenance is plain relational data: the original result columns followed
// by prov_<schema>_<relation>_<attribute> columns holding the contributing
// input tuples, so it can be queried, stored (CREATE TABLE ... AS SELECT
// PROVENANCE ..., for eager provenance) and combined with ordinary SQL.
//
// Quick start:
//
//	db := perm.Open()
//	db.MustExec(`CREATE TABLE r (i int)`)
//	db.MustExec(`INSERT INTO r VALUES (1), (2)`)
//	res, err := db.Query(`SELECT PROVENANCE i FROM r`)
//	// res.Columns == ["i", "prov_public_r_i"]
package perm

import (
	"fmt"
	"io"
	"strings"
	"time"

	"perm/internal/engine"
	"perm/internal/sql"
	"perm/internal/value"
)

// Value is a SQL value (NULL, boolean, integer, float, or text).
type Value = value.Value

// Row is one result tuple.
type Row = value.Row

// Convenience constructors for Value.
var (
	Null = value.Null
	// NewInt, NewFloat, NewString, NewBool build typed values.
	NewInt    = value.NewInt
	NewFloat  = value.NewFloat
	NewString = value.NewString
	NewBool   = value.NewBool
)

// DB is a Perm database handle. It is safe for concurrent use; each call
// runs in its own implicit session unless a Session is opened explicitly.
type DB struct {
	db      *engine.DB
	session *engine.Session
}

// Open creates a new, empty in-memory Perm database.
func Open() *DB {
	db := engine.NewDB()
	return &DB{db: db, session: db.NewSession()}
}

// Engine exposes the underlying engine database so that in-module tools
// (cmd/permshell, the benchmark harness) can load data through the storage
// layer directly. It is not part of the stable public surface.
func (d *DB) Engine() *engine.DB { return d.db }

// Save serializes the whole database (tables, rows, views, statistics) to w,
// so eagerly materialized provenance survives process restarts.
func (d *DB) Save(w io.Writer) error { return d.db.Store().Save(w) }

// Load restores a database written by Save.
func Load(r io.Reader) (*DB, error) {
	db := Open()
	if err := db.db.Store().Restore(r); err != nil {
		return nil, err
	}
	return db, nil
}

// Session is an isolated connection with its own settings (contribution
// semantics defaults, rewrite strategy toggles, optimizer switches).
type Session struct {
	s *engine.Session
}

// NewSession opens a session with default settings.
func (d *DB) NewSession() *Session {
	return &Session{s: d.db.NewSession()}
}

// Close releases the session: its plan cache is dropped and it no longer
// counts as active. Further statements on it fail. Close is idempotent.
func (s *Session) Close() error { return s.s.Close() }

// Result is the outcome of one statement.
type Result struct {
	// Columns are the output column names, in order.
	Columns []string
	// Rows are the result tuples.
	Rows []Row
	// Tag is the command tag ("SELECT 4", "INSERT 2", "CREATE TABLE", ...).
	Tag string
	// ProvenanceColumns flags, per column, whether it is a provenance
	// attribute (prov_... columns produced by SELECT PROVENANCE).
	ProvenanceColumns []bool
	// Stage timings of the Figure-3 pipeline.
	ParseTime, AnalyzeTime, RewriteTime, PlanTime, ExecuteTime time.Duration
	// RewriteDecisions lists the provenance rewrite decisions taken.
	RewriteDecisions []string
	// CacheHit reports that the statement was served from the session's plan
	// cache: parse, analyze, provenance rewrite and planning were skipped and
	// their timings are zero. Toggle with SET plan_cache = 'on'|'off'; inspect
	// counters with SHOW plan_cache_stats.
	CacheHit bool
}

func wrapResult(r *engine.Result) *Result {
	out := &Result{
		Columns:          r.Columns,
		Rows:             r.Rows,
		Tag:              r.Tag,
		ParseTime:        r.Timings.Parse,
		AnalyzeTime:      r.Timings.Analyze,
		RewriteTime:      r.Timings.Rewrite,
		PlanTime:         r.Timings.Plan,
		ExecuteTime:      r.Timings.Execute,
		RewriteDecisions: r.Rewrites,
		CacheHit:         r.CacheHit,
	}
	if len(r.Schema) > 0 {
		out.ProvenanceColumns = make([]bool, len(r.Schema))
		for i, c := range r.Schema {
			out.ProvenanceColumns[i] = c.IsProv
		}
	}
	return out
}

// Exec runs one SQL statement.
func (d *DB) Exec(sqlText string) (*Result, error) { return execOn(d.session, sqlText) }

// Query is Exec for read statements; it errors when the statement returns no
// rows structure (DDL).
func (d *DB) Query(sqlText string) (*Result, error) {
	res, err := d.Exec(sqlText)
	if err != nil {
		return nil, err
	}
	if res.Columns == nil && !strings.HasPrefix(res.Tag, "SELECT") {
		return nil, fmt.Errorf("statement %q returned no result set (%s)", sqlText, res.Tag)
	}
	return res, nil
}

// MustExec runs a statement and panics on error (setup code and examples).
func (d *DB) MustExec(sqlText string) *Result {
	res, err := d.Exec(sqlText)
	if err != nil {
		panic(fmt.Sprintf("perm: %v\nstatement: %s", err, sqlText))
	}
	return res
}

// ExecScript runs a semicolon-separated script.
func (d *DB) ExecScript(script string) ([]*Result, error) {
	rs, err := d.session.ExecuteScript(script)
	out := make([]*Result, len(rs))
	for i, r := range rs {
		out[i] = wrapResult(r)
	}
	return out, err
}

// MustExecScript runs a script and panics on error.
func (d *DB) MustExecScript(script string) []*Result {
	out, err := d.ExecScript(script)
	if err != nil {
		panic(fmt.Sprintf("perm: %v", err))
	}
	return out
}

// Explain returns the Perm-browser artifacts for a query: original and
// rewritten algebra trees, the rewritten SQL, and rewrite decisions.
func (d *DB) Explain(sqlText string) (*Explanation, error) {
	return explainOn(d.session, sqlText, false)
}

// ExplainAnalyze additionally executes the query and fills in timings.
func (d *DB) ExplainAnalyze(sqlText string) (*Explanation, error) {
	return explainOn(d.session, sqlText, true)
}

// Exec runs one SQL statement in this session.
func (s *Session) Exec(sqlText string) (*Result, error) { return execOn(s.s, sqlText) }

// MustExec runs a statement and panics on error.
func (s *Session) MustExec(sqlText string) *Result {
	res, err := s.Exec(sqlText)
	if err != nil {
		panic(fmt.Sprintf("perm: %v\nstatement: %s", err, sqlText))
	}
	return res
}

// Explain returns the browser artifacts for a query in this session.
func (s *Session) Explain(sqlText string) (*Explanation, error) {
	return explainOn(s.s, sqlText, false)
}

// PlanCacheStats returns this session's plan-cache hit/miss counters and the
// number of cached plans.
func (s *Session) PlanCacheStats() (hits, misses uint64, entries int) {
	return s.s.PlanCacheStats()
}

// PlanCacheStats returns the plan-cache counters of the DB's implicit session.
func (d *DB) PlanCacheStats() (hits, misses uint64, entries int) {
	return d.session.PlanCacheStats()
}

// Explanation mirrors what the Perm browser of the demo displays (Figure 4):
// the query (marker 1), the rewritten SQL (marker 2), the original algebra
// tree (marker 3), the rewritten algebra tree (marker 4); results are marker
// 5, obtained by executing the query.
type Explanation struct {
	OriginalSQL   string
	RewrittenSQL  string
	OriginalTree  string
	RewrittenTree string
	OptimizedTree string
	Decisions     []string
	RowCount      int
}

func execOn(s *engine.Session, sqlText string) (*Result, error) {
	res, err := s.Execute(sqlText)
	if err != nil {
		return nil, err
	}
	return wrapResult(res), nil
}

func explainOn(s *engine.Session, sqlText string, analyze bool) (*Explanation, error) {
	st, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("EXPLAIN expects a query, got %T", st)
	}
	var ex *engine.Explanation
	if analyze {
		ex, err = s.ExplainAnalyze(sel)
	} else {
		ex, err = s.Explain(sel)
	}
	if err != nil {
		return nil, err
	}
	return &Explanation{
		OriginalSQL:   ex.OriginalSQL,
		RewrittenSQL:  ex.RewrittenSQL,
		OriginalTree:  ex.OriginalTree,
		RewrittenTree: ex.RewrittenTree,
		OptimizedTree: ex.OptimizedTree,
		Decisions:     ex.Decisions,
		RowCount:      ex.RowCount,
	}, nil
}

// FormatTable renders a result as an aligned ASCII table in the psql style
// the demo's Perm browser shows (Figure 4, marker 5).
func FormatTable(res *Result) string {
	var b strings.Builder
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len([]rune(c))
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			text := v.String()
			if v.IsNull() {
				text = ""
			}
			cells[ri][ci] = text
			if ci < len(widths) && len([]rune(text)) > widths[ci] {
				widths[ci] = len([]rune(text))
			}
		}
	}
	for i, c := range res.Columns {
		if i > 0 {
			b.WriteString("|")
		}
		b.WriteString(" " + pad(c, widths[i]) + " ")
	}
	b.WriteString("\n")
	for i := range res.Columns {
		if i > 0 {
			b.WriteString("+")
		}
		b.WriteString(strings.Repeat("-", widths[i]+2))
	}
	b.WriteString("\n")
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("|")
			}
			b.WriteString(" " + pad(cell, widths[i]) + " ")
		}
		b.WriteString("\n")
	}
	return b.String()
}

func pad(s string, w int) string {
	n := w - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}
