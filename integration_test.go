package perm_test

import (
	"sort"
	"strings"
	"testing"

	"perm"
	"perm/internal/workload"
)

// sortedKeys canonicalizes a result for multiset comparison.
func sortedKeys(res *perm.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.Key()
	}
	sort.Strings(out)
	return out
}

func sameRows(a, b *perm.Result) bool {
	ka, kb := sortedKeys(a), sortedKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestOuterJoinProvenance: unmatched rows of an outer join carry NULL
// provenance for the missing side.
func TestOuterJoinProvenance(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`
		SELECT PROVENANCE m.mId, a.uId
		FROM messages m LEFT JOIN approved a ON m.mId = a.mId
		ORDER BY m.mId, a.uId`)
	if err != nil {
		t.Fatal(err)
	}
	// mId=1 has no approvals → 1 row with NULLs; mId=4 has 3 → 3 rows.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	first := res.Rows[0]
	if first[0].Int() != 1 || !first[1].IsNull() {
		t.Errorf("unmatched row = %v", first)
	}
	// Its approved provenance must be NULL, messages provenance present.
	for i, c := range res.Columns {
		if strings.HasPrefix(c, "prov_public_approved_") && !first[i].IsNull() {
			t.Errorf("approved provenance of unmatched row must be NULL: %v", first)
		}
		if c == "prov_public_messages_mid" && first[i].Int() != 1 {
			t.Errorf("messages provenance missing: %v", first)
		}
	}
}

// TestIntersectExceptProvenance via the engine.
func TestIntersectExceptProvenance(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`
		SELECT PROVENANCE mId FROM messages INTERSECT SELECT mId FROM approved`)
	if err != nil {
		t.Fatal(err)
	}
	// intersect = {4}; 3 approvals with mid=4 → 3 witness rows.
	if len(res.Rows) != 3 {
		t.Errorf("intersect witnesses = %v", res.Rows)
	}
	res, err = db.Query(`
		SELECT PROVENANCE mId FROM messages EXCEPT SELECT mId FROM approved`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Errorf("except = %v", res.Rows)
	}
}

// TestDistinctProvenanceReplicates: δ(T)+ = T+ — each duplicate is a witness.
func TestDistinctProvenanceReplicates(t *testing.T) {
	db := perm.Open()
	db.MustExecScript(`
		CREATE TABLE dup (x int, tag text);
		INSERT INTO dup VALUES (1, 'a'), (1, 'b'), (2, 'c');
	`)
	res, err := db.Query(`SELECT PROVENANCE DISTINCT x FROM dup ORDER BY x, prov_public_dup_tag`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	tags := []string{res.Rows[0][2].Str(), res.Rows[1][2].Str(), res.Rows[2][2].Str()}
	if strings.Join(tags, "") != "abc" {
		t.Errorf("witness tags = %v", tags)
	}
}

// TestLimitProvenance: join-back on tuple equality.
func TestLimitProvenance(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`SELECT PROVENANCE mId FROM messages ORDER BY mId LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestProvenanceViewDefinition: views whose definition itself uses SELECT
// PROVENANCE can be stored and queried.
func TestProvenanceViewDefinition(t *testing.T) {
	db := forumDB(t)
	db.MustExec(`CREATE VIEW pview AS SELECT PROVENANCE mId, text FROM messages`)
	res, err := db.Query(`SELECT prov_public_messages_uid FROM pview ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 2 || res.Rows[1][0].Int() != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestNestedProvenanceBlocks: an outer SELECT PROVENANCE over an inner
// provenance subquery propagates the inner provenance attributes and derives
// provenance for everything else (rule 0).
func TestNestedProvenanceBlocks(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`
		SELECT PROVENANCE p.mId, u.name
		FROM (SELECT PROVENANCE mId, uId FROM messages) AS p
		     JOIN users u ON p.uId = u.uId
		ORDER BY p.mId`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.Columns, ",")
	// Inner provenance (messages) must survive; users provenance is derived.
	if !strings.Contains(joined, "prov_public_messages_mid") ||
		!strings.Contains(joined, "prov_public_users_uid") {
		t.Errorf("columns = %v", res.Columns)
	}
	// The messages relation must NOT be re-derived a second time.
	if strings.Contains(joined, "messages_1") {
		t.Errorf("inner provenance re-derived: %v", res.Columns)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

// TestCopyVsInfluenceSameWitnessRows: COPY masks attributes but keeps the
// same witness tuples as INFLUENCE.
func TestCopyVsInfluenceSameWitnessRows(t *testing.T) {
	db := forumDB(t)
	q := func(sem string) *perm.Result {
		res, err := db.Query(`SELECT PROVENANCE ON CONTRIBUTION (` + sem + `) count(*), text
			FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId, text`)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	infl, cp := q("INFLUENCE"), q("COPY")
	if len(infl.Rows) != len(cp.Rows) {
		t.Errorf("witness counts differ: %d vs %d", len(infl.Rows), len(cp.Rows))
	}
}

// TestStrategySettingsEndToEnd: forced strategies produce identical rows.
func TestStrategySettingsEndToEnd(t *testing.T) {
	db := perm.Open()
	if err := workload.LoadForum(db.Engine(), workload.DefaultForum(60)); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM imports`,
		`SELECT PROVENANCE count(*), uid FROM approved GROUP BY uid`,
	}
	settings := [][]string{
		{`SET provenance_set_strategy = 'pad'`, `SET provenance_agg_strategy = 'joingroup'`},
		{`SET provenance_set_strategy = 'join'`, `SET provenance_agg_strategy = 'crossfilter'`},
		{`SET provenance_strategy = 'cost'`},
	}
	for _, q := range queries {
		var baseline *perm.Result
		for i, sets := range settings {
			sess := db.NewSession()
			for _, st := range sets {
				if _, err := sess.Exec(st); err != nil {
					t.Fatal(err)
				}
			}
			res, err := sess.Exec(q)
			if err != nil {
				t.Fatalf("%q under %v: %v", q, sets, err)
			}
			if i == 0 {
				baseline = res
				continue
			}
			if !sameRows(baseline, res) {
				t.Errorf("%q: strategy setting %v changed the result", q, sets)
			}
		}
	}
}

// TestProvenanceOfWitnessesReconstructsAggregates: summing the witness
// attribute over the provenance reproduces the aggregate value (the
// warehouse example's consistency check, as a test).
func TestProvenanceOfWitnessesReconstructsAggregates(t *testing.T) {
	db := perm.Open()
	if err := workload.LoadStar(db.Engine(), workload.DefaultStar(200)); err != nil {
		t.Fatal(err)
	}
	direct, err := db.Query(`
		SELECT region, sum(amount) FROM sales s JOIN customers c ON s.cid = c.cid
		GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	recomputed, err := db.Query(`
		SELECT region, sum(prov_public_sales_amount)
		FROM (SELECT PROVENANCE region, sum(amount)
		      FROM sales s JOIN customers c ON s.cid = c.cid
		      GROUP BY region) AS p
		GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Rows) != len(recomputed.Rows) {
		t.Fatalf("group counts differ")
	}
	for i := range direct.Rows {
		a, b := direct.Rows[i][1].Float(), recomputed.Rows[i][1].Float()
		if diff := a - b; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("region %v: direct %v vs recomputed %v",
				direct.Rows[i][0], a, b)
		}
	}
}

// TestScalarSubqueryComparisonProvenance: WHERE x = (SELECT agg ...) pulls
// the aggregate's witnesses into the provenance.
func TestScalarSubqueryComparisonProvenance(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`
		SELECT PROVENANCE mId FROM messages
		WHERE uId = (SELECT max(uId) FROM users)`)
	if err != nil {
		t.Fatal(err)
	}
	// max(uid)=3 → message 1; witnesses include the users tuples feeding max.
	if len(res.Rows) != 3 { // 1 message × 3 users rows contributing to max
		t.Fatalf("rows = %v (columns %v)", res.Rows, res.Columns)
	}
	if !strings.Contains(strings.Join(res.Columns, ","), "prov_public_users_uid") {
		t.Errorf("columns = %v", res.Columns)
	}
}

// TestRewrittenSQLRoundTripOnFigures: the rewritten SQL the browser displays
// must itself run and reproduce the provenance rows for the paper's queries.
func TestRewrittenSQLRoundTripOnFigures(t *testing.T) {
	db := forumDB(t)
	queries := []string{
		`SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports`,
		`SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId, text`,
		`SELECT PROVENANCE text FROM v1 BASERELATION WHERE mId > 3`,
	}
	for _, q := range queries {
		ex, err := db.Explain(q)
		if err != nil {
			t.Fatalf("explain %q: %v", q, err)
		}
		direct, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		round, err := db.Query(ex.RewrittenSQL)
		if err != nil {
			t.Errorf("rewritten SQL does not run for %q: %v\nSQL: %s", q, err, ex.RewrittenSQL)
			continue
		}
		if !sameRows(direct, round) {
			t.Errorf("rewritten SQL result differs for %q", q)
		}
	}
}

// TestProvenanceStableUnderOptimizer: the planner must not change the
// provenance relation (rows or columns) of a rewritten query.
func TestProvenanceStableUnderOptimizer(t *testing.T) {
	db := perm.Open()
	if err := workload.LoadForum(db.Engine(), workload.DefaultForum(80)); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text`,
		`SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM imports`,
		`SELECT PROVENANCE m.mid FROM messages m WHERE EXISTS (SELECT 1 FROM approved a WHERE a.mid = m.mid)`,
	}
	on, off := db.NewSession(), db.NewSession()
	off.MustExec(`SET optimizer = 'off'`)
	for _, q := range queries {
		a, err := on.Exec(q)
		if err != nil {
			t.Fatalf("%q with optimizer: %v", q, err)
		}
		b, err := off.Exec(q)
		if err != nil {
			t.Fatalf("%q without optimizer: %v", q, err)
		}
		if strings.Join(a.Columns, ",") != strings.Join(b.Columns, ",") {
			t.Errorf("%q: columns differ across optimizer setting", q)
		}
		if !sameRows(a, b) {
			t.Errorf("%q: rows differ across optimizer setting", q)
		}
	}
}

// TestErrorMessages exercises user-facing failure modes end to end.
func TestErrorMessages(t *testing.T) {
	db := forumDB(t)
	cases := []struct {
		q    string
		want string
	}{
		{`SELECT PROVENANCE (SELECT max(mId) FROM imports) FROM messages`, "select list"},
		{`SELECT PROVENANCE zz FROM messages`, "does not exist"},
		{`SELECT mId FROM messages WHERE`, "expected expression"},
		{`SELECT PROVENANCE ON CONTRIBUTION (MAGIC) mId FROM messages`, "contribution"},
		{`SELECT text FROM v1 PROVENANCE (nope)`, "does not exist"},
	}
	for _, c := range cases {
		_, err := db.Query(c.q)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want containing %q", c.q, err, c.want)
		}
	}
}

// TestFormatTable renders NULLs as empty cells and aligns columns.
func TestFormatTable(t *testing.T) {
	db := forumDB(t)
	res, err := db.Query(`SELECT mId, origin FROM imports UNION ALL SELECT mId, NULL FROM messages ORDER BY mId`)
	if err != nil {
		t.Fatal(err)
	}
	table := perm.FormatTable(res)
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if len(lines) != 2+4 {
		t.Fatalf("table:\n%s", table)
	}
	if !strings.Contains(lines[0], "mid") || !strings.Contains(lines[0], "origin") {
		t.Errorf("header: %s", lines[0])
	}
	width := len(lines[0])
	for _, l := range lines {
		if len(l) != width {
			t.Errorf("misaligned table:\n%s", table)
			break
		}
	}
}
