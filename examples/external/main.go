// External provenance: Perm's rewrite rules do not care how the provenance
// attributes of their input were produced (§2.2). This example feeds the
// system provenance that Perm never computed — curation annotations recorded
// by hand — and lets the rewriter propagate it through a query, combined
// with provenance Perm derives itself.
//
// Run with: go run ./examples/external
package main

import (
	"fmt"

	"perm"
)

func main() {
	db := perm.Open()

	// A curated gene table, imported from an external source. The curators
	// recorded, per row, which source database and accession the entry was
	// copied from — manually created provenance.
	db.MustExecScript(`
		CREATE TABLE genes (gene text, organism text, src_db text, src_acc text);
		INSERT INTO genes VALUES
			('BRCA1', 'human', 'GenBank', 'U14680'),
			('BRCA2', 'human', 'GenBank', 'U43746'),
			('TP53',  'human', 'EMBL',    'X54156'),
			('MYC',   'mouse', 'EMBL',    'L00039');
		CREATE TABLE expression (gene text, tissue text, level float);
		INSERT INTO expression VALUES
			('BRCA1', 'breast', 8.1), ('BRCA1', 'ovary', 6.5),
			('BRCA2', 'breast', 5.2), ('TP53', 'colon', 9.7),
			('MYC', 'liver', 7.3);
	`)

	// PROVENANCE (src_db, src_acc) declares the curators' columns as the
	// provenance attributes of genes: the rewriter propagates them untouched
	// instead of deriving its own, while expression still gets computed
	// provenance.
	res := db.MustExec(`
		SELECT PROVENANCE g.gene, e.tissue, e.level
		FROM genes g PROVENANCE (src_db, src_acc)
		     JOIN expression e ON g.gene = e.gene
		WHERE g.organism = 'human'
		ORDER BY g.gene, e.tissue`)
	fmt.Println("human expression with mixed external + computed provenance:")
	fmt.Print(perm.FormatTable(res))

	// The external attributes behave exactly like Perm's own provenance:
	// query them with plain SQL — everything we ultimately copied from
	// GenBank.
	genbank := db.MustExec(`
		SELECT DISTINCT src_acc
		FROM (SELECT PROVENANCE g.gene, e.tissue
		      FROM genes g PROVENANCE (src_db, src_acc)
		           JOIN expression e ON g.gene = e.gene) AS p
		WHERE src_db = 'GenBank'
		ORDER BY src_acc`)
	fmt.Println("\naccessions this analysis depends on (GenBank only):")
	fmt.Print(perm.FormatTable(genbank))

	// Incremental: a second system can hand the full result (data +
	// provenance) onwards; downstream queries keep the lineage without
	// access to the original tables.
	db.MustExec(`CREATE TABLE handoff AS
		SELECT PROVENANCE g.gene, e.tissue, e.level
		FROM genes g PROVENANCE (src_db, src_acc)
		     JOIN expression e ON g.gene = e.gene`)
	downstream := db.MustExec(`
		SELECT PROVENANCE gene, level
		FROM handoff PROVENANCE (src_db, src_acc,
		                         prov_public_expression_gene,
		                         prov_public_expression_tissue,
		                         prov_public_expression_level)
		WHERE level > 7
		ORDER BY gene`)
	fmt.Println("\ndownstream query over the handed-off provenance:")
	fmt.Print(perm.FormatTable(downstream))
}
