// Forum: the running example of the paper (Figure 1) end to end — views,
// union provenance (Figure 2), aggregation provenance, contribution
// semantics (INFLUENCE vs COPY), and combining provenance with regular SQL
// (the §2.4 superForum query).
//
// Run with: go run ./examples/forum
package main

import (
	"fmt"

	"perm"
)

func main() {
	db := perm.Open()
	db.MustExecScript(`
		CREATE TABLE messages (mId int, text text, uId int);
		CREATE TABLE users (uId int, name text);
		CREATE TABLE imports (mId int, text text, origin text);
		CREATE TABLE approved (uId int, mId int);
		INSERT INTO messages VALUES (1, 'lorem ipsum ...', 3), (4, 'hi there ...', 2);
		INSERT INTO users VALUES (1, 'Bert'), (2, 'Gert'), (3, 'Gertrud');
		INSERT INTO imports VALUES (2, 'hello ...', 'superForum'), (3, 'I don''t ...', 'HiBoard');
		INSERT INTO approved VALUES (2, 2), (1, 4), (2, 4), (3, 4);
	`)

	// q1/q2: all messages, own or imported, stored as a view.
	db.MustExec(`CREATE VIEW v1 AS
		SELECT mId, text FROM messages UNION SELECT mId, text FROM imports`)

	// Figure 2: provenance of q1. Each result tuple carries the contributing
	// tuple from messages OR imports; the other side is NULL-padded.
	fig2 := db.MustExec(`SELECT PROVENANCE mId, text FROM messages
	                     UNION SELECT mId, text FROM imports ORDER BY mId`)
	fmt.Println("Figure 2 — provenance of q1:")
	fmt.Print(perm.FormatTable(fig2))

	// q3 with provenance: which messages, imports and approvals explain each
	// approval count?
	q3 := db.MustExec(`SELECT PROVENANCE count(*), text
	                   FROM v1 JOIN approved a ON v1.mId = a.mId
	                   GROUP BY v1.mId, text
	                   ORDER BY text, prov_public_approved_uid`)
	fmt.Println("\nq3 with provenance (aggregation witnesses):")
	fmt.Print(perm.FormatTable(q3))

	// §2.4: provenance combined with normal SQL — imported messages from
	// superForum with at least one approval.
	combined := db.MustExec(`
		SELECT text, prov_public_imports_origin
		FROM (SELECT PROVENANCE count(*), text
		      FROM v1 JOIN approved a ON v1.mId = a.mId
		      GROUP BY v1.mId, text) AS prov
		WHERE count > 0 AND prov_public_imports_origin = 'superForum'`)
	fmt.Println("\nsuperForum messages with approvals (provenance + SQL):")
	fmt.Print(perm.FormatTable(combined))

	// Contribution semantics: COPY (Where-provenance) masks provenance
	// attributes whose values were never copied to the output — here uId of
	// messages and origin of imports never reach q1's output.
	copySem := db.MustExec(`SELECT PROVENANCE ON CONTRIBUTION (COPY) mId, text FROM messages
	                        UNION SELECT mId, text FROM imports ORDER BY mId`)
	fmt.Println("\nq1 under COPY contribution semantics (non-copied attributes masked):")
	fmt.Print(perm.FormatTable(copySem))

	// BASERELATION: stop the rewrite at the view — provenance in terms of
	// view tuples instead of base tuples (incremental provenance).
	baserel := db.MustExec(`SELECT PROVENANCE text FROM v1 BASERELATION WHERE mId > 3`)
	fmt.Println("\nview-level provenance via BASERELATION:")
	fmt.Print(perm.FormatTable(baserel))
}
