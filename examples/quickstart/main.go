// Quickstart: open a Perm database, create a table, and ask the system
// WHERE a query result came from with SELECT PROVENANCE.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"perm"
)

func main() {
	db := perm.Open()

	// Ordinary SQL works as usual.
	db.MustExec(`CREATE TABLE cities (name text, country text, population int)`)
	db.MustExec(`INSERT INTO cities VALUES
		('Zurich',  'CH', 400000),
		('Geneva',  'CH', 200000),
		('Berlin',  'DE', 3700000),
		('Hamburg', 'DE', 1800000)`)

	res := db.MustExec(`SELECT country, sum(population) AS total
	                    FROM cities GROUP BY country ORDER BY country`)
	fmt.Println("aggregate result:")
	fmt.Print(perm.FormatTable(res))

	// Now the same query with PROVENANCE: every output row is annotated with
	// the base tuples that contributed to it (one row per witness).
	prov := db.MustExec(`SELECT PROVENANCE country, sum(population) AS total
	                     FROM cities GROUP BY country ORDER BY country, prov_public_cities_name`)
	fmt.Println("\nwith provenance (one row per contributing tuple):")
	fmt.Print(perm.FormatTable(prov))

	// Provenance is ordinary relational data — filter it with plain SQL:
	// which input rows explain the German total?
	why := db.MustExec(`SELECT prov_public_cities_name, prov_public_cities_population
	                    FROM (SELECT PROVENANCE country, sum(population) AS total
	                          FROM cities GROUP BY country) AS p
	                    WHERE country = 'DE'
	                    ORDER BY prov_public_cities_population DESC`)
	fmt.Println("\nwhy is the DE total what it is?")
	fmt.Print(perm.FormatTable(why))

	// The rewritten SQL that computed all of this is visible, just like in
	// the Perm browser of the demo.
	ex, err := db.Explain(`SELECT PROVENANCE country, sum(population) FROM cities GROUP BY country`)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nrewritten SQL:")
	fmt.Println(ex.RewrittenSQL)
}
