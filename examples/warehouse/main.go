// Warehouse: eager provenance for error tracing in a data-warehouse setting
// (one of the paper's motivating use cases). A star schema is aggregated
// into a report; the report's provenance is materialized once with CREATE
// TABLE AS SELECT PROVENANCE (eager computation), and later used to trace a
// suspicious report cell back to the fact rows that produced it — without
// re-running the provenance computation.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"

	"perm"
	"perm/internal/workload"
)

func main() {
	db := perm.Open()
	if err := workload.LoadStar(db.Engine(), workload.DefaultStar(400)); err != nil {
		panic(err)
	}

	// The nightly report: revenue by region and product category.
	db.MustExec(`CREATE VIEW report AS
		SELECT region, category, sum(amount) AS revenue, count(*) AS n
		FROM sales s JOIN customers c ON s.cid = c.cid
		             JOIN products p ON s.pid = p.pid
		GROUP BY region, category`)

	rep := db.MustExec(`SELECT * FROM report ORDER BY region, category`)
	fmt.Println("report:")
	fmt.Print(perm.FormatTable(rep))

	// Eager provenance: materialize the report WITH its provenance once.
	res := db.MustExec(`CREATE TABLE report_prov AS
		SELECT PROVENANCE region, category, sum(amount) AS revenue, count(*) AS n
		FROM sales s JOIN customers c ON s.cid = c.cid
		             JOIN products p ON s.pid = p.pid
		GROUP BY region, category`)
	fmt.Printf("\nmaterialized provenance: %s rows stored in report_prov\n", res.Tag)

	// Trace: an analyst doubts the north/widgets number. Which sales fed it,
	// and which customers placed them? Plain SQL over the stored provenance.
	trace := db.MustExec(`
		SELECT prov_public_sales_sid AS sale,
		       prov_public_customers_cname AS customer,
		       prov_public_sales_amount AS amount
		FROM report_prov
		WHERE region = 'north' AND category = 'widgets'
		ORDER BY prov_public_sales_amount DESC
		LIMIT 5`)
	fmt.Println("\ntop sales behind the north/widgets cell:")
	fmt.Print(perm.FormatTable(trace))

	// Verify against the lazy computation: the traced amounts sum to the
	// reported revenue.
	check := db.MustExec(`
		SELECT region, category, sum(prov_public_sales_amount) AS recomputed
		FROM report_prov
		WHERE region = 'north' AND category = 'widgets'
		GROUP BY region, category`)
	fmt.Println("\nconsistency check (recomputed from provenance):")
	fmt.Print(perm.FormatTable(check))
}
