# Perm — build, verify and benchmark targets.

GO ?= go

.PHONY: check build fmt vet test bench bench-figures race

## check: full verification (build + fmt + vet + tests under the race
## detector — the network server and driver are exercised by concurrent
## clients, so check always races)
check: build fmt vet race

## fmt: fail when any file is not gofmt-formatted
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: tests under the race detector (catalog/storage/plan-cache locking)
race:
	$(GO) test -race ./...

## bench: every benchmark, 5 samples with allocation reporting
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 5 .

## bench-figures: just the figure-regenerating experiments E1–E3 tracked in
## PERFORMANCE.md
bench-figures:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure1QueryExecution|BenchmarkFigure2Provenance|BenchmarkFigure3Stages' -benchmem -count 5 .
