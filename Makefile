# Perm — build, verify and benchmark targets.

GO ?= go

.PHONY: check build vet test bench bench-figures race

## check: full tier-1 verification (build + vet + tests)
check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## race: tests under the race detector (catalog/storage/plan-cache locking)
race:
	$(GO) test -race ./...

## bench: every benchmark, 5 samples with allocation reporting
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count 5 .

## bench-figures: just the figure-regenerating experiments E1–E3 tracked in
## PERFORMANCE.md
bench-figures:
	$(GO) test -run '^$$' -bench 'BenchmarkFigure1QueryExecution|BenchmarkFigure2Provenance|BenchmarkFigure3Stages' -benchmem -count 5 .
