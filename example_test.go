package perm_test

import (
	"fmt"

	"perm"
)

// ExampleOpen shows the minimal provenance workflow: create data, ask a
// query, and ask the same query with PROVENANCE.
func ExampleOpen() {
	db := perm.Open()
	db.MustExec(`CREATE TABLE r (i int)`)
	db.MustExec(`INSERT INTO r VALUES (1), (2)`)

	res := db.MustExec(`SELECT PROVENANCE i FROM r ORDER BY i`)
	fmt.Println(res.Columns)
	for _, row := range res.Rows {
		fmt.Println(row[0].Int(), row[1].Int())
	}
	// Output:
	// [i prov_public_r_i]
	// 1 1
	// 2 2
}

// ExampleDB_Explain shows the Perm-browser artifacts: rewrite decisions and
// the rewritten SQL for a provenance aggregation.
func ExampleDB_Explain() {
	db := perm.Open()
	db.MustExec(`CREATE TABLE sales (region text, amount int)`)
	db.MustExec(`INSERT INTO sales VALUES ('north', 10), ('north', 5), ('south', 7)`)

	res := db.MustExec(`SELECT PROVENANCE region, sum(amount) FROM sales GROUP BY region ORDER BY region, prov_public_sales_amount`)
	for _, row := range res.Rows {
		fmt.Printf("%s total=%d from sale of %d\n",
			row[0].Str(), row[1].Int(), row[3].Int())
	}
	// Output:
	// north total=15 from sale of 5
	// north total=15 from sale of 10
	// south total=7 from sale of 7
}

// ExampleDB_Exec_contribution demonstrates Where-provenance (COPY): the
// amount column is aggregated — not copied — so its provenance is masked,
// while the copied region survives.
func ExampleDB_Exec_contribution() {
	db := perm.Open()
	db.MustExec(`CREATE TABLE sales (region text, amount int)`)
	db.MustExec(`INSERT INTO sales VALUES ('north', 10)`)

	res := db.MustExec(`SELECT PROVENANCE ON CONTRIBUTION (COPY)
		region, sum(amount) FROM sales GROUP BY region`)
	for i, col := range res.Columns {
		fmt.Printf("%s = %s\n", col, res.Rows[0][i])
	}
	// Output:
	// region = north
	// sum = 10
	// prov_public_sales_region = north
	// prov_public_sales_amount = null
}
