// Command permserver serves a Perm provenance database over TCP using the
// wire protocol of internal/wire, so standard database/sql clients (via
// perm/driver) and permshell -connect can query it concurrently.
//
//	permserver -addr :5433 -load example
//	permserver -addr :5433 -open snapshot.perm -save snapshot.perm
//	permserver -addr :5434 -replica-of 127.0.0.1:5433
//
// Every connection gets its own session (settings, plan cache) over the
// shared database. SIGINT/SIGTERM triggers a graceful shutdown: accepting
// stops, idle connections close, in-flight requests drain (bounded by
// -drain), and with -save set a final consistent snapshot is written.
//
// With -replica-of the server runs as a read-scaling replica: it bootstraps
// from the primary's consistent snapshot stream, applies the logical change
// feed (reconnecting with backoff and resuming from its applied LSN), and
// serves read-only sessions — SELECT, provenance queries, EXPLAIN and SHOW
// work; writes fail with a typed read-only error. A replica restarted with
// -open resumes incrementally from the snapshot's LSN instead of taking a
// full re-snapshot, as long as the primary still retains that log tail.
// Replicas also serve Subscribe themselves, so replicas can be chained.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"perm/internal/engine"
	"perm/internal/logx"
	"perm/internal/metrics"
	"perm/internal/repl"
	"perm/internal/server"
	"perm/internal/wal"
	"perm/internal/workload"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:5433", "listen address (host:port)")
		maxConns     = flag.Int("max-conns", 256, "maximum concurrent connections (0 = unlimited)")
		queryTimeout = flag.Duration("query-timeout", 30*time.Second, "per-query execution timeout (0 = unlimited)")
		load         = flag.String("load", "", "bootstrap dataset: example | forum[:N] | star[:N]")
		open         = flag.String("open", "", "restore the database from a snapshot file at startup")
		save         = flag.String("save", "", "write a consistent snapshot to this file on shutdown")
		dataDir      = flag.String("data-dir", "", "durable data directory: snapshot + fsync'd write-ahead log; crash recovery replays the WAL on startup")
		walSync      = flag.String("wal-sync", "always", "WAL fsync policy: always | group | group(<ms>) | off (SET wal_sync changes it at runtime)")
		ckInterval   = flag.Duration("checkpoint-interval", time.Minute, "background checkpoint interval with -data-dir (0 = only on shutdown)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		quiet        = flag.Bool("quiet", false, "disable per-session logging")
		replicaOf    = flag.String("replica-of", "", "run as a read-only replica of the primary at host:port")
		replRetain   = flag.Int("repl-retain", repl.DefaultRetention, "change-log records retained for follower catch-up (0 = unlimited)")
		replRetainMB = flag.Int("repl-retain-mb", repl.DefaultRetentionBytes>>20, "approximate change-log memory budget in MiB (0 = unlimited)")
		heartbeat    = flag.Duration("heartbeat", time.Second, "replication heartbeat interval sent to followers")
		cursorBatch  = flag.Int("cursor-batch", 0, "rows per streamed result batch frame (0 = default 256)")
		workMem      = flag.Int64("work-mem", 0, "per-session memory budget in bytes for blocking operators; past it sorts/aggregates/set ops spill to disk (0 = engine default, -1 = unlimited)")
		parallelism  = flag.Int("parallelism", 0, "default intra-query parallelism degree per session (0 = serial, -1 = all cores; sessions can still SET parallelism)")
		tempDir      = flag.String("temp-dir", "", "directory for spill temp files (default: the OS temp directory)")
		syncReplicas = flag.Int("sync-replicas", 0, "semi-synchronous replication: writes are acknowledged only after this many replicas have durably applied them (0 = async)")
		syncTimeout  = flag.Duration("sync-timeout", 2*time.Second, "how long a write waits for its replica-acknowledgment quorum before failing with a typed error")
		metricsAddr  = flag.String("metrics-addr", "", "serve Prometheus metrics and pprof on this address (e.g. 127.0.0.1:9090); empty disables")
		slowQueryMs  = flag.Int64("slow-query-ms", 0, "log statements taking at least this many milliseconds (0 = disabled; sessions can still SET slow_query_ms)")
		vacuumEvery  = flag.Duration("vacuum-interval", time.Second, "background MVCC vacuum cadence: reclaims row versions no pinned snapshot can still see")
		logFormat    = flag.String("log-format", "text", "log output format: text | json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()
	minLevel, err := logx.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	slog := logx.New(os.Stderr, *logFormat, minLevel, "permserver")
	logger := logAdapter{slog}
	if *replicaOf != "" && *load != "" {
		logger.Fatalf("-load writes to the database; a replica (-replica-of) is read-only — load the primary instead")
	}
	if *dataDir != "" && *open != "" {
		logger.Fatalf("-open conflicts with -data-dir: the data directory has its own snapshot; use one or the other")
	}

	var db *engine.DB
	var mgr *wal.Manager
	if *dataDir != "" {
		store, m, rec, err := wal.Open(*dataDir, wal.Options{
			Sync:               *walSync,
			CheckpointInterval: *ckInterval,
			Logf:               logger.Printf,
		})
		if err != nil {
			logger.Fatalf("recover %s: %v", *dataDir, err)
		}
		mgr = m
		db = engine.NewDBFrom(store)
		db.SetWALController(server.WALController(mgr))
		logger.Printf("recovered %s: %s", *dataDir, rec)
	} else {
		db = engine.NewDB()
	}
	db.Store().Log().SetRetention(*replRetain)
	db.Store().Log().SetRetentionBytes(*replRetainMB << 20)
	if *open != "" {
		f, err := os.Open(*open)
		if err != nil {
			logger.Fatalf("open snapshot: %v", err)
		}
		err = db.Store().Restore(f)
		f.Close()
		if err != nil {
			logger.Fatalf("restore %s: %v", *open, err)
		}
		logger.Printf("restored database from %s", *open)
	}
	if *load != "" {
		if err := loadDataset(db, *load); err != nil {
			logger.Fatalf("load %s: %v", *load, err)
		}
		logger.Printf("loaded dataset %s", *load)
	}

	cfg := server.Config{
		MaxConns:          *maxConns,
		QueryTimeout:      *queryTimeout,
		HeartbeatInterval: *heartbeat,
		CursorBatchRows:   *cursorBatch,
		WorkMem:           *workMem,
		Parallelism:       *parallelism,
		TempDir:           *tempDir,
		SyncReplicas:      *syncReplicas,
		SyncTimeout:       *syncTimeout,
		SlowQueryMs:       *slowQueryMs,
		Log:               slog,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv := server.New(db, cfg)

	// Background version vacuum: writers append row versions; this reclaims
	// the ones no pinned snapshot (statement or open transaction) can reach.
	// It reads the store through the DB on every pass, so a replica
	// re-bootstrap's store swap is picked up automatically.
	stopVacuum := db.StartVacuum(*vacuumEvery)
	defer stopVacuum()

	// Every server is a managed cluster member: the harness restores the
	// persisted fencing epoch from -data-dir and serves coordinator-issued
	// promote/demote orders, so a permrouter can fail the cluster over
	// without restarting processes.
	fcfg := server.FollowerConfig{}
	if mgr != nil {
		// A durable replica journals the feed it applies: restart
		// recovers from local disk and resumes the stream incrementally
		// instead of re-bootstrapping, and a fresh bootstrap snapshot
		// rebases the local WAL onto the primary's history.
		fcfg.PrepareStore = mgr.AdoptStore
	}
	if !*quiet {
		fcfg.Logf = logger.Printf
	}
	node, err := server.NewClusterNode(db, srv, server.ClusterNodeConfig{
		DataDir:  *dataDir,
		Follower: fcfg,
		Logf:     logger.Printf,
	})
	if err != nil {
		logger.Fatalf("cluster harness: %v", err)
	}
	if *replicaOf != "" {
		node.Follow(*replicaOf)
		logger.Printf("replica of %s (resuming after LSN %d)", *replicaOf, db.Store().Log().LastLSN())
	} else if err := node.EnsurePrimaryEpoch(); err != nil {
		logger.Fatalf("cluster harness: %v", err)
	}

	if *metricsAddr != "" {
		msrv := &http.Server{Addr: *metricsAddr, Handler: metrics.Default.Handler()}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("metrics listener: %v", err)
			}
		}()
		defer msrv.Close()
		logger.Printf("metrics and pprof on http://%s/metrics", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()
	logger.Printf("serving on %s (max-conns=%d, query-timeout=%s)", *addr, *maxConns, *queryTimeout)

	exitCode := 0
	select {
	case err := <-serveErr:
		// Even a fatal serve error must not lose the database when the
		// operator asked for a shutdown snapshot: drain and fall through to
		// the -save block below.
		logger.Printf("serve: %v", err)
		exitCode = 1
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v (connections force-closed)", err)
		}
	case s := <-sig:
		logger.Printf("received %s, draining (deadline %s)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("shutdown: %v (connections force-closed)", err)
		}
	}

	if follower := node.Follower(); follower != nil {
		// Stop applying before the final snapshot so -save captures a stable
		// LSN the restarted replica resumes from.
		st := follower.Status()
		node.Stop()
		logger.Printf("replication stopped at LSN %d (primary at %d, lag %d)",
			st.AppliedLSN, st.PrimaryLSN, st.Lag())
	}

	if mgr != nil {
		// Final checkpoint so the next start replays (close to) nothing,
		// then detach — everything acknowledged is already fsync'd per the
		// sync policy, so even a failed checkpoint loses nothing.
		if err := mgr.Checkpoint(); err != nil {
			logger.Printf("final checkpoint: %v (WAL replay will cover it)", err)
		}
		if err := mgr.Close(); err != nil {
			logger.Printf("closing WAL: %v", err)
		} else {
			logger.Printf("data directory %s closed cleanly", *dataDir)
		}
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			logger.Fatalf("create snapshot: %v", err)
		}
		err = db.Store().Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			logger.Fatalf("save %s: %v", *save, err)
		}
		logger.Printf("saved snapshot to %s", *save)
	}
	logger.Printf("served %d queries, goodbye", srv.QueriesServed())
	os.Exit(exitCode)
}

// logAdapter keeps the printf-style call sites over the structured logger
// and gives Fatalf back (logx deliberately has no exiting level).
type logAdapter struct{ l *logx.Logger }

func (a logAdapter) Printf(format string, args ...any) { a.l.Printf(format, args...) }

func (a logAdapter) Fatalf(format string, args ...any) {
	a.l.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

// loadDataset bootstraps one of the built-in workloads: "example",
// "forum[:N]", "star[:N]".
func loadDataset(db *engine.DB, spec string) error {
	name, arg, _ := strings.Cut(spec, ":")
	n := 1000
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return fmt.Errorf("bad scale %q", arg)
		}
		n = v
	}
	return workload.LoadByName(db, name, n)
}
