// Command permshell is the terminal analog of the Perm browser used in the
// demonstration (Figure 4): an interactive SQL shell against an in-memory
// Perm database that can display, for every query, the result table, the
// rewritten SQL, and the original and rewritten algebra trees.
//
// With -connect host:port the shell becomes a remote client of a running
// permserver: statements execute in a server-side session over the wire
// protocol, and \save streams a consistent online backup.
//
// Meta commands:
//
//	\d [table]        list relations / describe one
//	\load example     load the paper's Figure 1 database
//	\load forum N     load a scaled synthetic forum database
//	\load star N      load a synthetic sales star schema
//	\trees on|off     show algebra trees for each query (default off)
//	\timing on|off    show per-stage timings (default off)
//	\set name value   session setting (shorthand for SET)
//	\status           server role and replication status
//	\cluster [addrs]  probe cluster members: roles, epochs, lag
//	\mem              session memory budget and spill counters
//	\q                quit
//
// Blocking operators (ORDER BY, GROUP BY, INTERSECT/EXCEPT, DISTINCT) run
// under the session's work_mem budget and spill to disk past it, so a
// provenance result far larger than RAM still sorts and aggregates:
//
//	perm=# SET work_mem = 1048576;    -- 1 MiB budget (bytes; 0 = unlimited)
//	perm=# SELECT PROVENANCE * FROM posts ORDER BY content DESC;
//	perm=# SHOW memory_status;        -- or \mem: budget, peak, spill files/bytes
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"perm"
	"perm/internal/value"
	"perm/internal/wire"
	"perm/internal/workload"
)

type shell struct {
	db     *perm.DB
	client *wire.Client // non-nil in -connect mode
	addr   string       // the -connect address, for \cluster's default probe
	out    *bufio.Writer
	trees  bool
	timing bool
	// fetch is the cursor batch size for remote queries: the server
	// suspends the result every N rows and the shell fetches on, so a huge
	// provenance result never materializes server-side. 0 streams without
	// suspending.
	fetch int
	// parDeg is the raw -parallelism flag (0 = not given, negative = all
	// cores). \load and \open replace the embedded database and with it
	// the implicit session, so the flag's SET must be re-applied then.
	parDeg int
}

// applyParallelism issues the -parallelism flag's SET against the current
// database/connection. Called at startup and again whenever a meta command
// swaps the embedded database out from under the session.
func (s *shell) applyParallelism() {
	if s.parDeg == 0 {
		return
	}
	n := s.parDeg
	if n < 0 {
		n = 0 // negative flag = all cores (SET parallelism = 0)
	}
	s.run(fmt.Sprintf("SET parallelism = %d;", n))
}

func main() {
	connect := flag.String("connect", "", "connect to a permserver at host:port instead of running embedded")
	parallelism := flag.Int("parallelism", 0, "intra-query parallelism degree for this session (0 = serial, -1 = all cores)")
	flag.Parse()

	fmt.Println("Perm shell — provenance management system (SQL-PLE dialect)")
	fmt.Println(`type SQL statements terminated by ';', \? for help, \q to quit`)

	sh := &shell{out: bufio.NewWriter(os.Stdout), fetch: 512}
	if *connect != "" {
		client, err := wire.Dial(*connect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "connect %s: %v\n", *connect, err)
			os.Exit(1)
		}
		sh.client = client
		sh.addr = *connect
		defer client.Close()
		fmt.Printf("connected to %s (server %q, protocol %d)\n",
			*connect, client.Server().Server, client.Server().Version)
	} else {
		sh.db = perm.Open()
	}
	sh.parDeg = *parallelism
	sh.applyParallelism()
	defer sh.out.Flush()

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "perm=# "
	for {
		sh.out.Flush()
		fmt.Print(prompt)
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !sh.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			sh.run(buf.String())
			buf.Reset()
			prompt = "perm=# "
		} else if strings.TrimSpace(buf.String()) != "" {
			prompt = "perm-# "
		}
	}
}

func (s *shell) run(sqlText string) {
	sqlText = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sqlText), ";"))
	if sqlText == "" {
		return
	}
	if s.client != nil {
		s.runRemote(sqlText)
		return
	}
	if s.trees && looksLikeQuery(sqlText) {
		if ex, err := s.db.Explain(sqlText); err == nil {
			fmt.Fprintln(s.out, "original algebra tree:")
			fmt.Fprint(s.out, ex.OriginalTree)
			fmt.Fprintln(s.out, "rewritten algebra tree:")
			fmt.Fprint(s.out, ex.RewrittenTree)
			fmt.Fprintln(s.out, "rewritten SQL:", ex.RewrittenSQL)
			for _, d := range ex.Decisions {
				fmt.Fprintln(s.out, "decision:", d)
			}
		}
	}
	res, err := s.db.Exec(sqlText)
	if err != nil {
		fmt.Fprintln(s.out, "ERROR:", err)
		return
	}
	s.render(res)
}

// render prints a result the same way for the embedded and remote paths:
// table, tag, cache-hit note, timings.
func (s *shell) render(res *perm.Result) {
	if len(res.Columns) > 0 {
		fmt.Fprint(s.out, perm.FormatTable(res))
	}
	fmt.Fprintln(s.out, res.Tag)
	if res.CacheHit {
		fmt.Fprintln(s.out, "(served from plan cache)")
	}
	if s.timing {
		fmt.Fprintf(s.out, "timing: parse=%v analyze=%v rewrite=%v plan=%v execute=%v\n",
			res.ParseTime, res.AnalyzeTime, res.RewriteTime, res.PlanTime, res.ExecuteTime)
	}
}

// runRemote executes one statement in the server-side session through a v3
// cursor — the server streams the result in \fetch-sized batches instead of
// materializing it — and renders it exactly like the embedded path.
func (s *shell) runRemote(sqlText string) {
	cur, err := s.client.Execute("", sqlText, nil, s.fetch)
	if err != nil {
		fmt.Fprintln(s.out, "ERROR:", err)
		return
	}
	res := &perm.Result{Columns: cur.Desc.Names}
	if n := len(cur.Desc.IsProv); n > 0 {
		res.ProvenanceColumns = append([]bool(nil), cur.Desc.IsProv...)
	}
	for {
		row, err := cur.Next()
		if err != nil {
			cur.Close()
			fmt.Fprintln(s.out, "ERROR:", err)
			return
		}
		if row == nil {
			break
		}
		res.Rows = append(res.Rows, value.Row(row))
	}
	if err := cur.Close(); err != nil {
		fmt.Fprintln(s.out, "ERROR:", err)
		return
	}
	done := cur.Complete
	res.Tag = done.Tag
	res.CacheHit = done.CacheHit
	res.ParseTime = time.Duration(done.Parse)
	res.AnalyzeTime = time.Duration(done.Analyze)
	res.RewriteTime = time.Duration(done.Rewrite)
	res.PlanTime = time.Duration(done.Plan)
	res.ExecuteTime = time.Duration(done.Execute)
	s.render(res)
}

func looksLikeQuery(sqlText string) bool {
	lower := strings.ToLower(strings.TrimSpace(sqlText))
	return strings.HasPrefix(lower, "select") || strings.HasPrefix(lower, "(") ||
		strings.HasPrefix(lower, "values")
}

// meta handles backslash commands; it returns false to quit.
func (s *shell) meta(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\?", "\\h", "\\help":
		fmt.Fprintln(s.out, `meta commands:
  \d [table]       list relations / describe one
  \load example    load the paper's Figure 1 database
  \load forum N    load a scaled synthetic forum database
  \load star N     load a synthetic star schema
  \save file       persist the database (incl. materialized provenance)
  \open file       load a persisted database
  \trees on|off    show algebra trees per query
  \timing on|off   show stage timings per query
  \fetch N         cursor batch size for remote queries (0 = no suspension)
  \set name value  change a session setting (e.g. \set work_mem 1048576)
  \status          server role and replication status
  \cluster [addrs] probe cluster members (comma-separated; default: the -connect address)
  \mem             session memory budget, peak, spill counters
  \stats           process-wide engine metrics (queries, cache, WAL, spill)
  \trace on|off    per-query stage tracing (then SHOW last_trace)
  \q               quit`)
	case "\\d":
		if s.client != nil {
			fmt.Fprintln(s.out, `\d needs the embedded catalog; not available over -connect`)
			break
		}
		if len(fields) == 1 {
			s.listRelations()
		} else {
			s.describe(fields[1])
		}
	case "\\trees":
		if s.client != nil {
			fmt.Fprintln(s.out, `\trees runs EXPLAIN locally; not available over -connect`)
			break
		}
		s.trees = len(fields) > 1 && fields[1] == "on"
		fmt.Fprintf(s.out, "trees: %v\n", s.trees)
	case "\\timing":
		s.timing = len(fields) > 1 && fields[1] == "on"
		fmt.Fprintf(s.out, "timing: %v\n", s.timing)
	case "\\fetch":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: \\fetch N")
			break
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			fmt.Fprintln(s.out, "usage: \\fetch N (N >= 0)")
			break
		}
		s.fetch = n
		fmt.Fprintf(s.out, "fetch: %d\n", s.fetch)
	case "\\load":
		if s.client != nil {
			fmt.Fprintln(s.out, `\load replaces the local database; not available over -connect (use permserver -load)`)
			break
		}
		s.load(fields[1:])
	case "\\save":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: \\save file")
			break
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Fprintln(s.out, "ERROR:", err)
			break
		}
		if s.client != nil {
			// Remote: stream a consistent online backup over the wire.
			err = s.client.Backup(f)
		} else {
			err = s.db.Save(f)
		}
		f.Close()
		if err != nil {
			fmt.Fprintln(s.out, "ERROR:", err)
			break
		}
		fmt.Fprintf(s.out, "saved to %s\n", fields[1])
	case "\\open":
		if s.client != nil {
			fmt.Fprintln(s.out, `\open replaces the local database; not available over -connect (use permserver -open)`)
			break
		}
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: \\open file")
			break
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Fprintln(s.out, "ERROR:", err)
			break
		}
		db, err := perm.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(s.out, "ERROR:", err)
			break
		}
		s.db = db
		fmt.Fprintf(s.out, "opened %s\n", fields[1])
		s.applyParallelism()
	case "\\set":
		if len(fields) == 3 {
			s.run(fmt.Sprintf("SET %s = '%s'", fields[1], fields[2]))
		} else {
			fmt.Fprintln(s.out, "usage: \\set name value")
		}
	case "\\status":
		// Role, LSNs, lag and health — identical columns embedded and over
		// -connect, because it is plain SQL either way.
		if s.client != nil {
			fmt.Fprintf(s.out, "connected to server %q (protocol %d)\n",
				s.client.Server().Server, s.client.Server().Version)
		}
		s.run("SHOW replication_status")
	case "\\cluster":
		s.clusterStatus(fields[1:])
	case "\\mem":
		// The session's work_mem budget, live/peak tracked bytes and spill
		// counters — plain SQL, so it works embedded and over -connect.
		s.run("SHOW memory_status")
	case "\\stats":
		// Process-wide metrics snapshot — plain SQL, so over -connect it
		// reports the server process, which is the point.
		s.run("SHOW engine_stats")
	case "\\trace":
		if len(fields) > 1 && (fields[1] == "on" || fields[1] == "off") {
			s.run("SET trace = " + fields[1])
		} else {
			s.run("SHOW last_trace")
		}
	default:
		fmt.Fprintf(s.out, "unknown meta command %s (try \\?)\n", fields[0])
	}
	return true
}

// clusterStatus probes each member address with a Status round trip and
// renders the membership table: role, fencing epoch, replication positions,
// lag and health. Addresses come from the arguments (comma- or
// space-separated); with none, the -connect address is probed.
func (s *shell) clusterStatus(args []string) {
	var addrs []string
	for _, a := range args {
		for _, one := range strings.Split(a, ",") {
			if one = strings.TrimSpace(one); one != "" {
				addrs = append(addrs, one)
			}
		}
	}
	if len(addrs) == 0 {
		if s.addr == "" {
			fmt.Fprintln(s.out, `usage: \cluster addr1,addr2,... (default needs -connect)`)
			return
		}
		addrs = []string{s.addr}
	}
	w := tabwriter.NewWriter(s.out, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "member\trole\tepoch\tapplied\tdurable\tlag\tstaleness\thealth")
	for _, addr := range addrs {
		cli, err := wire.DialTimeout(addr, 3*time.Second)
		if err != nil {
			fmt.Fprintf(w, "%s\t-\t-\t-\t-\t-\t-\tunreachable: %v\n", addr, err)
			continue
		}
		st, err := cli.Status()
		cli.Close()
		if err != nil {
			fmt.Fprintf(w, "%s\t-\t-\t-\t-\t-\t-\tstatus failed: %v\n", addr, err)
			continue
		}
		health := "ok"
		if st.Role == "replica" && !st.Connected {
			health = "disconnected"
		}
		if st.LastError != "" {
			health += " (" + st.LastError + ")"
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%dms\t%s\n",
			addr, st.Role, st.Epoch, st.AppliedLSN, st.DurableLSN, st.LagRecords(), st.StalenessMs, health)
	}
	w.Flush()
}

func (s *shell) load(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(s.out, "usage: \\load example | forum N | star N")
		return
	}
	// Loading replaces the database.
	db := perm.Open()
	n := 1000
	if len(args) > 1 {
		n, _ = strconv.Atoi(args[1])
	}
	err := workload.LoadByName(db.Engine(), args[0], n)
	if err != nil {
		fmt.Fprintln(s.out, "ERROR:", err)
		return
	}
	s.db = db
	fmt.Fprintf(s.out, "loaded %s\n", strings.Join(args, " "))
	s.applyParallelism()
}

func (s *shell) listRelations() {
	cat := s.db.Engine().Catalog()
	fmt.Fprintln(s.out, "tables:")
	for _, t := range cat.TableNames() {
		st := cat.TableStats(t)
		fmt.Fprintf(s.out, "  %s (%d rows)\n", t, st.RowCount)
	}
	fmt.Fprintln(s.out, "views:")
	for _, v := range cat.ViewNames() {
		fmt.Fprintf(s.out, "  %s\n", v)
	}
}

func (s *shell) describe(name string) {
	cat := s.db.Engine().Catalog()
	if t := cat.Table(name); t != nil {
		fmt.Fprintf(s.out, "table %s:\n", t.Name)
		for _, c := range t.Columns {
			nn := ""
			if c.NotNull {
				nn = " NOT NULL"
			}
			fmt.Fprintf(s.out, "  %-20s %s%s\n", c.Name, c.Type, nn)
		}
		return
	}
	if v := cat.View(name); v != nil {
		fmt.Fprintf(s.out, "view %s AS %s\n", v.Name, v.Text)
		return
	}
	fmt.Fprintf(s.out, "relation %q not found\n", name)
}
