// Command permshell is the terminal analog of the Perm browser used in the
// demonstration (Figure 4): an interactive SQL shell against an in-memory
// Perm database that can display, for every query, the result table, the
// rewritten SQL, and the original and rewritten algebra trees.
//
// Meta commands:
//
//	\d [table]        list relations / describe one
//	\load example     load the paper's Figure 1 database
//	\load forum N     load a scaled synthetic forum database
//	\load star N      load a synthetic sales star schema
//	\trees on|off     show algebra trees for each query (default off)
//	\timing on|off    show per-stage timings (default off)
//	\set name value   session setting (shorthand for SET)
//	\q                quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"perm"
	"perm/internal/workload"
)

type shell struct {
	db     *perm.DB
	out    *bufio.Writer
	trees  bool
	timing bool
}

func main() {
	fmt.Println("Perm shell — provenance management system (SQL-PLE dialect)")
	fmt.Println(`type SQL statements terminated by ';', \? for help, \q to quit`)

	sh := &shell{db: perm.Open(), out: bufio.NewWriter(os.Stdout)}
	defer sh.out.Flush()

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "perm=# "
	for {
		sh.out.Flush()
		fmt.Print(prompt)
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !sh.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.HasSuffix(trimmed, ";") {
			sh.run(buf.String())
			buf.Reset()
			prompt = "perm=# "
		} else if strings.TrimSpace(buf.String()) != "" {
			prompt = "perm-# "
		}
	}
}

func (s *shell) run(sqlText string) {
	sqlText = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sqlText), ";"))
	if sqlText == "" {
		return
	}
	if s.trees && looksLikeQuery(sqlText) {
		if ex, err := s.db.Explain(sqlText); err == nil {
			fmt.Fprintln(s.out, "original algebra tree:")
			fmt.Fprint(s.out, ex.OriginalTree)
			fmt.Fprintln(s.out, "rewritten algebra tree:")
			fmt.Fprint(s.out, ex.RewrittenTree)
			fmt.Fprintln(s.out, "rewritten SQL:", ex.RewrittenSQL)
			for _, d := range ex.Decisions {
				fmt.Fprintln(s.out, "decision:", d)
			}
		}
	}
	res, err := s.db.Exec(sqlText)
	if err != nil {
		fmt.Fprintln(s.out, "ERROR:", err)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Fprint(s.out, perm.FormatTable(res))
	}
	fmt.Fprintln(s.out, res.Tag)
	if s.timing {
		fmt.Fprintf(s.out, "timing: parse=%v analyze=%v rewrite=%v plan=%v execute=%v\n",
			res.ParseTime, res.AnalyzeTime, res.RewriteTime, res.PlanTime, res.ExecuteTime)
	}
}

func looksLikeQuery(sqlText string) bool {
	lower := strings.ToLower(strings.TrimSpace(sqlText))
	return strings.HasPrefix(lower, "select") || strings.HasPrefix(lower, "(") ||
		strings.HasPrefix(lower, "values")
}

// meta handles backslash commands; it returns false to quit.
func (s *shell) meta(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\?", "\\h", "\\help":
		fmt.Fprintln(s.out, `meta commands:
  \d [table]       list relations / describe one
  \load example    load the paper's Figure 1 database
  \load forum N    load a scaled synthetic forum database
  \load star N     load a synthetic star schema
  \save file       persist the database (incl. materialized provenance)
  \open file       load a persisted database
  \trees on|off    show algebra trees per query
  \timing on|off   show stage timings per query
  \set name value  change a session setting
  \q               quit`)
	case "\\d":
		if len(fields) == 1 {
			s.listRelations()
		} else {
			s.describe(fields[1])
		}
	case "\\trees":
		s.trees = len(fields) > 1 && fields[1] == "on"
		fmt.Fprintf(s.out, "trees: %v\n", s.trees)
	case "\\timing":
		s.timing = len(fields) > 1 && fields[1] == "on"
		fmt.Fprintf(s.out, "timing: %v\n", s.timing)
	case "\\load":
		s.load(fields[1:])
	case "\\save":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: \\save file")
			break
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Fprintln(s.out, "ERROR:", err)
			break
		}
		err = s.db.Save(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(s.out, "ERROR:", err)
			break
		}
		fmt.Fprintf(s.out, "saved to %s\n", fields[1])
	case "\\open":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: \\open file")
			break
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Fprintln(s.out, "ERROR:", err)
			break
		}
		db, err := perm.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(s.out, "ERROR:", err)
			break
		}
		s.db = db
		fmt.Fprintf(s.out, "opened %s\n", fields[1])
	case "\\set":
		if len(fields) == 3 {
			s.run(fmt.Sprintf("SET %s = '%s'", fields[1], fields[2]))
		} else {
			fmt.Fprintln(s.out, "usage: \\set name value")
		}
	default:
		fmt.Fprintf(s.out, "unknown meta command %s (try \\?)\n", fields[0])
	}
	return true
}

func (s *shell) load(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(s.out, "usage: \\load example | forum N | star N")
		return
	}
	// Loading replaces the database.
	db := perm.Open()
	var err error
	switch args[0] {
	case "example":
		err = workload.LoadPaperExample(db.Engine())
	case "forum":
		n := 1000
		if len(args) > 1 {
			n, _ = strconv.Atoi(args[1])
		}
		err = workload.LoadForum(db.Engine(), workload.DefaultForum(n))
	case "star":
		n := 1000
		if len(args) > 1 {
			n, _ = strconv.Atoi(args[1])
		}
		err = workload.LoadStar(db.Engine(), workload.DefaultStar(n))
	default:
		fmt.Fprintf(s.out, "unknown dataset %q\n", args[0])
		return
	}
	if err != nil {
		fmt.Fprintln(s.out, "ERROR:", err)
		return
	}
	s.db = db
	fmt.Fprintf(s.out, "loaded %s\n", strings.Join(args, " "))
}

func (s *shell) listRelations() {
	cat := s.db.Engine().Catalog()
	fmt.Fprintln(s.out, "tables:")
	for _, t := range cat.TableNames() {
		st := cat.TableStats(t)
		fmt.Fprintf(s.out, "  %s (%d rows)\n", t, st.RowCount)
	}
	fmt.Fprintln(s.out, "views:")
	for _, v := range cat.ViewNames() {
		fmt.Fprintf(s.out, "  %s\n", v)
	}
}

func (s *shell) describe(name string) {
	cat := s.db.Engine().Catalog()
	if t := cat.Table(name); t != nil {
		fmt.Fprintf(s.out, "table %s:\n", t.Name)
		for _, c := range t.Columns {
			nn := ""
			if c.NotNull {
				nn = " NOT NULL"
			}
			fmt.Fprintf(s.out, "  %-20s %s%s\n", c.Name, c.Type, nn)
		}
		return
	}
	if v := cat.View(name); v != nil {
		fmt.Fprintf(s.out, "view %s AS %s\n", v.Name, v.Text)
		return
	}
	fmt.Fprintf(s.out, "relation %q not found\n", name)
}
