// Command permrouter is the cluster front end: one address that looks like a
// single permserver but fans out over a member set — writes go to the
// current-epoch primary, reads load-balance across healthy least-lagged
// replicas, and idempotent reads are transparently retried across a
// failover.
//
//	permrouter -addr :5440 -members 127.0.0.1:5433,127.0.0.1:5434,127.0.0.1:5435
//
// The router also runs the cluster's coordinator: it probes every member on
// -probe, and when the primary goes unseen for -lease it promotes the
// most-caught-up replica at a bumped fencing epoch and re-points the other
// members at it. A deposed primary that returns is demoted (and re-seeded if
// its timeline diverged) automatically.
//
// With -metrics-addr the router exposes its routing counters, the
// coordinator's epoch/promotion series and pprof over HTTP.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"perm/internal/cluster"
	"perm/internal/logx"
	"perm/internal/metrics"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:5440", "listen address for routed client connections")
		members     = flag.String("members", "", "comma-separated cluster member addresses (required)")
		probe       = flag.Duration("probe", 500*time.Millisecond, "member health-probe interval")
		lease       = flag.Duration("lease", 3*time.Second, "primary lease: unseen this long, failover is declared")
		dialTO      = flag.Duration("dial-timeout", 2*time.Second, "backend connect + probe timeout")
		quiet       = flag.Bool("quiet", false, "disable routing and probe logging")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics and pprof on this address; empty disables")
		logFormat   = flag.String("log-format", "text", "log output format: text | json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug | info | warn | error")
	)
	flag.Parse()
	minLevel, err := logx.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	logger := logx.New(os.Stderr, *logFormat, minLevel, "permrouter")

	var memberList []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			memberList = append(memberList, m)
		}
	}
	if len(memberList) == 0 {
		logger.Error("-members is required (comma-separated host:port list)")
		os.Exit(1)
	}

	logf := logger.Printf
	if *quiet {
		logf = nil
	}
	coord := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Members:       memberList,
		ProbeInterval: *probe,
		LeaseTimeout:  *lease,
		DialTimeout:   *dialTO,
		Logf:          logf,
	})
	go coord.Run()

	router := cluster.NewRouter(cluster.RouterConfig{
		Topology:    coord,
		DialTimeout: *dialTO,
		Logf:        logf,
	})

	if *metricsAddr != "" {
		msrv := &http.Server{Addr: *metricsAddr, Handler: metrics.Default.Handler()}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("metrics listener: %v", err)
			}
		}()
		defer msrv.Close()
		logger.Printf("metrics and pprof on http://%s/metrics", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- router.ListenAndServe(*addr) }()
	logger.Printf("routing %s over %d members (probe %s, lease %s)", *addr, len(memberList), *probe, *lease)

	exitCode := 0
	select {
	case err := <-serveErr:
		logger.Printf("serve: %v", err)
		exitCode = 1
	case s := <-sig:
		logger.Printf("received %s, closing", s)
	}
	router.Close()
	coord.Stop()
	logger.Printf("goodbye")
	os.Exit(exitCode)
}
