package main

import "testing"

// TestRunAllParts executes the entire scripted demonstration; each part must
// complete without error (the golden content is asserted by the root-level
// figure tests; this guards the tool's wiring).
func TestRunAllParts(t *testing.T) {
	for _, part := range []string{"figure1", "figure2", "figure3", "figure4", "all"} {
		if err := run(part); err != nil {
			t.Errorf("part %s: %v", part, err)
		}
	}
}

func TestUnknownPart(t *testing.T) {
	if err := run("figure9"); err == nil {
		t.Error("unknown part must error")
	}
}
