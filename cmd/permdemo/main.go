// Command permdemo replays the demonstration of Section 3 of the paper on
// the terminal: it loads the Figure 1 example database, executes the example
// queries, reproduces the Figure 2 provenance table, shows the Figure 3
// pipeline stage timings, and prints the Figure 4 Perm-browser artifacts
// (query, rewritten SQL, original and rewritten algebra trees, result).
//
// Usage:
//
//	permdemo                 # run the whole demonstration
//	permdemo -part figure2   # one part: figure1 | figure2 | figure3 | figure4
package main

import (
	"flag"
	"fmt"
	"os"

	"perm"
)

func main() {
	part := flag.String("part", "all", "demo part: figure1, figure2, figure3, figure4, or all")
	flag.Parse()

	if err := run(*part); err != nil {
		fmt.Fprintln(os.Stderr, "permdemo:", err)
		os.Exit(1)
	}
}

func run(part string) error {
	switch part {
	case "figure1":
		return figure1()
	case "figure2":
		return figure2()
	case "figure3":
		return figure3()
	case "figure4":
		return figure4()
	case "all":
		for _, f := range []func() error{figure1, figure2, figure3, figure4} {
			if err := f(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return fmt.Errorf("unknown part %q", part)
}

// paperDB loads the Figure 1 example database.
func paperDB() *perm.DB {
	db := perm.Open()
	db.MustExecScript(`
		CREATE TABLE messages (mId int, text text, uId int);
		CREATE TABLE users (uId int, name text);
		CREATE TABLE imports (mId int, text text, origin text);
		CREATE TABLE approved (uId int, mId int);
		INSERT INTO messages VALUES (1, 'lorem ipsum ...', 3), (4, 'hi there ...', 2);
		INSERT INTO users VALUES (1, 'Bert'), (2, 'Gert'), (3, 'Gertrud');
		INSERT INTO imports VALUES (2, 'hello ...', 'superForum'), (3, 'I don''t ...', 'HiBoard');
		INSERT INTO approved VALUES (2, 2), (1, 4), (2, 4), (3, 4);
		CREATE VIEW v1 AS SELECT mId, text FROM messages UNION SELECT mId, text FROM imports;
		ANALYZE;
	`)
	return db
}

func header(s string) { fmt.Printf("=== %s ===\n", s) }

func showQuery(db *perm.DB, label, q string) error {
	fmt.Printf("%s: %s\n", label, q)
	res, err := db.Query(q)
	if err != nil {
		return err
	}
	fmt.Print(perm.FormatTable(res))
	return nil
}

// figure1 loads the example database and runs q1–q3.
func figure1() error {
	header("Figure 1: example database and queries")
	db := paperDB()
	if err := showQuery(db, "q1",
		`SELECT mId, text FROM messages UNION SELECT mId, text FROM imports ORDER BY mId`); err != nil {
		return err
	}
	fmt.Println("q2: CREATE VIEW v1 AS q1  (created)")
	return showQuery(db, "q3", `SELECT count(*), text
 FROM v1 JOIN approved a ON (v1.mId = a.mId)
 GROUP BY v1.mId, text ORDER BY v1.mId`)
}

// figure2 reproduces the provenance table of query q1.
func figure2() error {
	header("Figure 2: query q1 provenance")
	db := paperDB()
	return showQuery(db, "q1+",
		`SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports ORDER BY mId`)
}

// figure3 shows the pipeline stage timings of the architecture diagram.
func figure3() error {
	header("Figure 3: Perm architecture — pipeline stages")
	db := paperDB()
	queries := []string{
		`SELECT mId, text FROM messages UNION SELECT mId, text FROM imports`,
		`SELECT PROVENANCE mId, text FROM messages UNION SELECT mId, text FROM imports`,
		`SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId, text`,
	}
	fmt.Println("stage timings (parser & analyzer -> provenance rewriter -> planner -> executor):")
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			return err
		}
		fmt.Printf("  parse=%-10v analyze=%-10v rewrite=%-10v plan=%-10v execute=%-10v  %s\n",
			res.ParseTime, res.AnalyzeTime, res.RewriteTime, res.PlanTime, res.ExecuteTime, q)
	}
	return nil
}

// figure4 reproduces the Perm-browser panes for the public.s/public.r
// example of the paper's screenshot.
func figure4() error {
	header("Figure 4: the Perm browser")
	db := perm.Open()
	db.MustExecScript(`
		CREATE TABLE s (i int);
		CREATE TABLE r (i int);
		INSERT INTO s VALUES (1), (2);
		INSERT INTO r VALUES (1), (2);
	`)
	q := `SELECT PROVENANCE * FROM s JOIN r ON s.i = r.i`
	fmt.Println("[1] query input:")
	fmt.Println("   ", q)
	ex, err := db.Explain(q)
	if err != nil {
		return err
	}
	fmt.Println("[2] rewritten SQL:")
	fmt.Println("   ", ex.RewrittenSQL)
	fmt.Println("[3] original algebra tree:")
	fmt.Print(indent(ex.OriginalTree))
	fmt.Println("[4] rewritten algebra tree:")
	fmt.Print(indent(ex.RewrittenTree))
	fmt.Println("[5] query result:")
	res, err := db.Query(q + " ORDER BY s.i")
	if err != nil {
		return err
	}
	fmt.Print(perm.FormatTable(res))
	return nil
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
