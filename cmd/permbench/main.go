// Command permbench regenerates the experiments of DESIGN.md/EXPERIMENTS.md:
// E5 (provenance overhead by query class), E6 (rewrite strategy ablation),
// E7 (lazy vs eager provenance) and E8 (incremental provenance via
// BASERELATION and external provenance).
//
// Usage:
//
//	permbench                      # run everything at default sizes
//	permbench -exp overhead -sizes 100,1000,10000 -reps 5
//	permbench -exp strategy -n 5000
//	permbench -exp lazyeager -n 5000 -uses 50
//	permbench -exp incremental -n 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"perm/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: overhead, strategy, lazyeager, incremental, all")
	sizesFlag := flag.String("sizes", "100,1000,10000", "dataset sizes for -exp overhead")
	n := flag.Int("n", 2000, "dataset size for single-size experiments")
	reps := flag.Int("reps", 3, "repetitions per measurement (median reported)")
	uses := flag.Int("uses", 20, "number of provenance re-uses for -exp lazyeager")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permbench:", err)
		os.Exit(1)
	}

	var tables []*bench.Table
	switch *exp {
	case "overhead":
		t, err := bench.RunOverhead(sizes, *reps)
		exitOn(err)
		tables = append(tables, t)
	case "strategy":
		t, err := bench.RunStrategies(*n, *reps)
		exitOn(err)
		tables = append(tables, t)
	case "lazyeager":
		t, err := bench.RunLazyEager(*n, *uses, *reps)
		exitOn(err)
		tables = append(tables, t)
	case "incremental":
		t, err := bench.RunIncremental(*n, *reps)
		exitOn(err)
		tables = append(tables, t)
	case "all":
		ts, err := bench.RunAll(sizes, *reps)
		exitOn(err)
		tables = ts
	default:
		fmt.Fprintf(os.Stderr, "permbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.Format())
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "permbench:", err)
		os.Exit(1)
	}
}
