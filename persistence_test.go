package perm_test

import (
	"bytes"
	"testing"

	"perm"
)

// TestSaveLoadRoundTrip: a database with base tables, views and an eagerly
// materialized provenance table survives Save/Load byte-exactly.
func TestSaveLoadRoundTrip(t *testing.T) {
	db := forumDB(t)
	db.MustExec(`CREATE TABLE provmat AS
		SELECT PROVENANCE count(*), text
		FROM v1 JOIN approved a ON v1.mId = a.mId GROUP BY v1.mId, text`)

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := perm.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Tables and rows.
	for _, q := range []string{
		`SELECT count(*) FROM messages`,
		`SELECT count(*) FROM provmat`,
		`SELECT sum(prov_public_approved_uid) FROM provmat`,
	} {
		a, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Query(q)
		if err != nil {
			t.Fatalf("restored %q: %v", q, err)
		}
		if a.Rows[0].Key() != b.Rows[0].Key() {
			t.Errorf("%q: %v vs %v", q, a.Rows[0], b.Rows[0])
		}
	}

	// Views survive and still unfold.
	v, err := restored.Query(`SELECT count(*) FROM v1`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Rows[0][0].Int() != 4 {
		t.Errorf("restored view count = %v", v.Rows[0])
	}

	// Provenance queries still work on the restored database.
	res, err := restored.Query(`SELECT PROVENANCE mId, text FROM messages
		UNION SELECT mId, text FROM imports ORDER BY mId`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("restored provenance rows = %v", res.Rows)
	}

	// And statistics were restored (cost-based rewriting keeps working).
	sess := restored.NewSession()
	sess.MustExec(`SET provenance_strategy = 'cost'`)
	if _, err := sess.Exec(`SELECT PROVENANCE count(*), uId FROM approved GROUP BY uId`); err != nil {
		t.Errorf("cost-based rewrite on restored db: %v", err)
	}
}

// TestLoadRejectsGarbage: corrupt snapshots fail cleanly.
func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := perm.Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage must not load")
	}
}

// TestSaveEmptyDatabase: an empty database round-trips.
func TestSaveEmptyDatabase(t *testing.T) {
	var buf bytes.Buffer
	if err := perm.Open().Save(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := perm.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(`CREATE TABLE t (a int)`) // still usable
}
