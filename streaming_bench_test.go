package perm_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"perm/internal/engine"
	"perm/internal/server"
	"perm/internal/wire"
)

// BenchmarkStreamingQuery measures what end-to-end streaming buys on a wide
// provenance join whose result dwarfs the row-batch size: the materialized
// path's cost (allocs/op, B/op) scales linearly with result cardinality
// because every row is buffered before the first one is delivered, while
// the streaming path's cost to the first batch is independent of
// cardinality — the executor produces only what the consumer has asked
// for, embedded and over the wire alike. full-drain variants report the
// per-row cost of the batched wire encoding. Tracked in PERFORMANCE.md §6.
func BenchmarkStreamingQuery(b *testing.B) {
	// users is the (small) hash-join build side; big scales the probe side,
	// so the join pipeline streams and result cardinality == len(big).
	const query = `SELECT PROVENANCE b.s, u.name FROM big b, users u WHERE b.u = u.id`
	const firstBatch = 64

	setup := func(b *testing.B, rows int) *engine.DB {
		b.Helper()
		db := engine.NewDB()
		s := db.NewSession()
		defer s.Close()
		mustExec := func(q string) {
			b.Helper()
			if _, err := s.Execute(q); err != nil {
				b.Fatal(err)
			}
		}
		mustExec(`CREATE TABLE users (id int, name text)`)
		ins := `INSERT INTO users VALUES (0, 'user 0')`
		for i := 1; i < 16; i++ {
			ins += fmt.Sprintf(", (%d, 'user %d')", i, i)
		}
		mustExec(ins)
		mustExec(`CREATE TABLE big (i int, u int, s text)`)
		for at := 0; at < rows; {
			chunk := rows - at
			if chunk > 512 {
				chunk = 512
			}
			stmt := fmt.Sprintf(`INSERT INTO big VALUES (%d, %d, 'payload payload payload %d')`, at, at%16, at)
			for k := 1; k < chunk; k++ {
				i := at + k
				stmt += fmt.Sprintf(", (%d, %d, 'payload payload payload %d')", i, i%16, i)
			}
			mustExec(stmt)
			at += chunk
		}
		return db
	}

	start := func(b *testing.B, db *engine.DB) string {
		b.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv := server.New(db, server.Config{})
		done := make(chan error, 1)
		go func() { done <- srv.Serve(l) }()
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			<-done
		})
		return l.Addr().String()
	}

	for _, rows := range []int{1000, 10000, 50000} {
		rows := rows
		b.Run(fmt.Sprintf("materialized/rows-%d", rows), func(b *testing.B) {
			db := setup(b, rows)
			sess := db.NewSession()
			defer sess.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sess.Execute(query)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Rows) != rows {
					b.Fatalf("got %d rows", len(res.Rows))
				}
			}
		})
		b.Run(fmt.Sprintf("stream-first-batch/rows-%d", rows), func(b *testing.B) {
			db := setup(b, rows)
			sess := db.NewSession()
			defer sess.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs, err := sess.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < firstBatch; k++ {
					if _, err := rs.Next(); err != nil {
						b.Fatal(err)
					}
				}
				rs.Close()
			}
		})
		b.Run(fmt.Sprintf("cursor-first-batch/rows-%d", rows), func(b *testing.B) {
			db := setup(b, rows)
			addr := start(b, db)
			c, err := wire.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur, err := c.Execute("", query, nil, firstBatch)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < firstBatch; k++ {
					if _, err := cur.Next(); err != nil {
						b.Fatal(err)
					}
				}
				if err := cur.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Full drain over the wire: per-row cost of the batched streaming
	// encoding (both sides hold at most one batch at a time).
	b.Run("wire-full-drain/rows-10000", func(b *testing.B) {
		db := setup(b, 10000)
		addr := start(b, db)
		c, err := wire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wr, err := c.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for {
				row, err := wr.Next()
				if err != nil {
					b.Fatal(err)
				}
				if row == nil {
					break
				}
				n++
			}
			if n != 10000 {
				b.Fatalf("drained %d rows", n)
			}
		}
	})
}
